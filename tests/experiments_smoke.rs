//! Smoke test: every table/figure regenerator runs at tiny scale and
//! produces a report with its expected structure.

use vp_experiments::{experiments, Lab, Scale};

#[test]
fn every_experiment_runs_and_reports() {
    let lab = Lab::new(Scale::Tiny);
    for (name, run) in experiments::all() {
        let out = run(&lab);
        assert!(!out.is_empty(), "{name} produced no output");
        assert!(
            out.lines().count() >= 5,
            "{name} output suspiciously short:\n{out}"
        );
    }
}

#[test]
fn reports_contain_their_key_lines() {
    let lab = Lab::new(Scale::Tiny);
    let expectations: &[(&str, fn(&Lab) -> String, &[&str])] = &[
        (
            "table1",
            experiments::table1::run,
            &["SBV-5-15", "STV-3-23", "Verfploeter"],
        ),
        (
            "table2",
            experiments::table2::run,
            &["LB-4-12", "LB-5-15", "LN-4-12", "q/day"],
        ),
        ("table3", experiments::table3::run, &["B-Root", "Tangled", "LAX", "CPH"]),
        (
            "table4",
            experiments::table4::run,
            &["considered", "responding", "geolocatable", "unique", "more responding blocks"],
        ),
        (
            "table5",
            experiments::table5::run,
            &["seen at B-Root", "mapped by Verfploeter", "not mappable"],
        ),
        (
            "table6",
            experiments::table6::run,
            &["Atlas", "Verfploeter + load", "Actual load", "% LAX"],
        ),
        (
            "table7",
            experiments::table7::run,
            &["Flips", "Total", "Frac."],
        ),
        ("fig2", experiments::fig2::run, &["Atlas", "Verfploeter", "China"]),
        ("fig3", experiments::fig3::run, &["Tangled", "Sites observed"]),
        ("fig4", experiments::fig4::run, &["UNKNOWN", "ns1", "Europe"]),
        (
            "fig5",
            experiments::fig5::run,
            &["+1 LAX", "equal", "+3 MIA", "residual"],
        ),
        ("fig6", experiments::fig6::run, &["[equal]", "[+3 MIA]", "UNKNOWN"]),
        ("fig7", experiments::fig7::run, &["sites seen", "median", ">1 site"]),
        (
            "fig8",
            experiments::fig8::run,
            &["prefix len", "1 site", "single-VP"],
        ),
        (
            "fig9",
            experiments::fig9::run,
            &["stable", "flipped", "to_NR", "from_NR"],
        ),
    ];
    for (name, run, needles) in expectations {
        let out = run(&lab);
        for needle in *needles {
            assert!(
                out.contains(needle),
                "{name} report lacks {needle:?}:\n{out}"
            );
        }
    }
}

#[test]
fn json_artifacts_are_written_when_out_dir_set() {
    let dir = std::env::temp_dir().join(format!("vp-exp-{}", std::process::id()));
    let mut lab = Lab::new(Scale::Tiny);
    lab.out_dir = Some(dir.clone());
    experiments::table4::run(&lab);
    experiments::fig5::run(&lab);
    let t4 = dir.join("table4_coverage.json");
    let f5 = dir.join("fig5_prepending.json");
    assert!(t4.exists(), "missing {}", t4.display());
    assert!(f5.exists(), "missing {}", f5.display());
    // Valid JSON.
    for p in [t4, f5] {
        let text = std::fs::read_to_string(&p).unwrap();
        serde_json::from_str::<serde_json::Value>(&text)
            .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", p.display()));
    }
    std::fs::remove_dir_all(&dir).ok();
}
