//! Cross-crate property tests: invariants that must hold over randomly
//! seeded worlds, deployments and measurement rounds.

use proptest::prelude::*;
use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::SimTime;
use verfploeter_suite::sim::{FaultConfig, Scenario, StaticOracle};
use verfploeter_suite::topology::TopologyConfig;
use verfploeter_suite::vp::scan::{run_scan, ScanConfig};

fn tiny_world(seed: u64) -> TopologyConfig {
    TopologyConfig {
        seed,
        num_ases: 80,
        num_tier1: 4,
        max_blocks: 1200,
        max_prefixes_per_as: 30,
        max_blocks_per_prefix: 16,
        ..TopologyConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any world + any policy seed: every AS routes, every PoP maps to an
    /// active site, and the catchment fractions sum to one.
    #[test]
    fn routing_total_and_partitioned(world_seed in 0u64..5000, policy_seed in any::<u64>()) {
        let s = Scenario::broot(tiny_world(world_seed), policy_seed);
        let table = s.routing();
        prop_assert!(table.per_as.iter().all(Option::is_some));
        prop_assert!(table.per_pop_site.iter().all(Option::is_some));
        let frac: f64 = s
            .announcement
            .sites
            .iter()
            .map(|site| {
                table
                    .per_as
                    .iter()
                    .flatten()
                    .filter(|r| r.selected_site() == site.id)
                    .count() as f64
            })
            .sum();
        prop_assert!((frac - table.per_as.len() as f64).abs() < 1e-9);
    }

    /// A fault-free scan maps exactly the responsive blocks whose hitlist
    /// target is correct, each to its ground-truth site.
    #[test]
    fn scan_matches_ground_truth(world_seed in 0u64..5000, scan_seed in any::<u64>()) {
        let s = Scenario::broot(tiny_world(world_seed), 7);
        let hl = Hitlist::from_internet(
            &s.world,
            &HitlistConfig { wrong_addr_prob: 0.0, ..HitlistConfig::default() },
        );
        let table = s.routing();
        let scan = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(table.clone())),
            FaultConfig::none(),
            SimTime::ZERO,
            &ScanConfig::default(),
            scan_seed,
        );
        prop_assert_eq!(scan.catchments.len(), s.world.responsive_blocks().count());
        for (block, site) in scan.catchments.iter() {
            let info = s.world.block(block).unwrap();
            prop_assert_eq!(Some(site), table.site_of_pop(info.pop));
        }
        prop_assert!(scan.cleaning.is_consistent());
    }

    /// Under arbitrary fault mixes, surviving observations are never wrong
    /// and the cleaning ledger always balances.
    #[test]
    fn faults_never_corrupt_mappings(
        world_seed in 0u64..2000,
        dup in 0.0f64..0.5,
        alias in 0.0f64..0.5,
        late in 0.0f64..0.2,
        loss in 0.0f64..0.3,
    ) {
        let s = Scenario::broot(tiny_world(world_seed), 7);
        let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
        let table = s.routing();
        let faults = FaultConfig {
            duplicate_prob: dup,
            max_duplicates: 20,
            alias_prob: alias,
            late_prob: late,
            loss,
            unsolicited_prob: 0.01,
            ..FaultConfig::none()
        };
        let scan = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(table.clone())),
            faults,
            SimTime::ZERO,
            &ScanConfig::default(),
            world_seed ^ 0x5ca9,
        );
        prop_assert!(scan.cleaning.is_consistent());
        for (block, site) in scan.catchments.iter() {
            let info = s.world.block(block).unwrap();
            prop_assert_eq!(Some(site), table.site_of_pop(info.pop));
        }
    }

    /// Catchment fractions over mapped blocks always sum to 1.
    #[test]
    fn measured_fractions_sum_to_one(world_seed in 0u64..5000) {
        let s = Scenario::broot(tiny_world(world_seed), 7);
        let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
        let scan = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            FaultConfig::default(),
            SimTime::ZERO,
            &ScanConfig::default(),
            world_seed,
        );
        if !scan.catchments.is_empty() {
            let total: f64 = s
                .announcement
                .sites
                .iter()
                .map(|site| scan.catchments.fraction_to(site.id))
                .sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }
}
