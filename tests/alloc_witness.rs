//! DESIGN.md §17 witness: **zero steady-state heap allocations per
//! probe**. A counting allocator wraps the system allocator for this test
//! binary; a scan over 10^5 hitlist blocks must allocate orders of
//! magnitude fewer times than it sends probes — every per-probe structure
//! lives in pre-sized columns, reused batch buffers, zero-copy `Bytes`
//! views, or amortized-doubling logs (O(log n) allocations per scan).
//! Holds on the serial engine and at K=8 on real OS threads, so the
//! p-rule sweep (`vp-lint hotpath`) is backed by a runtime measurement,
//! not just static reasoning.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vp_bench::{bench_hitlist, bench_scenario_scaled};
use vp_sim::exec::ShardExecutor;
use vp_sim::{CatchmentOracle, FaultConfig, StaticOracle};
use verfploeter_suite::net::SimTime;
use verfploeter_suite::vp::scan::{run_scan, run_scan_sharded_on, ScanConfig};

/// Counts every allocation and reallocation (frees are not interesting:
/// the contract is about per-probe allocator traffic, and each realloc
/// of a doubling log is one more allocation).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const TARGETS: usize = 100_000;

/// The per-scan allocation budget: at most one allocation per 50 probes.
/// The real count is dominated by per-shard setup plus O(log n) growth
/// of the capture/event logs, so the ratio shrinks as the hitlist grows;
/// 50 leaves headroom without ever tolerating a per-probe allocation.
const PROBES_PER_ALLOC: u64 = 50;

fn measured_allocs(scan: impl FnOnce() -> u64) -> (u64, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let probes = scan();
    let after = ALLOCS.load(Ordering::Relaxed);
    (probes, after - before)
}

/// The budget only binds in release builds: the hot paths carry
/// `debug_assert!`s that deliberately recompute reply images and checksum
/// parts through allocating reference encoders, so a debug run measures
/// the asserts, not the steady state the contract is about. Debug runs
/// still execute both scans (exercising those asserts at 10^5 blocks).
fn assert_budget(kind: &str, probes: u64, allocs: u64) {
    if cfg!(debug_assertions) {
        return;
    }
    assert!(
        allocs < probes / PROBES_PER_ALLOC,
        "{kind} scan allocated {allocs} times for {probes} probes \
         (budget {}): a per-probe allocation crept back in",
        probes / PROBES_PER_ALLOC
    );
}

#[test]
fn steady_state_allocations_stay_sublinear_in_probes() {
    // World + hitlist construction may allocate freely: it is outside the
    // hot region by definition (cold setup).
    let s = bench_scenario_scaled(33, TARGETS);
    let hl = bench_hitlist(&s);
    let table = s.routing();
    let config = ScanConfig::default();

    // Oracle construction is cold setup (it deep-copies the converged
    // routing table once); the sharded path shares that copy across all
    // shard oracles through `StaticOracle::shared`, so per-shard setup
    // inside the measured region is one refcount bump and one box each.
    let shared_table = Arc::new(table.clone());

    // Serial engine.
    let oracle = Box::new(StaticOracle::shared(shared_table.clone()));
    let (probes, allocs) = measured_allocs(|| {
        run_scan(
            &s.world,
            &hl,
            &s.announcement,
            oracle,
            FaultConfig::default(),
            SimTime::ZERO,
            &config,
            0xbe9c,
        )
        .probes_sent
    });
    assert_eq!(probes, TARGETS as u64);
    assert_budget("serial", probes, allocs);

    // K=8 on real OS threads through the blessed executor.
    let exec = ShardExecutor::new(8);
    let (probes, allocs) = measured_allocs(|| {
        run_scan_sharded_on(
            &exec,
            &s.world,
            &hl,
            &s.announcement,
            &|| Box::new(StaticOracle::shared(shared_table.clone())) as Box<dyn CatchmentOracle>,
            FaultConfig::default(),
            SimTime::ZERO,
            &config,
            0xbe9c,
            8,
        )
        .probes_sent
    });
    assert_eq!(probes, TARGETS as u64);
    assert_budget("K=8 threaded", probes, allocs);
}
