//! Integration: the open-data path. The paper releases all its datasets;
//! this repository's equivalents (catchment maps, hitlists) must survive a
//! round trip through their JSON release format and still drive the
//! analyses.

use verfploeter_suite::dns::{LoadModel, QueryLog};
use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::SimTime;
use verfploeter_suite::sim::{FaultConfig, Scenario, StaticOracle};
use verfploeter_suite::topology::TopologyConfig;
use verfploeter_suite::vp::catchment::CatchmentMap;
use verfploeter_suite::vp::load::load_fraction_to;
use verfploeter_suite::vp::scan::{run_scan, ScanConfig};

#[test]
fn released_dataset_reproduces_the_analysis() {
    let s = Scenario::broot(TopologyConfig::tiny(8001), 7);
    let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let scan = run_scan(
        &s.world,
        &hl,
        &s.announcement,
        Box::new(StaticOracle::new(s.routing())),
        FaultConfig::default(),
        SimTime::ZERO,
        &ScanConfig {
            name: "SBV-RELEASE".into(),
            ..ScanConfig::default()
        },
        1,
    );

    // "Release" the dataset to disk and reload it.
    let dir = std::env::temp_dir().join(format!("vp-data-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let catchment_path = dir.join("SBV-RELEASE.json");
    let hitlist_path = dir.join("hitlist.json");
    std::fs::write(&catchment_path, scan.catchments.to_json()).unwrap();
    std::fs::write(&hitlist_path, hl.to_json()).unwrap();

    let reloaded =
        CatchmentMap::from_json(&std::fs::read_to_string(&catchment_path).unwrap()).unwrap();
    let reloaded_hl =
        Hitlist::from_json(&std::fs::read_to_string(&hitlist_path).unwrap()).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // The reloaded dataset is identical in content...
    assert_eq!(reloaded.name, "SBV-RELEASE");
    assert_eq!(reloaded.len(), scan.catchments.len());
    assert_eq!(reloaded_hl, hl);
    for (block, site) in scan.catchments.iter() {
        assert_eq!(reloaded.site_of(block), Some(site));
    }

    // ...and drives the load analysis to the same numbers.
    let log = QueryLog::ditl(&s.world, LoadModel::default(), "L");
    for site in &s.announcement.sites {
        let orig = load_fraction_to(&scan.catchments, &log, site.id);
        let redo = load_fraction_to(&reloaded, &log, site.id);
        assert!((orig - redo).abs() < 1e-12, "site {}: {orig} vs {redo}", site.name);
    }
}

#[test]
fn dataset_diff_detects_cross_release_changes() {
    // Two scans of different announcement variants, released and reloaded,
    // then compared — the workflow behind the paper's April-vs-May rows.
    let s = Scenario::broot(TopologyConfig::tiny(8002), 7);
    let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let scan = |ann: &verfploeter_suite::bgp::Announcement, ident: u16| {
        run_scan(
            &s.world,
            &hl,
            ann,
            Box::new(StaticOracle::new(s.routing_for(ann))),
            FaultConfig::none(),
            SimTime::ZERO,
            &ScanConfig {
                name: format!("v{ident}"),
                probe: verfploeter_suite::vp::ProbeConfig {
                    ident,
                    ..Default::default()
                },
                ..ScanConfig::default()
            },
            ident as u64,
        )
    };
    let a = scan(&s.announcement, 1);
    let mut variant = s.announcement.clone();
    variant.set_prepend("LAX", 2);
    let b = scan(&variant, 2);

    let a2 = CatchmentMap::from_json(&a.catchments.to_json()).unwrap();
    let b2 = CatchmentMap::from_json(&b.catchments.to_json()).unwrap();
    let (flipped, _, _) = a2.diff(&b2);
    let (orig_flipped, _, _) = a.catchments.diff(&b.catchments);
    assert_eq!(flipped, orig_flipped);
    assert!(flipped > 0, "prepending should move some blocks");
}
