//! Scale-equivalence suite: the columnar scan core against the BTree
//! engine.
//!
//! The columnar `CatchmentMap`/`RttTable` replace tree-backed maps with
//! sorted parallel columns; this suite is the proof that the swap is
//! unobservable. Both engines are driven through identical operation
//! sequences — arbitrary construction orders, shard splits at the
//! determinism contract's K ∈ {1, 2, 7, 16}, merge sequences in arbitrary
//! order, serialization round-trips — and must agree **byte-for-byte** on
//! serialized output (the format oracle is the historical
//! `#[derive(Serialize)]` tree engine, [`BTreeCatchment`]) and value-for-
//! value on every query. `BitSet::merge` union semantics are proven here
//! too, against a naive set-of-indices model.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use verfploeter_suite::bgp::SiteId;
use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::{BitSet, Block24, SimDuration, SimTime};
use verfploeter_suite::sim::exec::ShardExecutor;
use verfploeter_suite::sim::{FaultConfig, Scenario, StaticOracle};
use verfploeter_suite::topology::TopologyConfig;
use verfploeter_suite::vp::catchment::reference::BTreeCatchment;
use verfploeter_suite::vp::rtt::RttTable;
use verfploeter_suite::vp::scan::{run_scan, run_scan_sharded_on, ScanConfig};
use verfploeter_suite::vp::CatchmentMap;

/// Site chosen deterministically from the block, so overlapping pairs in
/// merge inputs always agree (the disjoint-shards precondition of
/// `CatchmentMap::merge`, which debug-asserts agreement).
fn site_of(block: u32) -> SiteId {
    SiteId((block % 7) as u8)
}

fn pairs_of(blocks: &[u32]) -> Vec<(Block24, SiteId)> {
    blocks.iter().map(|&b| (Block24(b), site_of(b))).collect()
}

/// Builds both engines from the same pairs.
fn both(name: &str, pairs: &[(Block24, SiteId)]) -> (CatchmentMap, BTreeCatchment) {
    (
        CatchmentMap::from_pairs(name, pairs.iter().copied()),
        BTreeCatchment::from_pairs(name, pairs.iter().copied()),
    )
}

/// Byte-level agreement plus query-level agreement.
fn assert_engines_agree(col: &CatchmentMap, tree: &BTreeCatchment) {
    assert_eq!(col.to_json(), tree.to_json(), "serialized bytes differ");
    assert_eq!(col.len(), tree.len());
    assert_eq!(col.is_empty(), tree.is_empty());
    let col_rows: Vec<(Block24, SiteId)> = col.iter().collect();
    let tree_rows: Vec<(Block24, SiteId)> = tree.iter().collect();
    assert_eq!(col_rows, tree_rows, "iteration order differs");
    for (b, s) in tree.iter() {
        assert_eq!(col.site_of(b), Some(s), "site of {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary construction input (unsorted, duplicate-heavy): both
    /// engines produce the same bytes and answers.
    #[test]
    fn construction_agrees(blocks in proptest::collection::vec(0u32..5_000, 0..300)) {
        let (col, tree) = both("SBV-prop", &pairs_of(&blocks));
        assert_engines_agree(&col, &tree);
    }

    /// Serialization round-trips through JSON land in identical states on
    /// both engines, and re-serialize to the same bytes.
    #[test]
    fn json_roundtrip_agrees(blocks in proptest::collection::vec(0u32..100_000, 0..200)) {
        let (col, tree) = both("SBV-rt", &pairs_of(&blocks));
        let col_back = CatchmentMap::from_json(&col.to_json()).unwrap();
        let tree_back = BTreeCatchment::from_json(&tree.to_json()).unwrap();
        prop_assert_eq!(col_back.to_json(), tree_back.to_json());
        // Cross-load: each engine can read the other's bytes.
        let cross = CatchmentMap::from_json(&tree.to_json()).unwrap();
        prop_assert_eq!(cross.to_json(), col.to_json());
        assert_engines_agree(&col_back, &tree_back);
    }

    /// Arbitrary merge sequences over agreeing parts: fold order and part
    /// boundaries never change the result, and the engines stay in
    /// lockstep after every step.
    // vp-lint: merge-tested(CatchmentMap::merge)
    // vp-lint: merge-tested(BTreeCatchment::merge)
    #[test]
    fn merge_sequences_agree(
        parts in proptest::collection::vec(
            proptest::collection::vec(0u32..3_000, 0..80),
            0..6,
        ),
        rotate in 0usize..6,
    ) {
        // Forward fold, both engines, checking agreement at every step.
        let mut col = CatchmentMap::from_pairs("SBV-m", std::iter::empty());
        let mut tree = BTreeCatchment::from_pairs("SBV-m", std::iter::empty());
        for p in &parts {
            let (c, t) = both("SBV-m", &pairs_of(p));
            col.merge(&c);
            tree.merge(&t);
            assert_engines_agree(&col, &tree);
        }
        // A rotated merge order must land on the same bytes (the merge is
        // order-insensitive for agreeing inputs).
        let mut rotated = CatchmentMap::from_pairs("SBV-m", std::iter::empty());
        let k = if parts.is_empty() { 0 } else { rotate % parts.len() };
        for p in parts[k..].iter().chain(parts[..k].iter()) {
            rotated.merge(&CatchmentMap::from_pairs("SBV-m", pairs_of(p)));
        }
        prop_assert_eq!(rotated.to_json(), col.to_json());
    }

    /// Contiguous shard splits at the determinism contract's shard counts:
    /// merging the split parts — in order and rotated — reproduces the
    /// serial map byte-for-byte on both engines.
    #[test]
    fn shard_splits_agree(
        blocks in proptest::collection::vec(0u32..50_000, 1..250),
        rotate in 0usize..16,
    ) {
        let all = pairs_of(&blocks);
        let (serial_col, serial_tree) = both("SBV-k", &all);
        assert_engines_agree(&serial_col, &serial_tree);
        // Split the canonical (sorted, deduped) row set, not the raw input:
        // shards of one scan are disjoint by construction.
        let rows: Vec<(Block24, SiteId)> = serial_col.iter().collect();
        for shards in [1usize, 2, 7, 16] {
            let chunk = rows.len().div_ceil(shards).max(1);
            let parts: Vec<&[(Block24, SiteId)]> = rows.chunks(chunk).collect();
            let mut col = CatchmentMap::from_pairs("SBV-k", std::iter::empty());
            let mut tree = BTreeCatchment::from_pairs("SBV-k", std::iter::empty());
            let k = rotate % parts.len().max(1);
            for p in parts[k..].iter().chain(parts[..k].iter()) {
                col.merge(&CatchmentMap::from_pairs("SBV-k", p.iter().copied()));
                tree.merge(&BTreeCatchment::from_pairs("SBV-k", p.iter().copied()));
            }
            prop_assert_eq!(col.to_json(), serial_col.to_json(), "K={}", shards);
            assert_engines_agree(&col, &tree);
        }
    }

    /// `RttTable` against the historical `BTreeMap<Block24, SimDuration>`:
    /// construction, lookup, iteration and merge sequences agree exactly
    /// (the fixed-point packing is lossless for in-cutoff RTTs).
    // vp-lint: merge-tested(RttTable::merge)
    #[test]
    fn rtt_table_matches_btree_model(
        parts in proptest::collection::vec(
            proptest::collection::vec((0u32..10_000, 0u64..4_000_000_000), 0..80),
            1..5,
        ),
    ) {
        let mut table = RttTable::default();
        let mut model: BTreeMap<Block24, SimDuration> = BTreeMap::new();
        for part in &parts {
            let pairs: Vec<(Block24, SimDuration)> = part
                .iter()
                .map(|&(b, ns)| (Block24(b), SimDuration::from_nanos(ns)))
                .collect();
            table.merge(&RttTable::from_pairs(pairs.iter().copied()));
            model.extend(pairs.iter().copied());

            prop_assert_eq!(table.len(), model.len());
            let cols: Vec<(Block24, SimDuration)> = table.iter().collect();
            let tree: Vec<(Block24, SimDuration)> = model.iter().map(|(b, r)| (*b, *r)).collect();
            prop_assert_eq!(cols, tree);
            let vals: Vec<SimDuration> = table.values().collect();
            let model_vals: Vec<SimDuration> = model.values().copied().collect();
            prop_assert_eq!(vals, model_vals);
            for (b, r) in &model {
                prop_assert_eq!(table.get(*b), Some(*r));
            }
            prop_assert_eq!(table.get(Block24(10_001)), None);
        }
    }

    /// `BitSet::merge` is set union, proven against a `BTreeSet` model,
    /// and commutative.
    // vp-lint: merge-tested(BitSet::merge)
    #[test]
    fn bitset_merge_is_union(
        a_ids in proptest::collection::vec(0usize..500, 0..100),
        b_ids in proptest::collection::vec(0usize..500, 0..100),
    ) {
        let a: BTreeSet<usize> = a_ids.into_iter().collect();
        let b: BTreeSet<usize> = b_ids.into_iter().collect();
        let build = |ids: &BTreeSet<usize>| {
            let mut s = BitSet::new(500);
            for &i in ids {
                s.set(i);
            }
            s
        };
        let mut ab = build(&a);
        ab.merge(&build(&b));
        let mut ba = build(&b);
        ba.merge(&build(&a));
        let union: Vec<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(ab.iter_ones().collect::<Vec<_>>(), union.clone());
        prop_assert_eq!(ba.iter_ones().collect::<Vec<_>>(), union);
        prop_assert_eq!(ab.count_ones(), a.union(&b).count());
    }
}

/// End-to-end: a real measured round's columnar map serializes to the
/// exact bytes the tree engine produces from the same entries — serial,
/// and sharded at every contract shard count on both the inline executor
/// and real OS threads (one per shard): the columnar rows must be
/// scheduling-independent, not just shard-count-independent.
#[test]
fn measured_round_matches_tree_bytes() {
    let s = Scenario::broot(TopologyConfig::tiny(4242), 7);
    let hitlist = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let serial = run_scan(
        &s.world,
        &hitlist,
        &s.announcement,
        Box::new(StaticOracle::new(s.routing())),
        FaultConfig::default(),
        SimTime::ZERO,
        &ScanConfig::default(),
        0xc01,
    );
    let tree = BTreeCatchment::from_pairs(&serial.catchments.name, serial.catchments.iter());
    assert_eq!(serial.catchments.to_json(), tree.to_json());
    assert!(serial.catchments.len() > 0);

    for shards in [1usize, 2, 7, 16] {
        for (mode, exec) in [
            ("inline", ShardExecutor::serial()),
            ("threads", ShardExecutor::new(shards)),
        ] {
            let sharded = run_scan_sharded_on(
                &exec,
                &s.world,
                &hitlist,
                &s.announcement,
                &|| Box::new(StaticOracle::new(s.routing())),
                FaultConfig::default(),
                SimTime::ZERO,
                &ScanConfig::default(),
                0xc01,
                shards,
            );
            assert_eq!(
                sharded.catchments.to_json(),
                tree.to_json(),
                "K={shards}/{mode} bytes"
            );
            assert_eq!(sharded.rtts, serial.rtts, "K={shards}/{mode} rtts");
            assert_eq!(
                sharded.obs.registry.to_canonical_json(),
                serial.obs.registry.to_canonical_json(),
                "K={shards}/{mode} merged registries"
            );
        }
    }
}
