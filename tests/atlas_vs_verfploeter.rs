//! Integration: the two measurement systems against the same deployment.
//!
//! The paper's comparison rests on both methods observing the same
//! underlying catchments — Atlas sparsely from physical VPs, Verfploeter
//! densely from passive VPs. Where both observe a block, they must agree.

use std::collections::BTreeSet;

use verfploeter_suite::atlas::{run_scan as atlas_scan, AtlasConfig, AtlasPanel};
use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::{SimDuration, SimTime};
use verfploeter_suite::sim::{FaultConfig, Scenario, StaticOracle};
use verfploeter_suite::topology::TopologyConfig;
use verfploeter_suite::vp::coverage::{coverage, AtlasCoverage};
use verfploeter_suite::vp::scan::{run_scan, ScanConfig};

fn setup() -> (Scenario, Hitlist, AtlasPanel) {
    let s = Scenario::broot(TopologyConfig::tiny(7002), 7);
    let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let panel = AtlasPanel::place(&s.world, &AtlasConfig::tiny(2));
    (s, hl, panel)
}

#[test]
fn methods_agree_where_both_observe() {
    let (s, hl, panel) = setup();
    let table = s.routing();
    let vp = run_scan(
        &s.world,
        &hl,
        &s.announcement,
        Box::new(StaticOracle::new(table.clone())),
        FaultConfig::none(),
        SimTime::ZERO,
        &ScanConfig::default(),
        31,
    );
    let atlas = atlas_scan(
        &s.world,
        &panel,
        &s.announcement,
        Box::new(StaticOracle::new(table)),
        FaultConfig::none(),
        SimTime::ZERO,
        SimDuration::from_mins(8),
        "STA-T",
        32,
    );
    let mut compared = 0;
    for (block, atlas_site) in atlas.block_catchments() {
        if let Some(vp_site) = vp.catchments.site_of(block) {
            assert_eq!(vp_site, atlas_site, "methods disagree on {block}");
            compared += 1;
        }
    }
    assert!(compared > 10, "too few shared blocks to compare: {compared}");
}

#[test]
fn verfploeter_coverage_dominates() {
    let (s, hl, panel) = setup();
    let table = s.routing();
    let vp = run_scan(
        &s.world,
        &hl,
        &s.announcement,
        Box::new(StaticOracle::new(table.clone())),
        FaultConfig::default(),
        SimTime::ZERO,
        &ScanConfig::default(),
        33,
    );
    let atlas = atlas_scan(
        &s.world,
        &panel,
        &s.announcement,
        Box::new(StaticOracle::new(table)),
        FaultConfig::default(),
        SimTime::ZERO,
        SimDuration::from_mins(8),
        "STA-T",
        34,
    );
    let responding_blocks: BTreeSet<_> = atlas
        .outcomes
        .iter()
        .filter(|o| o.site.is_some())
        .map(|o| o.block)
        .collect();
    let report = coverage(
        &vp.catchments,
        &hl,
        &s.world.geodb,
        &AtlasCoverage {
            vps_considered: atlas.vps_considered() as u64,
            vps_responding: atlas.vps_responding() as u64,
            blocks_considered: atlas.blocks_considered() as u64,
            responding_blocks,
        },
    );
    assert!(
        report.coverage_ratio() > 2.0,
        "coverage ratio only {:.1}",
        report.coverage_ratio()
    );
    assert!(report.vp_blocks_responding > report.atlas_blocks_responding);
    // Accounting identities.
    assert_eq!(
        report.shared_blocks + report.atlas_unique_blocks,
        report.atlas_blocks_responding
    );
    assert_eq!(
        report.shared_blocks + report.vp_unique_blocks,
        report.vp_blocks_responding
    );
}

#[test]
fn atlas_sees_fewer_sites_than_verfploeter_on_many_site_deployments() {
    // On the nine-site testbed a sparse panel often misses small sites
    // entirely — the §5.2 argument for dense coverage. At minimum it must
    // never see MORE sites than Verfploeter.
    let s = Scenario::tangled(TopologyConfig::tiny(7003), 7);
    let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let panel = AtlasPanel::place(&s.world, &AtlasConfig::tiny(3));
    let table = s.routing();
    let vp = run_scan(
        &s.world,
        &hl,
        &s.announcement,
        Box::new(StaticOracle::new(table.clone())),
        FaultConfig::none(),
        SimTime::ZERO,
        &ScanConfig::default(),
        35,
    );
    let atlas = atlas_scan(
        &s.world,
        &panel,
        &s.announcement,
        Box::new(StaticOracle::new(table)),
        FaultConfig::none(),
        SimTime::ZERO,
        SimDuration::from_mins(8),
        "STA-T9",
        36,
    );
    let vp_sites = vp.catchments.site_counts().len();
    let atlas_sites = atlas.site_counts().len();
    assert!(
        atlas_sites <= vp_sites,
        "Atlas sees {atlas_sites} sites, Verfploeter {vp_sites}"
    );
    assert!(vp_sites >= 5, "Verfploeter sees only {vp_sites} of 9 sites");
}
