//! Integration: the AS-prepending sweep (§6.1) measured end to end with
//! actual scans, not by reading the routing tables.

use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::SimTime;
use verfploeter_suite::sim::{FaultConfig, Scenario, StaticOracle};
use verfploeter_suite::topology::TopologyConfig;
use verfploeter_suite::vp::scan::{run_scan, ScanConfig};
use verfploeter_suite::vp::ProbeConfig;

#[test]
fn prepending_shifts_measured_catchments_monotonically() {
    let s = Scenario::broot(
        TopologyConfig {
            seed: 7006,
            num_ases: 500,
            max_blocks: 12_000,
            ..TopologyConfig::default()
        },
        7,
    );
    let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let lax = s.announcement.site_by_name("LAX").unwrap().id;

    let mut fracs = Vec::new();
    for (i, (p_lax, p_mia)) in [(1u8, 0u8), (0, 0), (0, 1), (0, 2), (0, 3)]
        .into_iter()
        .enumerate()
    {
        let mut ann = s.announcement.clone();
        ann.set_prepend("LAX", p_lax).set_prepend("MIA", p_mia);
        let table = s.routing_for(&ann);
        let scan = run_scan(
            &s.world,
            &hl,
            &ann,
            Box::new(StaticOracle::new(table)),
            FaultConfig::none(),
            SimTime::ZERO,
            &ScanConfig {
                name: format!("prep{i}"),
                probe: ProbeConfig {
                    ident: 300 + i as u16,
                    ..ProbeConfig::default()
                },
                ..ScanConfig::default()
            },
            700 + i as u64,
        );
        fracs.push(scan.catchments.fraction_to(lax));
    }
    // Monotone toward LAX with a little tolerance for measurement noise.
    for w in fracs.windows(2) {
        assert!(
            w[0] <= w[1] + 0.01,
            "sweep not monotone: {fracs:?}"
        );
    }
    // Prepending must move something end to end.
    assert!(
        fracs.last().unwrap() - fracs.first().unwrap() > 0.1,
        "sweep too flat: {fracs:?}"
    );
    // A residual sticks with MIA even at +3 (host customers and
    // prepend-ignoring ASes).
    assert!(*fracs.last().unwrap() < 1.0, "MIA fully drained");
}

#[test]
fn disabling_a_site_is_visible_end_to_end() {
    let s = Scenario::broot(TopologyConfig::tiny(7007), 7);
    let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let lax = s.announcement.site_by_name("LAX").unwrap().id;
    let mut ann = s.announcement.clone();
    ann.set_enabled("MIA", false);
    let table = s.routing_for(&ann);
    let scan = run_scan(
        &s.world,
        &hl,
        &ann,
        Box::new(StaticOracle::new(table)),
        FaultConfig::none(),
        SimTime::ZERO,
        &ScanConfig::default(),
        71,
    );
    assert!((scan.catchments.fraction_to(lax) - 1.0).abs() < 1e-12);
    assert_eq!(scan.catchments.site_counts().len(), 1);
}
