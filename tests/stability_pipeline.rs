//! Integration: the 24-hour stability study (§6.3) end to end — repeated
//! scans with route flips and responsiveness churn, classified per round.

use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::{SimDuration, SimTime};
use verfploeter_suite::sim::{FaultConfig, FlippingOracle, Scenario};
use verfploeter_suite::topology::TopologyConfig;
use verfploeter_suite::vp::catchment::CatchmentMap;
use verfploeter_suite::vp::scan::{run_scan, ScanConfig};
use verfploeter_suite::vp::stability::{classify_rounds, flips_by_as, unstable_blocks};
use verfploeter_suite::vp::ProbeConfig;

fn run_rounds(rounds: u32) -> (Scenario, Vec<CatchmentMap>) {
    let s = Scenario::tangled(TopologyConfig::tiny(7005), 7);
    let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let table = s.routing();
    let model = s.flip_model(0xAB, &table);
    let interval = SimDuration::from_mins(15);
    let mut maps = Vec::new();
    for r in 0..rounds {
        let oracle = FlippingOracle::new(
            table.clone(),
            s.world.graph.clone(),
            model.clone(),
            interval,
        );
        let result = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(oracle),
            FaultConfig::default(),
            SimTime::ZERO + SimDuration(interval.0 * r as u64),
            &ScanConfig {
                name: format!("r{r}"),
                probe: ProbeConfig {
                    ident: 200 + r as u16,
                    ..ProbeConfig::default()
                },
                cutoff: SimDuration::from_mins(15),
                ..ScanConfig::default()
            },
            600 + r as u64,
        );
        maps.push(result.catchments);
    }
    (s, maps)
}

#[test]
fn classification_is_a_partition_and_mostly_stable() {
    let (_, maps) = run_rounds(8);
    let deltas = classify_rounds(&maps);
    assert_eq!(deltas.len(), 7);
    for (d, w) in deltas.iter().zip(maps.windows(2)) {
        // Partition of the previous round's observations.
        assert_eq!(
            d.stable + d.flipped + d.to_nr,
            w[0].len() as u64,
            "round {} does not partition",
            d.round
        );
        // Stability dominates.
        let responders = d.stable + d.flipped;
        assert!(
            d.stable as f64 / responders as f64 > 0.9,
            "round {}: stability only {}/{responders}",
            d.round,
            d.stable
        );
        // Flips are rarer than responsiveness churn (the Fig. 9 panels'
        // relative magnitudes).
        assert!(d.flipped < d.to_nr + d.from_nr);
    }
}

#[test]
fn flips_concentrate_and_attribute_to_multi_candidate_ases() {
    let (s, maps) = run_rounds(10);
    let table = flips_by_as(&maps, &s.world);
    if table.total_flips == 0 {
        // Extremely small worlds can be fully stable; nothing to assert.
        return;
    }
    let (top, _) = table.top_with_other(1);
    assert!(
        top[0].frac > 0.2,
        "no flip concentration: top AS only {:.2}",
        top[0].frac
    );
    // Every flipping AS must actually have multiple equally-good routes.
    let routing = s.routing();
    for row in &table.rows {
        let r = routing.per_as[row.asn.index()].as_ref().unwrap();
        assert!(
            r.candidates.len() > 1,
            "{} flips but has a single route",
            row.asn
        );
    }
}

#[test]
fn unstable_blocks_match_flip_observations() {
    let (_, maps) = run_rounds(10);
    let unstable = unstable_blocks(&maps);
    let deltas = classify_rounds(&maps);
    let total_flips: u64 = deltas.iter().map(|d| d.flipped).sum();
    if total_flips == 0 {
        assert!(unstable.is_empty());
    } else {
        assert!(!unstable.is_empty());
        // An unstable block flips at least once, so flips >= unstable count.
        assert!(total_flips as usize >= unstable.len());
    }
}
