//! Integration: the fig9 → vp-monitor replay pipeline end to end.
//!
//! Runs the tiny-scale stability rounds, writes them through the
//! snapshot format `fig9_stability --snapshots` emits, reloads them with
//! the vp-monitor ingest layer, and runs the full diff/alert pipeline —
//! twice, asserting byte-identical output. The serialized documents must
//! match the goldens committed under `results/monitor/` (the same files
//! `scripts/check.sh` regenerates and compares via the CLI), and the
//! per-round flip counts must agree with the classification fig9 itself
//! reports (`verfploeter::stability::classify_rounds`).

use vp_experiments::monitor::write_round_snapshots;
use vp_experiments::{Lab, Scale};
use vp_monitor::alert::AlertConfig;
use vp_monitor::ingest::{load_origins_sidecar, load_rounds_dir};
use vp_monitor::pipeline::run_diff_pipeline;
use verfploeter_suite::vp::stability::classify_rounds;

const SOURCE: &str = "fig9_stability/tiny";

#[test]
fn fig9_replay_is_deterministic_and_matches_goldens() {
    let lab = Lab::new(Scale::Tiny);
    let rounds = lab.tangled_rounds();
    let dir = std::env::temp_dir().join("vp-monitor-pipeline-test");
    let _ = std::fs::remove_dir_all(&dir);
    write_round_snapshots(&dir, &rounds, &lab.tangled().world).expect("write snapshots");

    let reloaded = load_rounds_dir(&dir).expect("reload rounds");
    let origins = load_origins_sidecar(&dir).expect("sidecar").expect("present");
    let _ = std::fs::remove_dir_all(&dir);

    let config = AlertConfig::default();
    let first = run_diff_pipeline(SOURCE, &reloaded, Some(&origins), None, &config);
    let second = run_diff_pipeline(SOURCE, &reloaded, Some(&origins), None, &config);

    // Byte-identical across runs: the pipeline has no hidden state.
    let drift = serde_json::to_string_pretty(&first.drift_doc).expect("drift json");
    let alerts = serde_json::to_string_pretty(&first.alert_doc).expect("alert json");
    assert_eq!(
        drift,
        serde_json::to_string_pretty(&second.drift_doc).expect("drift json"),
    );
    assert_eq!(
        alerts,
        serde_json::to_string_pretty(&second.alert_doc).expect("alert json"),
    );

    // Per-round flip counts agree with the fig9 classification itself.
    let deltas = classify_rounds(&rounds);
    assert_eq!(first.diffs.len(), deltas.len());
    for (diff, delta) in first.diffs.iter().zip(&deltas) {
        assert_eq!(diff.round, delta.round, "round numbering diverged");
        assert_eq!(diff.stable, delta.stable, "round {}", diff.round);
        assert_eq!(diff.flipped, delta.flipped, "round {}", diff.round);
        assert_eq!(diff.to_nr, delta.to_nr, "round {}", diff.round);
        assert_eq!(diff.from_nr, delta.from_nr, "round {}", diff.round);
    }

    // And the committed goldens are exactly what this pipeline produces.
    let golden_drift = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/monitor/fig9_tiny.drift.json"
    ))
    .expect("committed drift golden");
    let golden_alerts = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/monitor/fig9_tiny.alerts.json"
    ))
    .expect("committed alerts golden");
    assert_eq!(drift, golden_drift, "drift doc diverged from golden");
    assert_eq!(alerts, golden_alerts, "alert doc diverged from golden");
}
