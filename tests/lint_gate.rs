//! Tier-1 lint gate: the workspace must be clean under `vp-lint`, and the
//! analyzer must still detect the seeded violations in its fixture
//! workspace (so a silently broken analyzer cannot fake a clean repo).

use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// Every `.rs` file in the workspace passes the determinism-and-hygiene
/// rules with zero unsuppressed findings.
#[test]
fn workspace_is_lint_clean() {
    let findings = vp_lint::scan_workspace(repo_root()).expect("scan workspace");
    assert!(
        findings.is_empty(),
        "vp-lint found unsuppressed issues:\n{}",
        vp_lint::to_text(&findings)
    );
}

/// The analyzer still fires on the seeded fixture workspace. The exact
/// count pins the rule set: 18 findings in violations.rs (4 d1, 4 d2,
/// 1 d3, 2 d4, 5 h1, 2 h2) plus 3 malformed-directive findings in
/// malformed.rs.
#[test]
fn analyzer_detects_seeded_fixture_violations() {
    let ws = repo_root().join("crates/vp-lint/fixtures/ws");
    let findings = vp_lint::scan_workspace(&ws).expect("scan fixture ws");
    assert_eq!(
        findings.len(),
        21,
        "fixture finding count drifted:\n{}",
        vp_lint::to_text(&findings)
    );
    let count = |rule: &str| {
        findings
            .iter()
            .filter(|f| f.rule.name() == rule)
            .count()
    };
    assert_eq!(count("d1"), 4);
    assert_eq!(count("d2"), 4);
    assert_eq!(count("d3"), 1);
    assert_eq!(count("d4"), 2);
    assert_eq!(count("h1"), 5);
    assert_eq!(count("h2"), 2);
    assert_eq!(count("directive"), 3);
    // Everything seeded lives in violations.rs / malformed.rs; the
    // suppressed.rs and fixture_tests.rs files must contribute nothing.
    assert!(findings
        .iter()
        .all(|f| f.file.ends_with("violations.rs") || f.file.ends_with("malformed.rs")));
}
