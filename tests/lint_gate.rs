//! Tier-1 lint gate: the workspace must be clean under `vp-lint`, and the
//! analyzer must still detect the seeded violations in its fixture
//! workspace (so a silently broken analyzer cannot fake a clean repo).

use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// Every `.rs` file in the workspace passes the determinism-and-hygiene
/// rules — token layer and graph layer — with zero unsuppressed findings.
#[test]
fn workspace_is_lint_clean() {
    let findings = vp_lint::scan_workspace(repo_root()).expect("scan workspace");
    assert!(
        findings.is_empty(),
        "vp-lint found unsuppressed issues:\n{}",
        vp_lint::to_text(&findings)
    );
}

/// The analyzer still fires on the seeded fixture workspace. The exact
/// count pins the rule set: 23 findings in violations.rs (4 d1, 4 d2,
/// 1 d3, 2 d4, 5 h1, 2 h2, 2 o1, plus the g1 on `panics` and the g2s on
/// `entropy` and `LeakyWallClock::now_nanos`), 3 malformed-directive
/// findings in malformed.rs, 3 graph-rule findings in graphs.rs
/// (the cross-file g1 chain, the taint-through-allowed-helper g2, and
/// a stale-allow g3), 10 concurrency findings in conc.rs (2 per
/// c-rule, rooted in the fixture's blessed exec.rs), and 10 hot-path
/// findings in hot.rs (2 per p-rule, rooted at the `shard_hot_probes`
/// region entry).
#[test]
fn analyzer_detects_seeded_fixture_violations() {
    let ws = repo_root().join("crates/vp-lint/fixtures/ws");
    let findings = vp_lint::scan_workspace(&ws).expect("scan fixture ws");
    assert_eq!(
        findings.len(),
        49,
        "fixture finding count drifted:\n{}",
        vp_lint::to_text(&findings)
    );
    let count = |rule: &str| {
        findings
            .iter()
            .filter(|f| f.rule.name() == rule)
            .count()
    };
    assert_eq!(count("d1"), 4);
    assert_eq!(count("d2"), 4);
    assert_eq!(count("d3"), 1);
    assert_eq!(count("d4"), 2);
    assert_eq!(count("h1"), 5);
    assert_eq!(count("h2"), 2);
    assert_eq!(count("directive"), 3);
    assert_eq!(count("g1"), 2);
    assert_eq!(count("g2"), 3);
    assert_eq!(count("g3"), 1);
    assert_eq!(count("c1"), 2);
    assert_eq!(count("c2"), 2);
    assert_eq!(count("c3"), 2);
    assert_eq!(count("c4"), 2);
    assert_eq!(count("c5"), 2);
    assert_eq!(count("o1"), 2);
    assert_eq!(count("p1"), 2);
    assert_eq!(count("p2"), 2);
    assert_eq!(count("p3"), 2);
    assert_eq!(count("p4"), 2);
    assert_eq!(count("p5"), 2);
    // Everything seeded lives in the violation files; suppressed.rs,
    // depths.rs (only the deep end of a chain rooted elsewhere),
    // exec.rs (the blessed executor: c5-exempt, and only the region
    // root of chains reported at their conc.rs entries) and
    // fixture_tests.rs must contribute nothing.
    assert!(findings.iter().all(|f| {
        f.file.ends_with("violations.rs")
            || f.file.ends_with("malformed.rs")
            || f.file.ends_with("graphs.rs")
            || f.file.ends_with("conc.rs")
            || f.file.ends_with("hot.rs")
    }));
}

/// The p1 witness runs from the hot-region root down to the allocation
/// label, the capacity-witnessed twin stays silent, and the cold(fn)
/// boundary keeps setup allocations out of the region entirely.
#[test]
fn fixture_p1_witness_names_alloc_and_root() {
    let ws = repo_root().join("crates/vp-lint/fixtures/ws");
    let findings = vp_lint::scan_workspace(&ws).expect("scan fixture ws");
    let p1 = findings
        .iter()
        .find(|f| f.rule.name() == "p1" && f.message.contains("tags.push"))
        .expect("seeded p1 push finding");
    assert!(p1.witness.len() >= 3, "witness: {:?}", p1.witness);
    assert!(p1.witness[0].contains("shard_hot_probes"), "rooted at the region entry");
    assert!(p1.witness.last().expect("witness").contains("no capacity witness"));
    // Same shape for the constructor fact.
    assert!(findings
        .iter()
        .any(|f| f.rule.name() == "p1" && f.message.contains("Vec::new on `tags`")));
    // The `with_capacity`-witnessed twin and the cold(fn) setup fn
    // contribute nothing.
    assert!(!findings.iter().any(|f| f.message.contains("acc.push")));
    assert!(!findings.iter().any(|f| f.message.contains("warmup")));
}

/// p3 separates the invariant-vs-varying pair: both findings label a
/// loop-invariant recomputation, and the call mentioning the loop
/// binding never fires (the count above pins it at exactly 2).
#[test]
fn fixture_p3_flags_invariant_not_varying() {
    let ws = repo_root().join("crates/vp-lint/fixtures/ws");
    let findings = vp_lint::scan_workspace(&ws).expect("scan fixture ws");
    let p3: Vec<_> = findings.iter().filter(|f| f.rule.name() == "p3").collect();
    assert_eq!(p3.len(), 2, "p3: {:?}", p3);
    assert!(p3
        .iter()
        .any(|f| f.message.contains("internet_checksum(..) recomputed per iteration")));
    assert!(p3.iter().all(|f| f.message.contains("loop-invariant")));
    assert!(p3
        .iter()
        .all(|f| f.witness[0].contains("shard_hot_probes")), "rooted at the region entry");
}

/// The seeded c1 chain is reported at the region entry with a witness
/// naming every hop down to the `RefCell` construction, and the
/// lock-order cycle names both locks of the deadlock.
#[test]
fn fixture_c1_witness_reaches_hazard() {
    let ws = repo_root().join("crates/vp-lint/fixtures/ws");
    let findings = vp_lint::scan_workspace(&ws).expect("scan fixture ws");
    let c1 = findings
        .iter()
        .find(|f| f.rule.name() == "c1" && f.message.contains("shard_cell_counts"))
        .expect("seeded c1 entry finding");
    assert!(c1.witness.len() >= 3, "witness: {:?}", c1.witness);
    assert!(c1.witness[0].contains("shard_cell_counts"));
    assert!(c1.witness.last().expect("witness").contains("RefCell"));
    let c2 = findings
        .iter()
        .find(|f| f.rule.name() == "c2")
        .expect("seeded c2 cycle finding");
    assert!(c2.message.contains("alpha_m") && c2.message.contains("beta_m"));
}

/// The g1 witness for the seeded cross-file chain names every hop:
/// public entry -> private mid hop -> private deep helper in another
/// file -> the slice-indexing sink itself.
#[test]
fn fixture_g1_witness_crosses_files() {
    let ws = repo_root().join("crates/vp-lint/fixtures/ws");
    let findings = vp_lint::scan_workspace(&ws).expect("scan fixture ws");
    let g1 = findings
        .iter()
        .find(|f| f.rule.name() == "g1" && f.file.ends_with("graphs.rs"))
        .expect("seeded cross-file g1 finding");
    assert_eq!(g1.witness.len(), 4, "witness: {:?}", g1.witness);
    assert!(g1.witness[0].contains("api_entry"));
    assert!(g1.witness[1].contains("mid_hop"));
    assert!(g1.witness[2].contains("deep_index"));
    assert!(g1.witness[2].contains("depths.rs"), "hop crosses files");
    assert!(g1.witness[3].contains("slice-indexing"));
    // The witness is also rendered into the message, so plain-text
    // consumers (CI logs) see the path without JSON.
    assert!(g1.message.contains("api_entry"));
    assert!(g1.message.contains("deep_index"));
}

/// allow(d2) at a wall-time read silences the token rule but not the
/// taint: the public wrapper still gets a g2 finding whose witness ends
/// at the allowed read site.
#[test]
fn fixture_g2_taints_through_allowed_source() {
    let ws = repo_root().join("crates/vp-lint/fixtures/ws");
    let findings = vp_lint::scan_workspace(&ws).expect("scan fixture ws");
    let g2 = findings
        .iter()
        .find(|f| f.rule.name() == "g2" && f.file.ends_with("graphs.rs"))
        .expect("seeded taint-through-allow g2 finding");
    assert!(g2.message.contains("wrapped_now"));
    assert!(
        g2.witness.last().expect("witness").contains("SystemTime::now"),
        "witness: {:?}",
        g2.witness
    );
    // And no d2 finding fires at the allowed read site.
    assert!(!findings
        .iter()
        .any(|f| f.rule.name() == "d2" && f.file.ends_with("graphs.rs")));
}
