//! Tier-1 gate: the sharded scan engine must reproduce the serial engine
//! bit-for-bit on a tiny world, fast enough to run in every `cargo test`.
//!
//! The exhaustive matrix (two worlds, three fault configs, merge-algebra
//! property tests) lives in `crates/verfploeter/tests/sharded_equivalence.rs`;
//! this is the always-on smoke version of the same contract.

use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::SimTime;
use verfploeter_suite::sim::{FaultConfig, Scenario, StaticOracle};
use verfploeter_suite::topology::TopologyConfig;
use verfploeter_suite::vp::scan::{run_scan, run_scan_sharded, ScanConfig};

#[test]
fn sharded_scan_matches_serial_bit_for_bit() {
    let s = Scenario::broot(TopologyConfig::tiny(7002), 7);
    let hitlist = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let serial = run_scan(
        &s.world,
        &hitlist,
        &s.announcement,
        Box::new(StaticOracle::new(s.routing())),
        FaultConfig::default(),
        SimTime::ZERO,
        &ScanConfig::default(),
        0x9a7e,
    );
    for shards in [1usize, 2, 7, 16] {
        let sharded = run_scan_sharded(
            &s.world,
            &hitlist,
            &s.announcement,
            &|| Box::new(StaticOracle::new(s.routing())),
            FaultConfig::default(),
            SimTime::ZERO,
            &ScanConfig::default(),
            0x9a7e,
            shards,
        );
        assert_eq!(serial.cleaning, sharded.cleaning, "K={shards}");
        assert_eq!(serial.sim_stats, sharded.sim_stats, "K={shards}");
        assert_eq!(serial.probes_sent, sharded.probes_sent, "K={shards}");
        assert_eq!(serial.last_probe, sharded.last_probe, "K={shards}");
        assert_eq!(
            serial.catchments.len(),
            sharded.catchments.len(),
            "K={shards}"
        );
        for (block, site) in serial.catchments.iter() {
            assert_eq!(
                sharded.catchments.site_of(block),
                Some(site),
                "K={shards}, block {block}"
            );
        }
        assert_eq!(serial.rtts, sharded.rtts, "K={shards}");
    }
}
