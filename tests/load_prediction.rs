//! Integration: load-aware prediction (§3.2, §5.4, §5.5) end to end —
//! measured catchments, weighted by query logs, validated against a
//! ground-truth replay.

use verfploeter_suite::dns::{LoadModel, QueryLog};
use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::SimTime;
use verfploeter_suite::sim::{FaultConfig, Scenario, StaticOracle};
use verfploeter_suite::topology::TopologyConfig;
use verfploeter_suite::vp::load::{load_fraction_to, load_split, mappability};
use verfploeter_suite::vp::predict::{actual_load_fraction, hourly_prediction};
use verfploeter_suite::vp::scan::{run_scan, ScanConfig, ScanResult};

fn setup() -> (Scenario, ScanResult) {
    let s = Scenario::broot(
        TopologyConfig {
            seed: 7004,
            num_ases: 400,
            max_blocks: 10_000,
            ..TopologyConfig::default()
        },
        7,
    );
    let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let table = s.routing();
    let scan = run_scan(
        &s.world,
        &hl,
        &s.announcement,
        Box::new(StaticOracle::new(table)),
        FaultConfig::default(),
        SimTime::ZERO,
        &ScanConfig::default(),
        41,
    );
    (s, scan)
}

#[test]
fn same_day_prediction_is_close_to_replay() {
    let (s, scan) = setup();
    let log = QueryLog::ditl(&s.world, LoadModel::default(), "L");
    let table = s.routing();
    for site in &s.announcement.sites {
        let predicted = load_fraction_to(&scan.catchments, &log, site.id);
        let actual = actual_load_fraction(&table, &log, site.id);
        let err = (predicted - actual).abs() * 100.0;
        assert!(
            err < 8.0,
            "site {}: predicted {predicted:.3} vs actual {actual:.3} ({err:.1} pp)",
            site.name
        );
    }
}

#[test]
fn mappability_and_split_are_consistent() {
    let (s, scan) = setup();
    let log = QueryLog::ditl(&s.world, LoadModel::default(), "L");
    let m = mappability(&scan.catchments, &log);
    assert!(m.blocks_mapped <= m.blocks_seen);
    assert!(m.queries_mapped <= m.queries_seen);
    // ~response-rate share of traffic blocks should be mapped.
    assert!(m.blocks_mapped_frac() > 0.3 && m.blocks_mapped_frac() < 0.9);
    let split = load_split(&scan.catchments, &log);
    let total: f64 = split.values().sum();
    assert!((total - m.queries_seen).abs() / m.queries_seen < 1e-9);
    let unknown = split.get(&None).copied().unwrap_or(0.0);
    assert!((unknown - (m.queries_seen - m.queries_mapped)).abs() < 1e-6);
}

#[test]
fn hourly_series_is_diurnal_and_consistent() {
    let (s, scan) = setup();
    let log = QueryLog::ditl(&s.world, LoadModel::default(), "L");
    let hours = hourly_prediction(&scan.catchments, &log);
    assert_eq!(hours.len(), 24);
    let totals: Vec<f64> = hours.iter().map(|h| h.values().sum::<f64>()).collect();
    let max = totals.iter().cloned().fold(f64::MIN, f64::max);
    let min = totals.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min > 1.1, "no diurnal swing: {min:.0}..{max:.0} q/s");
    // Integrated hourly rates ≈ daily totals.
    let daily_from_hours: f64 = totals.iter().map(|t| t * 3600.0).sum();
    let rel = (daily_from_hours - log.total_daily()).abs() / log.total_daily();
    assert!(rel < 0.05, "hourly integral off by {rel:.3}");
}

#[test]
fn regional_service_is_load_sensitive() {
    // For a .nl-style service the block-weighted and load-weighted splits
    // must differ much more than for the global service (§5.4's point that
    // calibration is critical for regional services).
    let (s, scan) = setup();
    let global = QueryLog::ditl(&s.world, LoadModel::default(), "G");
    let regional = QueryLog::regional(&s.world, LoadModel::default(), "R", "NL");
    let site = s.announcement.sites[0].id;
    let by_blocks = scan.catchments.fraction_to(site);
    let global_gap = (load_fraction_to(&scan.catchments, &global, site) - by_blocks).abs();
    let regional_gap = (load_fraction_to(&scan.catchments, &regional, site) - by_blocks).abs();
    assert!(
        regional_gap > global_gap,
        "regional gap {regional_gap:.3} should exceed global gap {global_gap:.3}"
    );
}
