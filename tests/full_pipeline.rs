//! End-to-end integration: the full Verfploeter pipeline against a world,
//! checked against routing ground truth the pipeline never sees.

use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::{SimDuration, SimTime};
use verfploeter_suite::sim::{FaultConfig, Scenario, StaticOracle};
use verfploeter_suite::topology::TopologyConfig;
use verfploeter_suite::vp::scan::{run_scan, ScanConfig};
use verfploeter_suite::vp::ProbeConfig;

fn scenario() -> Scenario {
    Scenario::broot(TopologyConfig::tiny(7001), 7)
}

#[test]
fn catchments_equal_ground_truth_under_faults() {
    let s = scenario();
    let hitlist = Hitlist::from_internet(
        &s.world,
        &HitlistConfig {
            wrong_addr_prob: 0.0,
            ..HitlistConfig::default()
        },
    );
    let table = s.routing();
    let result = run_scan(
        &s.world,
        &hitlist,
        &s.announcement,
        Box::new(StaticOracle::new(table.clone())),
        FaultConfig {
            // Duplicates and unsolicited traffic are noise the cleaning
            // removes without losing blocks; aliased/late replies WOULD
            // cost coverage (they are dropped per §4), so they stay off
            // for this exact-coverage check.
            duplicate_prob: 0.1,
            max_duplicates: 50,
            unsolicited_prob: 0.02,
            ..FaultConfig::none()
        },
        SimTime::ZERO,
        &ScanConfig::default(),
        11,
    );
    // Every responsive block mapped, every mapping correct, despite the
    // duplicate/unsolicited noise.
    let responsive = s.world.responsive_blocks().count();
    assert_eq!(result.catchments.len(), responsive);
    for (block, site) in result.catchments.iter() {
        let info = s.world.block(block).unwrap();
        assert_eq!(table.site_of_pop(info.pop), Some(site));
    }
    assert!(result.cleaning.is_consistent());
}

#[test]
fn per_site_block_counts_match_world_side_truth() {
    let s = scenario();
    let hitlist = Hitlist::from_internet(
        &s.world,
        &HitlistConfig {
            wrong_addr_prob: 0.0,
            ..HitlistConfig::default()
        },
    );
    let table = s.routing();
    let result = run_scan(
        &s.world,
        &hitlist,
        &s.announcement,
        Box::new(StaticOracle::new(table.clone())),
        FaultConfig::none(),
        SimTime::ZERO,
        &ScanConfig::default(),
        12,
    );
    // Independent world-side truth: count responsive blocks per site.
    let mut truth = std::collections::BTreeMap::new();
    for b in s.world.responsive_blocks() {
        let site = table.site_of_pop(b.pop).unwrap();
        *truth.entry(site).or_insert(0usize) += 1;
    }
    assert_eq!(result.catchments.site_counts(), truth);
}

#[test]
fn measurement_rounds_are_separated_by_ident() {
    // Two overlapping measurement rounds with different ICMP identifiers:
    // each round's cleaning must keep only its own replies.
    let s = scenario();
    let hitlist = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let table = s.routing();
    let cfg_a = ScanConfig {
        name: "round-A".into(),
        probe: ProbeConfig {
            ident: 10,
            ..ProbeConfig::default()
        },
        cutoff: SimDuration::from_mins(15),
        ..ScanConfig::default()
    };
    let cfg_b = ScanConfig {
        name: "round-B".into(),
        probe: ProbeConfig {
            ident: 11,
            ..ProbeConfig::default()
        },
        cutoff: SimDuration::from_mins(15),
        ..ScanConfig::default()
    };
    let a = run_scan(
        &s.world,
        &hitlist,
        &s.announcement,
        Box::new(StaticOracle::new(table.clone())),
        FaultConfig::none(),
        SimTime::ZERO,
        &cfg_a,
        13,
    );
    let b = run_scan(
        &s.world,
        &hitlist,
        &s.announcement,
        Box::new(StaticOracle::new(table)),
        FaultConfig::none(),
        SimTime::ZERO + SimDuration::from_mins(15),
        &cfg_b,
        14,
    );
    assert_eq!(a.cleaning.foreign, 0);
    assert_eq!(b.cleaning.foreign, 0);
    assert_eq!(a.catchments.len(), b.catchments.len());
}

#[test]
fn churn_makes_rounds_differ_in_coverage_not_correctness() {
    let s = scenario();
    let hitlist = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let table = s.routing();
    let faults = FaultConfig {
        churn_down_prob: 0.2,
        ..FaultConfig::none()
    };
    let run_at = |mins: u64, ident: u16, seed: u64| {
        run_scan(
            &s.world,
            &hitlist,
            &s.announcement,
            Box::new(StaticOracle::new(table.clone())),
            faults.clone(),
            SimTime::ZERO + SimDuration::from_mins(mins),
            &ScanConfig {
                name: format!("churn-{ident}"),
                probe: ProbeConfig {
                    ident,
                    ..ProbeConfig::default()
                },
                cutoff: SimDuration::from_mins(15),
                ..ScanConfig::default()
            },
            seed,
        )
    };
    let r0 = run_at(0, 20, 15);
    let r1 = run_at(15, 21, 16);
    // Coverage differs between rounds (some blocks down per round)...
    let (_, appeared, disappeared) = r0.catchments.diff(&r1.catchments);
    assert!(appeared > 0, "no from-NR churn");
    assert!(disappeared > 0, "no to-NR churn");
    // ...but every observation in both rounds is still correct.
    for result in [&r0, &r1] {
        for (block, site) in result.catchments.iter() {
            let info = s.world.block(block).unwrap();
            assert_eq!(table.site_of_pop(info.pop), Some(site));
        }
    }
}
