//! Integration: the vp-daemon telemetry plane end to end.
//!
//! Drives the daemon's scan-round loop in sim time at tiny scale — the
//! same configuration `scripts/check.sh` runs through the `vp_daemon`
//! binary — and pins its two publication surfaces:
//!
//! * the canonical `vp-daemon-status/v1` document validates against its
//!   schema and byte-matches the golden under `results/daemon/`;
//! * the Prometheus scrape byte-matches its golden;
//! * both are shard-count-invariant (§7): a 1-shard daemon and a 2-shard
//!   daemon publish identical bytes apart from the declared shard count;
//! * the daemon's streamed diffs equal the offline batch pipeline over
//!   `Lab::tangled_rounds` — live and post-hoc views of STV-3-23 agree
//!   exactly, because the daemon reuses the dataset's seeds and names.

use serde_json::Value;
use vp_experiments::{Daemon, DaemonConfig, Lab, Scale};
use vp_monitor::pipeline::run_diff_pipeline;
use vp_monitor::schema::validate_tagged;

/// The golden configuration: tiny scale, 6 rounds, 2 shards, window 8 —
/// exactly what `scripts/check.sh` passes to the `vp_daemon` binary.
fn golden_config() -> DaemonConfig {
    DaemonConfig {
        shards: 2,
        rounds: 6,
        window: 8,
        ..DaemonConfig::new(Scale::Tiny)
    }
}

fn run_daemon(config: &DaemonConfig) -> Daemon {
    let mut daemon = Daemon::new(config);
    for _ in 0..config.rounds {
        daemon.run_round();
    }
    daemon
}

fn status_text(daemon: &Daemon) -> String {
    let mut text = serde_json::to_string_pretty(&daemon.status_doc()).expect("status json");
    text.push('\n'); // the binary writes a trailing newline
    text
}

#[test]
fn daemon_run_is_deterministic_and_matches_goldens() {
    let config = golden_config();
    let first = run_daemon(&config);
    let second = run_daemon(&config);

    // Schema-valid at every publication point.
    let doc = first.status_doc();
    assert_eq!(validate_tagged(&doc), Vec::<String>::new());
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("vp-daemon-status/v1")
    );

    // Byte-identical across runs: the loop has no hidden state.
    let status = status_text(&first);
    let scrape = first.scrape();
    assert_eq!(status, status_text(&second));
    assert_eq!(scrape, second.scrape());

    // And the committed goldens are exactly what the daemon publishes.
    let golden_status = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/daemon/vp_daemon_status.json"
    ))
    .expect("committed status golden");
    let golden_scrape = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/daemon/vp_daemon_scrape.prom"
    ))
    .expect("committed scrape golden");
    assert_eq!(status, golden_status, "status doc diverged from golden");
    assert_eq!(scrape, golden_scrape, "scrape diverged from golden");
}

/// §7 carried to the telemetry plane: the shard count changes wall-clock,
/// never the published telemetry (apart from the declared `shards`
/// config field and its gauge).
#[test]
fn daemon_telemetry_is_shard_count_invariant() {
    let two = run_daemon(&golden_config());
    let one = run_daemon(&DaemonConfig {
        shards: 1,
        ..golden_config()
    });

    assert_eq!(one.tracker().diffs(), two.tracker().diffs());
    assert_eq!(one.tracker().summary(), two.tracker().summary());
    assert_eq!(one.tracker().alerts_snapshot(), two.tracker().alerts_snapshot());
    assert_eq!(
        serde_json::to_string_pretty(&one.tracker().drift_doc("x")).ok(),
        serde_json::to_string_pretty(&two.tracker().drift_doc("x")).ok()
    );
    assert_eq!(
        one.scan_metrics().to_canonical_json(),
        two.scan_metrics().to_canonical_json()
    );

    // The full surfaces differ only where they declare the shard count.
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("\"shards\"") && !l.contains("daemon_shards"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&status_text(&one)), strip(&status_text(&two)));
    assert_eq!(strip(&one.scrape()), strip(&two.scrape()));
}

/// The live stream and the offline batch are the same dataset: daemon
/// round r replays `tangled_rounds()[r]` bit for bit, so the streamed
/// drift documents equal `run_diff_pipeline` over the cached rounds.
#[test]
fn daemon_stream_equals_offline_batch_pipeline() {
    let config = golden_config();
    let daemon = run_daemon(&config);

    let lab = Lab::new(Scale::Tiny);
    let rounds = lab.tangled_rounds();
    let origins: vp_monitor::diff::Origins = lab
        .tangled()
        .world
        .blocks
        .iter()
        .map(|b| (b.block, b.origin))
        .collect();
    let batch = run_diff_pipeline(
        daemon.meta().source.as_str(),
        &rounds[..config.rounds as usize],
        Some(&origins),
        None, // batch has no scan durations; diffs don't carry them
        &config.alert,
    );

    assert_eq!(daemon.tracker().diffs(), &batch.diffs[..]);
    assert_eq!(daemon.tracker().summary(), &batch.summary);
    assert_eq!(daemon.tracker().transitions(), &batch.transitions[..]);
}
