//! Quickstart: map the catchments of a two-site anycast service.
//!
//! Builds a small synthetic Internet, deploys a B-Root-like two-site
//! anycast service on it, runs one full Verfploeter measurement (probe →
//! per-site capture → central forwarding → cleaning → catchment map), and
//! prints what the operator learns.
//!
//! Run with: `cargo run --release --example quickstart`

use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::SimTime;
use verfploeter_suite::sim::{FaultConfig, Scenario, StaticOracle};
use verfploeter_suite::topology::TopologyConfig;
use verfploeter_suite::vp::report::{count, pct};
use verfploeter_suite::vp::scan::{run_scan, ScanConfig};

fn main() {
    // 1. A world to measure: ~1000 ASes, tens of thousands of /24 blocks,
    //    and a two-site anycast deployment (LAX + MIA).
    let config = TopologyConfig {
        seed: 42,
        num_ases: 1000,
        max_blocks: 30_000,
        ..TopologyConfig::default()
    };
    let scenario = Scenario::broot(config, /* policy seed */ 7);
    println!(
        "world: {} ASes, {} announced prefixes, {} populated /24 blocks",
        scenario.world.graph.len(),
        scenario.world.prefixes.len(),
        scenario.world.blocks.len(),
    );
    for site in &scenario.announcement.sites {
        println!("site {}: hosted by {}", site.name, site.host_asn);
    }

    // 2. The hitlist: one representative target per populated /24.
    let hitlist = Hitlist::from_internet(&scenario.world, &HitlistConfig::default());
    println!("hitlist: {} targets", count(hitlist.len() as u64));

    // 3. One Verfploeter measurement round. The oracle is the converged
    //    BGP routing of the deployment — the mechanism the prober measures
    //    but never reads directly.
    let routing = scenario.routing();
    let result = run_scan(
        &scenario.world,
        &hitlist,
        &scenario.announcement,
        Box::new(StaticOracle::new(routing)),
        FaultConfig::default(),
        SimTime::ZERO,
        &ScanConfig::default(),
        1,
    );

    // 4. What the operator learns.
    println!(
        "\nscan complete: {} probes sent, {} blocks mapped ({} response rate)",
        count(result.probes_sent),
        count(result.catchments.len() as u64),
        pct(result.response_rate(hitlist.len())),
    );
    println!(
        "cleaning: {} raw replies -> kept {} (dups {}, aliased {}, late {}, foreign {})",
        count(result.cleaning.total),
        count(result.cleaning.kept),
        count(result.cleaning.duplicates),
        count(result.cleaning.unprobed_source),
        count(result.cleaning.late),
        count(result.cleaning.foreign),
    );
    println!("\ncatchment split:");
    for site in &scenario.announcement.sites {
        println!(
            "  {}: {} of mapped blocks",
            site.name,
            pct(result.catchments.fraction_to(site.id)),
        );
    }
}
