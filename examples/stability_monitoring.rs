//! Continuous catchment monitoring: finding unstable networks (§6.3).
//!
//! The paper closes §6.3 noting that "an additional application of
//! Verfploeter may be identification and resolution of such instability".
//! This example is that application: it measures a nine-site testbed's
//! catchment every 15 minutes, classifies every round (stable / flipped /
//! to-NR / from-NR), and reports the ASes responsible for the flips so an
//! operator knows where to point the ticket.
//!
//! Run with: `cargo run --release --example stability_monitoring`

use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::{SimDuration, SimTime};
use verfploeter_suite::sim::{FaultConfig, FlippingOracle, Scenario};
use verfploeter_suite::topology::TopologyConfig;
use verfploeter_suite::vp::report::{count, pct};
use verfploeter_suite::vp::scan::{run_scan, ScanConfig};
use verfploeter_suite::vp::stability::{classify_rounds, flips_by_as, unstable_blocks};
use verfploeter_suite::vp::ProbeConfig;

fn main() {
    let config = TopologyConfig {
        seed: 2023,
        num_ases: 800,
        max_blocks: 20_000,
        ..TopologyConfig::default()
    };
    let scenario = Scenario::tangled(config, 7);
    let hitlist = Hitlist::from_internet(&scenario.world, &HitlistConfig::default());
    let table = scenario.routing();
    let flip_model = scenario.flip_model(0xF00D, &table);
    let interval = SimDuration::from_mins(15);
    let rounds = 24; // six hours of monitoring

    println!(
        "monitoring a {}-site deployment across {} blocks, {} rounds at 15-minute intervals",
        scenario.announcement.sites.len(),
        count(hitlist.len() as u64),
        rounds,
    );

    let mut maps = Vec::with_capacity(rounds);
    for r in 0..rounds as u32 {
        let oracle = FlippingOracle::new(
            table.clone(),
            scenario.world.graph.clone(),
            flip_model.clone(),
            interval,
        );
        let start = SimTime::ZERO + SimDuration(interval.0 * r as u64);
        let result = run_scan(
            &scenario.world,
            &hitlist,
            &scenario.announcement,
            Box::new(oracle),
            FaultConfig::default(),
            start,
            &ScanConfig {
                name: format!("monitor/r{r}"),
                probe: ProbeConfig {
                    ident: 500 + r as u16,
                    ..ProbeConfig::default()
                },
                ..ScanConfig::default()
            },
            900 + r as u64,
        );
        maps.push(result.catchments);
    }

    // Round-over-round classification (the Fig. 9 series).
    let deltas = classify_rounds(&maps);
    let avg = |f: &dyn Fn(&verfploeter_suite::vp::stability::RoundDelta) -> u64| {
        deltas.iter().map(f).sum::<u64>() / deltas.len() as u64
    };
    println!(
        "\nper-round averages: stable {} | flipped {} | to-NR {} | from-NR {}",
        count(avg(&|d| d.stable)),
        count(avg(&|d| d.flipped)),
        count(avg(&|d| d.to_nr)),
        count(avg(&|d| d.from_nr)),
    );
    let responders = avg(&|d| d.stable) + avg(&|d| d.flipped);
    println!(
        "flip rate: {} of continuing responders per round",
        pct(avg(&|d| d.flipped) as f64 / responders.max(1) as f64),
    );

    // Who to call: the flip-heavy ASes.
    let flips = flips_by_as(&maps, &scenario.world);
    let (top, other) = flips.top_with_other(3);
    println!("\nflip-heavy ASes (the operator's escalation list):");
    for row in &top {
        println!(
            "  {}: {} flips across {} blocks ({} of all flips)",
            row.asn,
            count(row.flips),
            count(row.blocks),
            pct(row.frac),
        );
    }
    println!(
        "  (other: {} flips across {} ASes)",
        count(other.flips),
        flips.flipping_ases().saturating_sub(top.len()),
    );
    println!(
        "\nblocks to exclude from single-shot analyses as unstable: {}",
        count(unstable_blocks(&maps).len() as u64),
    );
}
