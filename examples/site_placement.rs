//! Where should the next anycast site go? (§7's future-work suggestion.)
//!
//! Runs a Verfploeter measurement, extracts per-block RTTs from the same
//! replies that map the catchments, ranks countries by badly served query
//! volume, then verifies the suggestion by *deploying* a trial site in the
//! winning country and re-measuring.
//!
//! Run with: `cargo run --release --example site_placement`

use verfploeter_suite::bgp::Announcement;
use verfploeter_suite::dns::{LoadModel, QueryLog};
use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::{SimDuration, SimTime};
use verfploeter_suite::sim::{FaultConfig, Scenario, StaticOracle};
use verfploeter_suite::topology::{pick_host_ases, TopologyConfig};
use verfploeter_suite::vp::placement::{rtt_percentiles, suggest_sites};
use verfploeter_suite::vp::scan::{run_scan, ScanConfig};
use verfploeter_suite::vp::ProbeConfig;

fn main() {
    let config = TopologyConfig {
        seed: 4242,
        num_ases: 1000,
        max_blocks: 30_000,
        ..TopologyConfig::default()
    };
    let scenario = Scenario::broot(config, 7);
    let hitlist = Hitlist::from_internet(&scenario.world, &HitlistConfig::default());
    let load = QueryLog::ditl(&scenario.world, LoadModel::default(), "history");

    // Measure the current two-site deployment.
    let scan = run_scan(
        &scenario.world,
        &hitlist,
        &scenario.announcement,
        Box::new(StaticOracle::new(scenario.routing())),
        FaultConfig::default(),
        SimTime::ZERO,
        &ScanConfig::default(),
        1,
    );
    let (p50, p90, max) = rtt_percentiles(&scan.rtts).expect("non-empty scan");
    println!(
        "current deployment (LAX+MIA): RTT p50 {p50}, p90 {p90}, max {max} over {} blocks",
        scan.rtts.len()
    );

    // Rank candidate countries by badly served traffic.
    let threshold = SimDuration::from_millis(120);
    let suggestions = suggest_sites(&scan.rtts, &scenario.world.geodb, Some(&load), threshold, 5);
    println!("\ncandidate locations for a third site (RTT > {threshold}):");
    for s in &suggestions {
        println!(
            "  {:<14} {:>7} slow blocks, median RTT {}, {:.1}M affected queries/day",
            s.country.get().name,
            s.high_rtt_blocks,
            s.median_rtt,
            s.affected_queries / 1e6,
        );
    }
    let Some(winner) = suggestions.first() else {
        println!("\nno badly served region found — two sites suffice");
        return;
    };

    // Deploy a trial site in the winning country and re-measure.
    let code = winner.country.get().code;
    println!("\ndeploying a trial site in {} and re-measuring...", winner.country.get().name);
    let mut specs = vec![("LAX", "US"), ("MIA", "US")];
    specs.push(("NEW", code));
    let placements = pick_host_ases(&scenario.world, &specs);
    let trial = Announcement::from_placements(&placements, 2);
    let rescan = run_scan(
        &scenario.world,
        &hitlist,
        &trial,
        Box::new(StaticOracle::new(scenario.routing_for(&trial))),
        FaultConfig::default(),
        SimTime::ZERO,
        &ScanConfig {
            name: "trial".into(),
            probe: ProbeConfig {
                ident: 2,
                ..ProbeConfig::default()
            },
            ..ScanConfig::default()
        },
        2,
    );
    let (q50, q90, qmax) = rtt_percentiles(&rescan.rtts).expect("non-empty rescan");
    println!(
        "with the new site: RTT p50 {q50}, p90 {q90}, max {qmax}"
    );
    let new_site = trial.site_by_name("NEW").unwrap().id;
    println!(
        "the new site captures {:.1}% of mapped blocks",
        rescan.catchments.fraction_to(new_site) * 100.0
    );
    let before = scan
        .rtts
        .values()
        .filter(|r| *r >= threshold)
        .count();
    let after = rescan
        .rtts
        .values()
        .filter(|r| *r >= threshold)
        .count();
    println!(
        "badly served blocks: {before} -> {after} ({})",
        if after < before { "improved" } else { "no improvement" }
    );
}
