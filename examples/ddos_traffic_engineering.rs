//! Traffic engineering under DDoS: using prepending sweeps to move load.
//!
//! The paper's motivation (§1, §6.1): operators "need to shift load during
//! emergencies, like for DDoS attacks that can be absorbed using multiple
//! sites". This example simulates an attack whose sources concentrate in
//! one region, then uses Verfploeter's prepending sweep to find the
//! announcement configuration that best isolates attack traffic at one
//! site while keeping legitimate load balanced.
//!
//! Run with: `cargo run --release --example ddos_traffic_engineering`

use verfploeter_suite::dns::{LoadModel, QueryLog};
use verfploeter_suite::geo::world::country_by_code;
use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::SimTime;
use verfploeter_suite::sim::{FaultConfig, Scenario, StaticOracle};
use verfploeter_suite::topology::TopologyConfig;
use verfploeter_suite::vp::report::pct;
use verfploeter_suite::vp::scan::{run_scan, ScanConfig};

fn main() {
    let config = TopologyConfig {
        seed: 77,
        num_ases: 1000,
        max_blocks: 30_000,
        ..TopologyConfig::default()
    };
    let scenario = Scenario::broot(config, 7);
    let hitlist = Hitlist::from_internet(&scenario.world, &HitlistConfig::default());
    let lax = scenario.announcement.site_by_name("LAX").unwrap().id;
    let world = &scenario.world;

    // Legitimate load: the usual DITL-style day.
    let legit = QueryLog::ditl(world, LoadModel::default(), "legit");

    // Attack sources: blocks in one region (say, botnet-heavy in Brazil
    // and Argentina), each flooding at equal rate.
    let attack_countries: Vec<_> = ["BR", "AR"]
        .iter()
        .map(|c| country_by_code(c).expect("known country").0)
        .collect();
    let attack_blocks: Vec<_> = world
        .blocks
        .iter()
        .filter(|b| {
            world
                .geodb
                .locate(b.block)
                .is_some_and(|l| attack_countries.contains(&l.country))
        })
        .map(|b| b.block)
        .collect();
    println!(
        "attack: {} source blocks in BR/AR flooding the service",
        attack_blocks.len()
    );

    // Sweep prepending configurations; for each, measure catchments with
    // Verfploeter and compute (a) where attack traffic lands, (b) how the
    // legitimate load splits. The objective adapts to the deployment: pick
    // the config that maximizes attack isolation at the non-primary site
    // while not moving legitimate load more than 20 pp from the baseline.
    println!(
        "\n{:<10} {:>14} {:>14} {:>16}",
        "config", "attack@MIA", "legit@LAX", "mapped blocks"
    );
    let mut baseline_legit: Option<f64> = None;
    let mut best: Option<(String, f64)> = None;
    for (label, p_lax, p_mia) in [
        ("equal", 0u8, 0u8),
        ("+1 MIA", 0, 1),
        ("+2 MIA", 0, 2),
        ("+1 LAX", 1, 0),
        ("+2 LAX", 2, 0),
    ] {
        let mut ann = scenario.announcement.clone();
        ann.set_prepend("LAX", p_lax).set_prepend("MIA", p_mia);
        let routing = scenario.routing_for(&ann);
        let scan = run_scan(
            world,
            &hitlist,
            &ann,
            Box::new(StaticOracle::new(routing)),
            FaultConfig::default(),
            SimTime::ZERO,
            &ScanConfig {
                name: format!("ddos-{label}"),
                ..ScanConfig::default()
            },
            5,
        );
        // Attack isolation: fraction of attack blocks mapped to MIA.
        let mapped_attack: Vec<_> = attack_blocks
            .iter()
            .filter_map(|b| scan.catchments.site_of(*b))
            .collect();
        let attack_at_mia = mapped_attack.iter().filter(|s| **s != lax).count() as f64
            / mapped_attack.len().max(1) as f64;
        // Legit load at LAX (load-weighted).
        let legit_at_lax =
            verfploeter_suite::vp::load::load_fraction_to(&scan.catchments, &legit, lax);
        println!(
            "{label:<10} {:>14} {:>14} {:>16}",
            pct(attack_at_mia),
            pct(legit_at_lax),
            scan.catchments.len(),
        );
        let base = *baseline_legit.get_or_insert(legit_at_lax);
        // Constraint: don't move legitimate load more than 20 pp from the
        // current (equal) configuration. Objective: *separate* the traffic
        // classes — attack concentrated at MIA while legitimate load stays
        // at LAX (attack@MIA + legit@LAX - 1, positive = separated).
        let separation = attack_at_mia + legit_at_lax - 1.0;
        if (legit_at_lax - base).abs() <= 0.20
            && best.as_ref().is_none_or(|(_, s)| separation > *s)
        {
            best = Some((label.to_owned(), separation));
        }
    }

    match best {
        Some((label, score)) => println!(
            "\nchosen configuration: {label} — best attack/legitimate separation \
             (index {score:+.2}) within the 20 pp legitimate-load budget",
        ),
        None => println!("\nno configuration met the legitimate-load constraint"),
    }
}
