//! Pre-deployment planning with load-weighted catchments — the B-Root
//! story (§5.5 of the paper).
//!
//! An operator about to turn on a second anycast site wants to know how
//! much traffic each site will absorb *before* going live. The paper's
//! recipe: announce a test prefix in the planned configuration, map its
//! catchments with Verfploeter, and weight every mapped /24 by its query
//! volume from recent (unicast-era) logs. This example runs that recipe
//! and then "deploys", comparing the prediction against the load actually
//! measured at the sites.
//!
//! Run with: `cargo run --release --example deployment_planning`

use verfploeter_suite::dns::{LoadModel, QueryLog};
use verfploeter_suite::hitlist::{Hitlist, HitlistConfig};
use verfploeter_suite::net::SimTime;
use verfploeter_suite::sim::{FaultConfig, Scenario, StaticOracle};
use verfploeter_suite::topology::TopologyConfig;
use verfploeter_suite::vp::load::{load_fraction_to, mappability};
use verfploeter_suite::vp::predict::actual_load_fraction;
use verfploeter_suite::vp::report::pct;
use verfploeter_suite::vp::scan::{run_scan, ScanConfig};

fn main() {
    let config = TopologyConfig {
        seed: 1337,
        num_ases: 1000,
        max_blocks: 30_000,
        ..TopologyConfig::default()
    };
    let scenario = Scenario::broot(config, 7);
    let hitlist = Hitlist::from_internet(&scenario.world, &HitlistConfig::default());
    let lax = scenario.announcement.site_by_name("LAX").unwrap().id;
    let mia = scenario.announcement.site_by_name("MIA").unwrap().id;

    // Historical load from the unicast era (the DITL day).
    let history = QueryLog::ditl(&scenario.world, LoadModel::default(), "history");
    println!(
        "historical logs: {:.1}M queries/day from {} blocks",
        history.total_daily() / 1e6,
        history
            .world()
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| history.daily_by_idx(*i) > 0.0)
            .count(),
    );

    // Step 1: measure the planned deployment on a test prefix.
    let routing = scenario.routing();
    let scan = run_scan(
        &scenario.world,
        &hitlist,
        &scenario.announcement,
        Box::new(StaticOracle::new(routing.clone())),
        FaultConfig::default(),
        SimTime::ZERO,
        &ScanConfig::default(),
        3,
    );
    println!(
        "\ntest-prefix scan: {} blocks mapped",
        scan.catchments.len()
    );

    // Step 2: how much of the service's traffic does the map cover?
    let m = mappability(&scan.catchments, &history);
    println!(
        "traffic coverage: {} of traffic-sending blocks mapped, {} of queries",
        pct(m.blocks_mapped_frac()),
        pct(m.queries_mapped_frac()),
    );

    // Step 3: block-weighted vs load-weighted prediction.
    let by_blocks = scan.catchments.fraction_to(lax);
    let by_load = load_fraction_to(&scan.catchments, &history, lax);
    println!("\nprediction for LAX:");
    println!("  by block count (uncalibrated): {}", pct(by_blocks));
    println!("  by load weighting (calibrated): {}", pct(by_load));

    // Step 4: deploy and compare against what the sites actually measure.
    let actual = actual_load_fraction(&routing, &history, lax);
    println!("  actually measured after deploy: {}", pct(actual));
    println!(
        "\nprediction error: load-weighted {:.1} pp vs block-weighted {:.1} pp",
        (by_load - actual).abs() * 100.0,
        (by_blocks - actual).abs() * 100.0,
    );
    println!(
        "MIA absorbs the remainder: predicted {}, measured {}",
        pct(load_fraction_to(&scan.catchments, &history, mia)),
        pct(actual_load_fraction(&routing, &history, mia)),
    );
}
