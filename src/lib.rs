//! Umbrella crate for the Verfploeter reproduction workspace.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the actual functionality
//! lives in the `crates/` members. It re-exports the public crates so
//! examples can use a single dependency root.

pub use vp_atlas as atlas;
pub use vp_bgp as bgp;
pub use vp_dns as dns;
pub use vp_geo as geo;
pub use vp_hitlist as hitlist;
pub use vp_net as net;
pub use vp_packet as packet;
pub use vp_sim as sim;
pub use vp_topology as topology;
pub use verfploeter as vp;
