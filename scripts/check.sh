#!/usr/bin/env bash
# Full pre-merge check: build, test, the determinism-and-hygiene lint, an
# end-to-end observability pass (run one experiment with --obs full and
# validate the emitted reports against the checked-in schema snapshot),
# and the vp-monitor gates: validate every committed tagged document,
# replay the fig9 tiny sequence and byte-compare the drift/alert docs
# against the committed goldens, and check BENCH_scan.json against the
# committed perf baseline trajectory.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo run -q -p vp-lint -- --workspace

# Hot-path cost certification (DESIGN.md §17): the hot-region report must
# render (a scan with zero p-findings still lists the certified regions),
# and the allocation witness must hold its release-mode budget — the
# debug run above exercises the same scans but measures the reply-image
# debug-asserts, so only the release run binds.
cargo run -q --release -p vp-lint -- hotpath --report | grep "^hot region:" >/dev/null
cargo test -q --release --test alloc_witness

# The columnar/BTree scale-equivalence suite is the proof that the
# columnar scan core is unobservable from the outside; run it by name so
# a test-filter change can never silently drop it from the gate.
cargo test -q --test columnar_equivalence

# The graph subcommand must render (smoke test: a dot header and at
# least one edge), and a full scan must stay inside the tier-1 wall-time
# budget so the lint_gate test never becomes the slow step. The budget is
# per-rule so adding a rule grows the allowance instead of silently
# eating the remaining headroom of a hard constant (21 rules ≈ 3s today).
cargo run -q --release -p vp-lint -- graph --dot | head -n 20 | grep -q "^digraph"
cargo run -q --release -p vp-lint -- bench --reps 3 --budget-per-rule-ms 135

obs_dir="target/obs-check"
rm -rf "$obs_dir"
cargo run -q --release -p vp-experiments --bin fig2_broot_maps -- \
    --scale tiny --obs full --out "$obs_dir" >/dev/null
VP_OBS_REPORT_DIR="$PWD/$obs_dir/obs" cargo test -q -p vp-experiments \
    --test obs_report emitted_reports_match_schema_snapshot

# vp-monitor is a dev-dependency of the root package, so build its bin
# explicitly before calling it by path.
cargo build -q --release -p vp-monitor
vp_monitor="target/release/vp-monitor"

# Every committed tagged document must conform to its embedded schema.
# The flight golden is named explicitly: the *.report.json glob does not
# match it, and the flight_golden tests byte-compare against it. The
# daemon goldens use the directory form (every *.json inside).
"$vp_monitor" validate results/obs/*.report.json \
    results/obs/flight_scan15k.json \
    results/monitor/fig9_tiny.drift.json \
    results/monitor/fig9_tiny.alerts.json \
    results/monitor/bench_baseline.json \
    results/daemon >/dev/null

# Replay fig9 at tiny scale through the snapshot + diff pipeline and
# byte-compare against the committed goldens: any drift in the drift
# detector itself fails the build.
mon_dir="target/monitor-check"
rm -rf "$mon_dir"
# Via cargo run (not a bare target/release path): the root package's
# `cargo build --release` does not build vp-experiments bins, so a cold
# target directory would otherwise fail here.
cargo run -q --release -p vp-experiments --bin fig9_stability -- \
    --scale tiny --out "$mon_dir" \
    --snapshots "$mon_dir/rounds" --obs summary >/dev/null
"$vp_monitor" diff --rounds "$mon_dir/rounds" \
    --obs-report "$mon_dir/obs/fig9_stability.report.json" \
    --source fig9_stability/tiny --out "$mon_dir/monitor" >/dev/null
diff -u results/monitor/fig9_tiny.drift.json "$mon_dir/monitor/drift.json"
diff -u results/monitor/fig9_tiny.alerts.json "$mon_dir/monitor/alerts.json"

# The streaming path must tail the same snapshot directory to the same
# conclusion: watch --follow polls for new round files and folds them
# through the DriftTracker (proven byte-equal to the batch pipeline by
# proptest); here it consumes the 12 pre-existing tiny rounds and must
# reach the batch run's alert verdict.
"$vp_monitor" watch --rounds "$mon_dir/rounds" \
    --follow --until-rounds 12 --poll-ms 10 \
    | tail -n 1 | grep -q "alerts total"

# Daemon smoke: a deterministic 6-round sim-time run of the live
# telemetry plane (tiny scale, 2 shards — §7 makes the shard count
# unobservable) must republish byte-identical status/scrape surfaces to
# the committed goldens. The daemon_pipeline integration tests prove the
# same in-process; this gates the actual binary end to end.
daemon_dir="target/daemon-check"
rm -rf "$daemon_dir"
cargo run -q --release -p vp-experiments --bin vp_daemon -- \
    --scale tiny --rounds 6 --shards 2 --window 8 --pace sim \
    --out "$daemon_dir" >/dev/null
diff -u results/daemon/vp_daemon_status.json "$daemon_dir/status.json"
diff -u results/daemon/vp_daemon_scrape.prom "$daemon_dir/metrics.prom"

# Perf gate: the committed BENCH_scan.json must stay within tolerance of
# the committed baseline trajectory (exit nonzero on regression). The
# artifact carries the 15k/100k/1M-block scales with serial-executor and
# OS-threaded series; each (targets, K, threaded) key is gated against
# same-key baselines only. --host-factor scales the allowance for hosts
# measured slower than the baseline machine (VP_HOST_FACTOR, permille).
"$vp_monitor" check-bench --current BENCH_scan.json \
    --baseline results/monitor/bench_baseline.json \
    --host-factor "${VP_HOST_FACTOR:-1300}"

# Fresh threaded bench at the small scale: run the scan on real OS
# threads (K>1 rows run twice: inline and threaded), cross-check
# bit-identity per rep, and gate the fresh numbers against the committed
# trajectory. This is the only place CI actually executes the threaded
# engine against the perf baseline, so a scheduling regression (or a
# determinism break under preemption — the bench asserts identity before
# timing) fails the build here rather than after a baseline refresh.
bench_dir="target/bench-check"
rm -rf "$bench_dir" && mkdir -p "$bench_dir"
cargo run -q --release -p vp-bench --bin bench_scan -- \
    --reps 3 --targets 15000 --out "$bench_dir/BENCH_scan.json" \
    --flight "$bench_dir/flight_scan15k.json" >/dev/null
"$vp_monitor" check-bench --current "$bench_dir/BENCH_scan.json" \
    --baseline results/monitor/bench_baseline.json \
    --host-factor "${VP_HOST_FACTOR:-1300}"

# The fresh flight document (written to $bench_dir — never over the
# committed golden, which the flight_golden tests byte-compare) must
# validate against the vp-obs-flight/v1 schema and profile cleanly:
# the attribution report names the engine round and shard imbalance.
"$vp_monitor" validate "$bench_dir/flight_scan15k.json" >/dev/null
"$vp_monitor" profile "$bench_dir/flight_scan15k.json" | grep -q "scan.round"
"$vp_monitor" profile "$bench_dir/flight_scan15k.json" | grep -q "imbalance"

echo "check.sh: build + tests + lint + obs + flight + monitor gates all clean"
