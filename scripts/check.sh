#!/usr/bin/env bash
# Full pre-merge check: build, test, the determinism-and-hygiene lint, and
# an end-to-end observability pass (run one experiment with --obs full and
# validate the emitted reports against the checked-in schema snapshot).
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo run -q -p vp-lint -- --workspace

obs_dir="target/obs-check"
rm -rf "$obs_dir"
cargo run -q --release -p vp-experiments --bin fig2_broot_maps -- \
    --scale tiny --obs full --out "$obs_dir" >/dev/null
VP_OBS_REPORT_DIR="$PWD/$obs_dir/obs" cargo test -q -p vp-experiments \
    --test obs_report emitted_reports_match_schema_snapshot

echo "check.sh: build + tests + lint + obs reports all clean"
