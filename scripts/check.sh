#!/usr/bin/env bash
# Full pre-merge check: build, test, and the determinism-and-hygiene lint.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo run -q -p vp-lint -- --workspace
echo "check.sh: build + tests + lint all clean"
