//! Synthetic Internet generator.
//!
//! The paper measures the real Internet; this crate generates the stand-in
//! the simulator measures instead. A generated [`Internet`] contains:
//!
//! * an **AS graph** with Gao–Rexford relationships (providers, customers,
//!   peers) in three tiers — a fully meshed tier-1 clique, regional transit
//!   ASes, and stub ASes — each AS placed in a country drawn from the
//!   internet-user weights of [`vp_geo::world`];
//! * **points of presence** (PoPs): large ASes are present in many places,
//!   each inter-AS adjacency is anchored at a concrete PoP pair, and blocks
//!   are homed on PoPs — the raw material for hot-potato routing and the
//!   intra-AS catchment splits of Figs. 7 and 8;
//! * **announced prefixes** with a heavy-tailed per-AS count and a realistic
//!   length mix (/8 … /24), written into a longest-prefix-match origin
//!   table (the Route Views stand-in);
//! * **populated /24 blocks** with per-block responsiveness (≈55% of blocks
//!   answer pings, matching the ISI hitlist response rates the paper cites),
//!   daily DNS load weights (heavy-tailed, with country-level resolver
//!   concentration), and geolocation entries (a sliver is deliberately
//!   unlocatable, reproducing Table 4's "no location" row).
//!
//! Everything is deterministic in the [`TopologyConfig::seed`].

pub mod blocks;
pub mod config;
pub mod graph;
pub mod index;
pub mod internet;
pub mod lpm;
pub mod prefixes;
pub mod sites;

pub use blocks::BlockInfo;
pub use config::TopologyConfig;
pub use index::BlockIndex;
pub use lpm::ArenaLpm;
pub use graph::{AsNode, AsTier, Pop, PopId};
pub use internet::Internet;
pub use prefixes::PrefixInfo;
pub use prefixes::ANYCAST_REGION;
pub use sites::{broot_specs, pick_host_ases, tangled_specs, SitePlacement};
