//! Per-/24 block attributes: homing, responsiveness, load and geolocation.

use rand::Rng;
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};
use vp_geo::{GeoDb, GeoLoc};
use vp_net::{Asn, Block24};

use crate::config::TopologyConfig;
use crate::graph::{AsGraph, PopId};
use crate::prefixes::PrefixInfo;

/// Attributes of one populated `/24` block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockInfo {
    pub block: Block24,
    pub origin: Asn,
    /// Index of the announced prefix this block belongs to.
    pub prefix_idx: u32,
    /// The PoP of the origin AS that homes this block — determines which
    /// egress the block's traffic uses under hot-potato routing.
    pub pop: PopId,
    /// Whether the block's representative address answers pings.
    pub responsive: bool,
    /// Whether this block sends DNS queries to the service at all.
    pub sends_queries: bool,
    /// Final octet of the representative address (the hitlist target).
    pub rep_octet: u8,
    /// Expected daily DNS queries from this block toward a root-like
    /// service (the load weight of §3.2).
    pub daily_queries: f64,
}

impl BlockInfo {
    /// The representative address — the one the hitlist probes.
    pub fn representative(&self) -> vp_net::Ipv4Addr {
        self.block.addr(self.rep_octet)
    }
}

/// Generates the block attribute table and the geolocation database.
///
/// Blocks are homed on a PoP of their origin AS (uniformly), geolocated
/// near that PoP, marked responsive with the configured probability, and
/// given a heavy-tailed load weight with country-level resolver
/// concentration: a small share of blocks in concentration-heavy countries
/// carries most of that country's queries (§5.4: "load seems to concentrate
/// traffic in fewer hotspots").
pub fn generate_blocks(
    graph: &AsGraph,
    prefixes: &[PrefixInfo],
    cfg: &TopologyConfig,
    rng: &mut Pcg64,
) -> (Vec<BlockInfo>, GeoDb) {
    let mut blocks = Vec::new();
    let mut geodb = GeoDb::new();
    'outer: for (idx, info) in prefixes.iter().enumerate() {
        for block in crate::prefixes::populate_blocks(info, cfg, rng) {
            if blocks.len() >= cfg.max_blocks {
                break 'outer;
            }
            let node = graph.node(info.origin);
            let pop = node.pops[rng.gen_range(0..node.pops.len())];
            let pop_info = &graph.pops[pop.index()];
            let country = pop_info.country.get();

            // Load: log-normal body with resolver concentration.
            let conc = country.resolver_concentration;
            let normal: f64 = sample_standard_normal(rng);
            let mu = cfg.load_mean_per_block.ln() - cfg.load_sigma * cfg.load_sigma / 2.0;
            let mut daily = (mu + cfg.load_sigma * normal).exp();
            let hotspot = rng.gen_bool(0.03);
            if hotspot {
                // Resolver hotspot: carries the concentrated share.
                daily *= 1.0 + conc * 10.0;
            } else {
                daily *= 1.0 - conc * 0.8;
            }

            // Responsiveness structure:
            // * regional — some countries filter ICMP heavily (the paper's
            //   unmappable load concentrates "in Korea, with some in Japan
            //   and central and southeast Asia", §5.4);
            // * participation-correlated — resolver infrastructure answers
            //   pings far more often than the average block (Table 5 maps
            //   87% of traffic-sending blocks at a 55% overall rate). The
            //   non-sender rate is solved so the mixture matches the
            //   configured overall responsiveness. Crucially the rate does
            //   NOT depend on query *volume*, which would bias the
            //   load-weighted catchment estimator.
            let regional = match country.code {
                "KR" => 0.35,
                "JP" => 0.75,
                "PK" | "BD" => 0.8,
                _ => 1.0,
            };
            let sends_queries = rng.gen_bool(cfg.participation);
            let base = if sends_queries {
                cfg.sender_responsiveness
            } else {
                ((cfg.responsiveness - cfg.participation * cfg.sender_responsiveness)
                    / (1.0 - cfg.participation))
                    .clamp(0.0, 1.0)
            };
            let responsive = rng.gen_bool((base * regional).min(1.0));
            if !rng.gen_bool(cfg.unlocatable_fraction) {
                let (lat, lon) = pop_info.country.get().sample_location(rng);
                geodb.insert(
                    block,
                    GeoLoc {
                        country: pop_info.country,
                        lat,
                        lon,
                    },
                );
            }
            blocks.push(BlockInfo {
                block,
                origin: info.origin,
                prefix_idx: idx as u32,
                pop,
                responsive,
                sends_queries,
                rep_octet: rng.gen_range(1..=254),
                daily_queries: daily,
            });
        }
    }
    (blocks, geodb)
}

/// Standard normal via Box–Muller (avoids a distribution-crate dependency).
fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefixes::allocate_prefixes;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (AsGraph, Vec<PrefixInfo>, Vec<BlockInfo>, GeoDb, TopologyConfig) {
        let cfg = TopologyConfig::tiny(seed);
        let mut rng = Pcg64::seed_from_u64(seed);
        let graph = AsGraph::generate(&cfg, &mut rng);
        let prefixes = allocate_prefixes(&graph, &cfg, &mut rng);
        let (blocks, geodb) = generate_blocks(&graph, &prefixes, &cfg, &mut rng);
        (graph, prefixes, blocks, geodb, cfg)
    }

    #[test]
    fn blocks_respect_cap_and_prefix_membership() {
        let (_, prefixes, blocks, _, cfg) = setup(1);
        assert!(!blocks.is_empty());
        assert!(blocks.len() <= cfg.max_blocks);
        for b in &blocks {
            let info = &prefixes[b.prefix_idx as usize];
            assert!(info.prefix.covers(b.block.prefix()));
            assert_eq!(info.origin, b.origin);
        }
    }

    #[test]
    fn pops_belong_to_origin_as() {
        let (graph, _, blocks, _, _) = setup(2);
        for b in &blocks {
            assert_eq!(graph.pops[b.pop.index()].asn, b.origin);
        }
    }

    #[test]
    fn responsiveness_near_configured_rate() {
        let (_, _, blocks, _, cfg) = setup(3);
        let responsive = blocks.iter().filter(|b| b.responsive).count() as f64;
        let rate = responsive / blocks.len() as f64;
        assert!(
            (rate - cfg.responsiveness).abs() < 0.05,
            "responsiveness {rate:.3} vs configured {}",
            cfg.responsiveness
        );
    }

    #[test]
    fn geodb_covers_almost_all_blocks() {
        let (_, _, blocks, geodb, _) = setup(4);
        let located = blocks
            .iter()
            .filter(|b| geodb.locate(b.block).is_some())
            .count();
        assert!(located as f64 / blocks.len() as f64 > 0.99);
    }

    #[test]
    fn load_is_heavy_tailed() {
        let (_, _, blocks, _, _) = setup(5);
        let mut loads: Vec<f64> = blocks.iter().map(|b| b.daily_queries).collect();
        loads.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = loads.iter().sum();
        let top1pct: f64 = loads[..loads.len() / 100].iter().sum();
        assert!(
            top1pct / total > 0.2,
            "top 1% of blocks carries only {:.1}% of load",
            100.0 * top1pct / total
        );
        assert!(loads.iter().all(|&l| l >= 0.0 && l.is_finite()));
    }

    #[test]
    fn deterministic_generation() {
        let (_, _, a, _, _) = setup(42);
        let (_, _, b, _, _) = setup(42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.block, y.block);
            assert_eq!(x.responsive, y.responsive);
            assert!((x.daily_queries - y.daily_queries).abs() < 1e-9);
        }
    }

    #[test]
    fn blocks_are_unique() {
        let (_, _, blocks, _, _) = setup(6);
        let set: std::collections::HashSet<Block24> = blocks.iter().map(|b| b.block).collect();
        assert_eq!(set.len(), blocks.len());
    }
}
