//! Announced-prefix allocation.
//!
//! Every AS originates at least one prefix; large ASes originate up to
//! ~10^3 (the x-axis range of the paper's Fig. 7). Prefix lengths follow a
//! mix shaped like the announced-prefix histogram of Fig. 8: /19–/23 most
//! common, progressively fewer toward /8. Address space is carved
//! sequentially from 1.0.0.0 upward, naturally aligned; everything at or
//! above [`ANYCAST_REGION`] is reserved for anycast service prefixes so the
//! two can never collide.

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use serde::{Deserialize, Serialize};
use vp_net::{Asn, Block24, Ipv4Addr, Prefix};

use crate::config::TopologyConfig;
use crate::graph::{AsGraph, AsTier};

/// Start of the region reserved for anycast service prefixes (240.0.0.0).
pub const ANYCAST_REGION: Ipv4Addr = Ipv4Addr::new(240, 0, 0, 0);

/// An announced prefix and its origin AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixInfo {
    pub prefix: Prefix,
    pub origin: Asn,
}

/// Prefix lengths and their relative announcement frequency, shaped after
/// the counts reported in the paper's Fig. 8 (8×/8 … 49.4k×/22, 40.3k×/23)
/// plus a /24 share.
const LENGTH_WEIGHTS: &[(u8, f64)] = &[
    (8, 8.0),
    (9, 10.0),
    (10, 17.0),
    (11, 61.0),
    (12, 181.0),
    (13, 362.0),
    (14, 653.0),
    (15, 1_100.0),
    (16, 8_300.0),
    (17, 5_000.0),
    (18, 8_500.0),
    (19, 18_500.0),
    (20, 28_100.0),
    (21, 30_300.0),
    (22, 49_400.0),
    (23, 40_300.0),
    (24, 55_000.0),
];

/// Allocates announced prefixes for every AS.
///
/// Returns the prefix table in allocation order. The *number of populated
/// blocks* is bounded elsewhere; this function bounds the total address
/// space to stay below [`ANYCAST_REGION`].
pub fn allocate_prefixes<R: Rng>(
    graph: &AsGraph,
    cfg: &TopologyConfig,
    rng: &mut R,
) -> Vec<PrefixInfo> {
    let lens: Vec<u8> = LENGTH_WEIGHTS.iter().map(|(l, _)| *l).collect();
    let len_dist = WeightedIndex::new(LENGTH_WEIGHTS.iter().map(|(_, w)| *w))
        // vp-lint: allow(h2): LENGTH_WEIGHTS is a static table of positive weights.
        .expect("static weights are valid");

    // Desired prefix counts per AS: Pareto-tailed, scaled by tier.
    let desired: Vec<usize> = graph
        .ases
        .iter()
        .map(|a| {
            let tier_scale = match a.tier {
                AsTier::Tier1 => 40.0,
                AsTier::Transit => 8.0,
                AsTier::Stub => 1.0,
            };
            let u: f64 = rng.gen_range(1e-4..1.0f64);
            let pareto = u.powf(-1.0 / cfg.prefix_count_shape);
            ((pareto * tier_scale) as usize)
                .clamp(1, cfg.max_prefixes_per_as)
        })
        .collect();

    // Interleave allocation round-robin so the address-space budget is
    // spread fairly: round r gives one prefix to every AS wanting > r.
    let mut out = Vec::new();
    let mut cursor: u64 = (Ipv4Addr::new(1, 0, 0, 0).0 >> 8) as u64; // block units
    let limit: u64 = (ANYCAST_REGION.0 >> 8) as u64;
    let max_round = desired.iter().copied().max().unwrap_or(0);
    'alloc: for round in 0..max_round {
        for (i, want) in desired.iter().enumerate() {
            if round >= *want {
                continue;
            }
            // Stubs' first prefix skews small; otherwise sample the mix.
            let len = if round == 0 && graph.ases[i].tier == AsTier::Stub && rng.gen_bool(0.7) {
                const SMALL: [u8; 6] = [21, 22, 22, 23, 23, 24];
                SMALL[rng.gen_range(0..SMALL.len())]
            } else {
                lens[len_dist.sample(rng)]
            };
            let size: u64 = 1 << (24 - len.min(24)) as u64;
            // Align the cursor to the prefix size.
            let aligned = (cursor + size - 1) / size * size;
            if aligned + size > limit {
                break 'alloc; // address space exhausted
            }
            cursor = aligned + size;
            let prefix = Prefix::new(Ipv4Addr((aligned as u32) << 8), len)
                // vp-lint: allow(h2): len comes from the static tables above, all <= 24.
                .expect("generated length is valid");
            out.push(PrefixInfo {
                prefix,
                origin: graph.ases[i].asn,
            });
        }
    }
    out
}

/// Picks the populated `/24` blocks inside one announced prefix.
///
/// Large prefixes are only sparsely populated (as in the real Internet);
/// density is sampled per prefix and capped by the config.
pub fn populate_blocks<R: Rng>(
    info: &PrefixInfo,
    cfg: &TopologyConfig,
    rng: &mut R,
) -> Vec<Block24> {
    let total = info.prefix.block_count() as usize;
    let density = rng.gen_range(0.25f64..0.95);
    let want = ((total as f64 * density).ceil() as usize)
        .clamp(1, cfg.max_blocks_per_prefix.min(total));
    if want == total {
        return info.prefix.blocks().collect();
    }
    let picks = rand::seq::index::sample(rng, total, want);
    let first = info.prefix.addr().0 >> 8;
    let mut blocks: Vec<Block24> = picks.into_iter().map(|o| Block24(first + o as u32)).collect();
    blocks.sort();
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    fn setup(seed: u64) -> (AsGraph, TopologyConfig, Pcg64) {
        let cfg = TopologyConfig::tiny(seed);
        let mut rng = Pcg64::seed_from_u64(seed);
        let graph = AsGraph::generate(&cfg, &mut rng);
        (graph, cfg, rng)
    }

    #[test]
    fn every_as_gets_at_least_one_prefix() {
        let (graph, cfg, mut rng) = setup(1);
        let prefixes = allocate_prefixes(&graph, &cfg, &mut rng);
        let mut counts = vec![0usize; graph.len()];
        for p in &prefixes {
            counts[p.origin.index()] += 1;
        }
        assert!(counts.iter().all(|&c| c >= 1), "orphaned AS");
    }

    #[test]
    fn prefixes_do_not_overlap() {
        let (graph, cfg, mut rng) = setup(2);
        let prefixes = allocate_prefixes(&graph, &cfg, &mut rng);
        let mut ranges: Vec<(u32, u32)> = prefixes
            .iter()
            .map(|p| {
                let start = p.prefix.addr().0 >> 8;
                (start, start + p.prefix.block_count())
            })
            .collect();
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn prefixes_stay_below_anycast_region() {
        let (graph, cfg, mut rng) = setup(3);
        for p in allocate_prefixes(&graph, &cfg, &mut rng) {
            let end = (p.prefix.addr().0 >> 8) + p.prefix.block_count();
            assert!(end <= ANYCAST_REGION.0 >> 8);
        }
    }

    #[test]
    fn prefix_count_distribution_is_heavy_tailed() {
        let (graph, cfg, mut rng) = setup(4);
        let prefixes = allocate_prefixes(&graph, &cfg, &mut rng);
        let mut counts = vec![0usize; graph.len()];
        for p in &prefixes {
            counts[p.origin.index()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let ones = counts.iter().filter(|&&c| c <= 2).count();
        assert!(max >= 10, "no large announcers (max {max})");
        assert!(
            ones * 2 > graph.len(),
            "most ASes should announce few prefixes"
        );
    }

    #[test]
    fn populated_blocks_are_inside_prefix_and_capped() {
        let (graph, cfg, mut rng) = setup(5);
        let prefixes = allocate_prefixes(&graph, &cfg, &mut rng);
        for info in prefixes.iter().take(200) {
            let blocks = populate_blocks(info, &cfg, &mut rng);
            assert!(!blocks.is_empty());
            assert!(blocks.len() <= cfg.max_blocks_per_prefix);
            let mut prev: Option<Block24> = None;
            for b in &blocks {
                assert!(info.prefix.covers(b.prefix()), "{b} not in {}", info.prefix);
                if let Some(p) = prev {
                    assert!(p < *b, "blocks not sorted/unique");
                }
                prev = Some(*b);
            }
        }
    }

    #[test]
    fn allocation_is_deterministic() {
        let (graph, cfg, _) = setup(6);
        let mut r1 = Pcg64::seed_from_u64(99);
        let mut r2 = Pcg64::seed_from_u64(99);
        let a = allocate_prefixes(&graph, &cfg, &mut r1);
        let b = allocate_prefixes(&graph, &cfg, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn length_mix_covers_short_and_long() {
        let (graph, cfg, mut rng) = setup(7);
        let prefixes = allocate_prefixes(&graph, &cfg, &mut rng);
        let lens: std::collections::HashSet<u8> =
            prefixes.iter().map(|p| p.prefix.len()).collect();
        assert!(lens.iter().any(|&l| l <= 16), "no short prefixes: {lens:?}");
        assert!(lens.contains(&22) || lens.contains(&23) || lens.contains(&24));
    }
}
