//! Anycast site placement: choosing host ASes for a service's sites.
//!
//! Mirrors Table 3 of the paper: each anycast site is hosted inside some
//! AS ("Host"/"Upstream") at a concrete location. [`pick_host_ases`] picks
//! deterministic, distinct transit ASes in the requested countries, so the
//! B-Root world (LAX + MIA) and the nine-site Tangled world can be laid
//! out on any generated topology.

use serde::{Deserialize, Serialize};
use vp_geo::world::country_by_code;
use vp_net::Asn;

use crate::graph::{AsTier, PopId};
use crate::internet::Internet;

/// A placed anycast site: a name (paper-style IATA tag), the hosting AS and
/// the concrete PoP where the service announces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SitePlacement {
    pub name: String,
    pub host_asn: Asn,
    pub pop: PopId,
}

/// Picks one hosting AS per `(site name, country code)` spec.
///
/// Selection is deterministic: the lowest-numbered transit AS with a PoP in
/// the requested country that is not already used; falls back to stub ASes,
/// then to any AS in the country, then to any unused transit AS at all.
///
/// # Panics
/// Panics if the world has fewer distinct candidate ASes than sites, or an
/// unknown country code is given.
pub fn pick_host_ases(world: &Internet, specs: &[(&str, &str)]) -> Vec<SitePlacement> {
    let mut used: Vec<Asn> = Vec::new();
    let mut out = Vec::new();
    for (name, code) in specs {
        let (country, _) = country_by_code(code)
            .unwrap_or_else(|| panic!("unknown country code {code:?}"));
        // Target connectivity: the median transit degree, so all sites of a
        // deployment end up on comparably connected hosts — wildly uneven
        // hosts would let one site's customer cone swallow the catchment.
        let median_degree = {
            let mut degrees: Vec<usize> = world
                .graph
                .ases
                .iter()
                .filter(|n| n.tier == AsTier::Transit)
                .map(|n| n.customers.len() + n.peers.len())
                .collect();
            degrees.sort_unstable();
            degrees.get(degrees.len() / 2).copied().unwrap_or(0)
        };
        // Depth below the tier-1 core, per AS. Hosts must sit at equal,
        // shallow depth: a host three provider-hops deeper than its sibling
        // starts every BGP path-length comparison three hops behind, which
        // no realistic prepending could compensate (and B-Root's real
        // upstreams were both well-connected).
        let depth = {
            let n = world.graph.len();
            let mut d = vec![usize::MAX; n];
            // Providers always have smaller dense ASNs, so one forward pass
            // suffices.
            for i in 0..n {
                let node = &world.graph.ases[i];
                d[i] = if node.tier == AsTier::Tier1 {
                    0
                } else {
                    node.providers
                        .iter()
                        .map(|p| d[p.index()].saturating_add(1))
                        .min()
                        .unwrap_or(usize::MAX)
                };
            }
            d
        };
        let mut pick = None;
        // Pass 1: transit AS with a PoP in the country (degree-balanced).
        // Pass 2: any AS with a PoP in the country.
        // Pass 3: any unused transit or tier-1 AS.
        for pass in 0..3 {
            if pick.is_some() {
                break;
            }
            let mut best: Option<(usize, &crate::graph::AsNode, PopId)> = None;
            for node in &world.graph.ases {
                if used.contains(&node.asn) {
                    continue;
                }
                let tier_ok = match pass {
                    0 => node.tier == AsTier::Transit,
                    1 => true,
                    _ => node.tier == AsTier::Transit || node.tier == AsTier::Tier1,
                };
                if !tier_ok {
                    continue;
                }
                let pop_here = node
                    .pops
                    .iter()
                    .find(|p| pass >= 2 || world.graph.pops[p.index()].country == country);
                if let Some(&pop) = pop_here {
                    let degree = node.customers.len() + node.peers.len();
                    // Rank by (closeness to the core, then degree balance):
                    // depth dominates so every site host is a direct (or
                    // near-direct) tier-1 customer.
                    let dist = depth[node.asn.index()].min(9) * 1_000_000
                        + degree.abs_diff(median_degree);
                    if best.as_ref().is_none_or(|(d, b, _)| {
                        dist < *d || (dist == *d && node.asn < b.asn)
                    }) {
                        best = Some((dist, node, pop));
                    }
                }
            }
            if let Some((_, node, pop)) = best {
                pick = Some(SitePlacement {
                    name: (*name).to_owned(),
                    host_asn: node.asn,
                    pop,
                });
            }
        }
        let placement = pick.unwrap_or_else(|| panic!("no candidate AS for site {name} ({code})"));
        used.push(placement.host_asn);
        out.push(placement);
    }
    out
}

/// The B-Root deployment of Table 3: Los Angeles + Miami.
pub fn broot_specs() -> Vec<(&'static str, &'static str)> {
    vec![("LAX", "US"), ("MIA", "US")]
}

/// The nine-site Tangled testbed of Table 3.
///
/// Site tags follow the paper's figures: CDG (Paris), CPH (Copenhagen),
/// ENS (Enschede), HND (Tokyo), IAD (Washington), LHR (London), MIA
/// (Miami), SYD (Sydney), GRU (São Paulo).
pub fn tangled_specs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("SYD", "AU"),
        ("CDG", "FR"),
        ("HND", "JP"),
        ("ENS", "NL"),
        ("LHR", "GB"),
        ("MIA", "US"),
        ("IAD", "US"),
        ("GRU", "BR"),
        ("CPH", "DK"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopologyConfig;

    fn world() -> Internet {
        Internet::generate(TopologyConfig::tiny(21))
    }

    #[test]
    fn broot_sites_are_distinct() {
        let w = world();
        let sites = pick_host_ases(&w, &broot_specs());
        assert_eq!(sites.len(), 2);
        assert_ne!(sites[0].host_asn, sites[1].host_asn);
        assert_eq!(sites[0].name, "LAX");
        assert_eq!(sites[1].name, "MIA");
    }

    #[test]
    fn tangled_sites_are_distinct_and_complete() {
        let w = world();
        let sites = pick_host_ases(&w, &tangled_specs());
        assert_eq!(sites.len(), 9);
        let asns: std::collections::HashSet<Asn> = sites.iter().map(|s| s.host_asn).collect();
        assert_eq!(asns.len(), 9, "host ASes must be distinct");
    }

    #[test]
    fn placement_is_deterministic() {
        let w = world();
        let a = pick_host_ases(&w, &tangled_specs());
        let b = pick_host_ases(&w, &tangled_specs());
        assert_eq!(a, b);
    }

    #[test]
    fn site_pops_belong_to_host() {
        let w = world();
        for s in pick_host_ases(&w, &tangled_specs()) {
            assert_eq!(w.graph.pops[s.pop.index()].asn, s.host_asn);
        }
    }

    #[test]
    #[should_panic(expected = "unknown country code")]
    fn unknown_country_panics() {
        let w = world();
        pick_host_ases(&w, &[("XXX", "ZZ")]);
    }
}
