//! Columnar block index: `/24` → dense `u32` id.
//!
//! The scan core keys everything by *dense block id* — the rank of a block
//! in the sorted block universe — so per-block attributes live in flat
//! columns (`Vec`, [`vp_net::BitSet`]) instead of per-entry tree nodes.
//! This type is the id mint: two parallel columns, the sorted blocks and
//! the position of each block in the generator's [`crate::BlockInfo`]
//! table. Lookup is a binary search over one contiguous `u32` column —
//! at a million blocks that is ~20 probes of hot cache instead of a
//! pointer chase through a `BTreeMap`.
//!
//! Invariants (checked in debug builds at construction):
//! * `blocks` is strictly ascending — dense ids are exactly the ranks of
//!   the sorted block universe, so id order is block order.
//! * `positions[id]` is the index of `blocks[id]` in the source table the
//!   index was built over.

use vp_net::Block24;

/// Sorted column of blocks plus the position of each in the source table.
#[derive(Debug, Clone, Default)]
pub struct BlockIndex {
    blocks: Vec<Block24>,
    positions: Vec<u32>,
}

impl BlockIndex {
    /// Builds the index over `(block, position)` pairs. Input order is
    /// arbitrary; blocks must be unique.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Block24, u32)>) -> BlockIndex {
        let mut rows: Vec<(Block24, u32)> = pairs.into_iter().collect();
        rows.sort_unstable_by_key(|&(b, _)| b);
        debug_assert!(
            rows.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate block in index input"
        );
        let mut blocks = Vec::with_capacity(rows.len());
        let mut positions = Vec::with_capacity(rows.len());
        for (b, p) in rows {
            blocks.push(b);
            positions.push(p);
        }
        BlockIndex { blocks, positions }
    }

    /// Number of indexed blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Dense id of `block` (its rank in the sorted universe), if indexed.
    pub fn id_of(&self, block: Block24) -> Option<u32> {
        self.blocks
            .binary_search(&block)
            .ok()
            .map(vp_net::conv::sat_u32)
    }

    /// The block with dense id `id`.
    pub fn block_at(&self, id: u32) -> Option<Block24> {
        self.blocks.get(vp_net::conv::index(id)).copied()
    }

    /// Position in the source table of `block`, if indexed.
    pub fn position_of(&self, block: Block24) -> Option<u32> {
        self.id_of(block)
            .map(|id| self.positions[vp_net::conv::index(id)]) // vp-lint: allow(g1): id_of returns ranks below len, and positions has the same length as blocks.
    }

    /// Iterates `(block, position)` in ascending block order — the dense-id
    /// order every column in the scan core shares.
    pub fn iter(&self) -> impl Iterator<Item = (Block24, u32)> + '_ {
        self.blocks.iter().copied().zip(self.positions.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> BlockIndex {
        // Deliberately unsorted input.
        BlockIndex::from_pairs([
            (Block24(30), 0),
            (Block24(10), 1),
            (Block24(20), 2),
            (Block24(40), 3),
        ])
    }

    #[test]
    fn ids_are_sorted_ranks() {
        let ix = index();
        assert_eq!(ix.len(), 4);
        assert_eq!(ix.id_of(Block24(10)), Some(0));
        assert_eq!(ix.id_of(Block24(20)), Some(1));
        assert_eq!(ix.id_of(Block24(30)), Some(2));
        assert_eq!(ix.id_of(Block24(40)), Some(3));
        assert_eq!(ix.id_of(Block24(25)), None);
    }

    #[test]
    fn positions_follow_blocks() {
        let ix = index();
        assert_eq!(ix.position_of(Block24(30)), Some(0));
        assert_eq!(ix.position_of(Block24(10)), Some(1));
        assert_eq!(ix.position_of(Block24(99)), None);
        assert_eq!(ix.block_at(2), Some(Block24(30)));
        assert_eq!(ix.block_at(4), None);
    }

    #[test]
    fn iter_is_block_ordered() {
        let ix = index();
        let got: Vec<(u32, u32)> = ix.iter().map(|(b, p)| (b.0, p)).collect();
        assert_eq!(got, vec![(10, 1), (20, 2), (30, 0), (40, 3)]);
    }

    #[test]
    fn empty_index() {
        let ix = BlockIndex::from_pairs(std::iter::empty());
        assert!(ix.is_empty());
        assert_eq!(ix.id_of(Block24(1)), None);
    }
}
