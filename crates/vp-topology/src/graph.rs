//! The AS-level graph: tiers, Gao–Rexford relationships and PoPs.

use std::collections::BTreeMap;

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use serde::{Deserialize, Serialize};
use vp_geo::{countries, distance_km, Continent, CountryId};
use vp_net::Asn;

use crate::config::TopologyConfig;

/// Position of an AS in the routing hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsTier {
    /// Fully meshed, provider-free backbone.
    Tier1,
    /// Has both providers and customers.
    Transit,
    /// Only providers; originates prefixes, transits nothing.
    Stub,
}

/// Index of a point of presence in [`AsGraph::pops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PopId(pub u32);

impl PopId {
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A point of presence: where an AS physically is.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pop {
    pub id: PopId,
    pub asn: Asn,
    pub country: CountryId,
    pub lat: f64,
    pub lon: f64,
}

/// One autonomous system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsNode {
    pub asn: Asn,
    pub tier: AsTier,
    /// Home country (where the AS is headquartered; PoPs may be elsewhere).
    pub country: CountryId,
    pub providers: Vec<Asn>,
    pub customers: Vec<Asn>,
    pub peers: Vec<Asn>,
    pub pops: Vec<PopId>,
}

/// The generated AS graph with PoP-anchored adjacencies.
#[derive(Debug, Clone)]
pub struct AsGraph {
    pub ases: Vec<AsNode>,
    pub pops: Vec<Pop>,
    /// For each directed adjacency `(a, b)`: the PoP of `a` where the
    /// session to `b` lands. Both directions are always present.
    pub adjacency_pop: BTreeMap<(Asn, Asn), PopId>,
}

impl AsGraph {
    /// The node for `asn`. Panics on out-of-range ASN (ASNs are dense).
    // vp-lint: allow(g1): documented contract — ASNs are dense indices minted with the graph; out-of-range must fail loudly.
    pub fn node(&self, asn: Asn) -> &AsNode {
        &self.ases[asn.index()]
    }

    /// The PoP anchoring the session from `a` toward `b`, if adjacent.
    pub fn session_pop(&self, a: Asn, b: Asn) -> Option<PopId> {
        self.adjacency_pop.get(&(a, b)).copied()
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.ases.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ases.is_empty()
    }

    /// All neighbor ASNs of `asn` (providers, customers, peers).
    pub fn neighbors(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        let n = self.node(asn);
        n.providers
            .iter()
            .chain(n.customers.iter())
            .chain(n.peers.iter())
            .copied()
    }

    /// Generates the graph. Deterministic in `rng`.
    pub fn generate<R: Rng>(cfg: &TopologyConfig, rng: &mut R) -> AsGraph {
        assert!(cfg.num_tier1 >= 2, "need at least two tier-1 ASes");
        assert!(
            cfg.num_ases > cfg.num_tier1,
            "need more ASes than tier-1s"
        );
        let world = countries();
        let user_weights: Vec<f64> = world.iter().map(|c| c.user_weight).collect();
        // vp-lint: allow(h2): the country table is a static constant with positive weights.
        let country_dist = WeightedIndex::new(&user_weights).expect("non-empty country table");

        // Tier-1s live where the big backbones are.
        let tier1_homes: Vec<CountryId> = {
            let backbone = ["US", "US", "US", "DE", "FR", "GB", "NL", "JP", "SE", "IT"];
            (0..cfg.num_tier1)
                .map(|i| {
                    let code = backbone[i % backbone.len()];
                    // vp-lint: allow(h2): every code above exists in the static country table.
                    vp_geo::world::country_by_code(code).expect("backbone country").0
                })
                .collect()
        };

        let num_transit = ((cfg.num_ases - cfg.num_tier1) as f64 * cfg.transit_fraction) as usize;
        let mut ases: Vec<AsNode> = Vec::with_capacity(cfg.num_ases);
        for i in 0..cfg.num_ases {
            let (tier, country) = if i < cfg.num_tier1 {
                (AsTier::Tier1, tier1_homes[i])
            } else if i < cfg.num_tier1 + num_transit {
                (AsTier::Transit, CountryId(country_dist.sample(rng) as u16))
            } else {
                (AsTier::Stub, CountryId(country_dist.sample(rng) as u16))
            };
            ases.push(AsNode {
                asn: Asn(i as u32),
                tier,
                country,
                providers: Vec::new(),
                customers: Vec::new(),
                peers: Vec::new(),
                pops: Vec::new(),
            });
        }

        // PoPs.
        let mut pops: Vec<Pop> = Vec::new();
        for node in ases.iter_mut() {
            let pop_countries: Vec<CountryId> = match node.tier {
                AsTier::Tier1 => {
                    // Global footprint: home plus a spread over continents.
                    let mut cs = vec![node.country];
                    let mut seen: Vec<Continent> = vec![node.country.get().continent];
                    for _ in 0..40 {
                        if cs.len() >= 10 {
                            break;
                        }
                        let cid = CountryId(country_dist.sample(rng) as u16);
                        let cont = cid.get().continent;
                        if !seen.contains(&cont) || rng.gen_bool(0.25) {
                            seen.push(cont);
                            cs.push(cid);
                        }
                    }
                    cs
                }
                AsTier::Transit => {
                    // Continental footprint: 3–6 PoPs near home.
                    let cont = node.country.get().continent;
                    let mut cs = vec![node.country];
                    let same: Vec<usize> = world
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.continent == cont)
                        .map(|(i, _)| i)
                        .collect();
                    let extra = rng.gen_range(2..=5);
                    for _ in 0..extra {
                        cs.push(CountryId(same[rng.gen_range(0..same.len())] as u16));
                    }
                    cs
                }
                AsTier::Stub => {
                    let mut cs = vec![node.country];
                    if rng.gen_bool(0.15) {
                        cs.push(node.country); // second PoP, same country
                    }
                    cs
                }
            };
            for cid in pop_countries {
                let (lat, lon) = cid.get().sample_location(rng);
                let id = PopId(pops.len() as u32);
                pops.push(Pop {
                    id,
                    asn: node.asn,
                    country: cid,
                    lat,
                    lon,
                });
                node.pops.push(id);
            }
        }

        // Edges. Providers must be "above" in the hierarchy: tier-1, or a
        // transit AS with a smaller index — this keeps customer→provider
        // relations acyclic, which Gao–Rexford stability relies on.
        let t1_range = 0..cfg.num_tier1;
        let transit_range = cfg.num_tier1..cfg.num_tier1 + num_transit;
        let mut edges: Vec<(usize, usize, EdgeKind)> = Vec::new();

        // Tier-1 clique (peering).
        for i in t1_range.clone() {
            for j in i + 1..cfg.num_tier1 {
                edges.push((i, j, EdgeKind::Peer));
            }
        }

        // Transit ASes buy from tier-1s and earlier transit ASes.
        for i in transit_range.clone() {
            let n_prov = sample_provider_count(cfg.mean_providers, rng);
            for _ in 0..n_prov {
                let upstream = if i == cfg.num_tier1 || rng.gen_bool(0.3) {
                    rng.gen_range(t1_range.clone())
                } else {
                    rng.gen_range(cfg.num_tier1..i)
                };
                edges.push((upstream, i, EdgeKind::ProviderCustomer));
            }
        }

        // Stubs buy from transit ASes (preferring their own continent) and
        // occasionally directly from tier-1s.
        let transit_by_continent: BTreeMap<Continent, Vec<usize>> = {
            let mut m: BTreeMap<Continent, Vec<usize>> = BTreeMap::new();
            for i in transit_range.clone() {
                m.entry(ases[i].country.get().continent).or_default().push(i);
            }
            m
        };
        for i in cfg.num_tier1 + num_transit..cfg.num_ases {
            let n_prov = sample_provider_count(cfg.mean_providers, rng);
            let cont = ases[i].country.get().continent;
            for _ in 0..n_prov {
                let upstream = if rng.gen_bool(0.08) || num_transit == 0 {
                    rng.gen_range(t1_range.clone())
                } else if let Some(local) = transit_by_continent.get(&cont) {
                    if rng.gen_bool(0.8) {
                        local[rng.gen_range(0..local.len())]
                    } else {
                        rng.gen_range(transit_range.clone())
                    }
                } else {
                    rng.gen_range(transit_range.clone())
                };
                edges.push((upstream, i, EdgeKind::ProviderCustomer));
            }
        }

        // Transit-transit peering.
        let transit_list: Vec<usize> = transit_range.clone().collect();
        for (ai, &i) in transit_list.iter().enumerate() {
            for &j in &transit_list[ai + 1..] {
                let same = ases[i].country.get().continent == ases[j].country.get().continent;
                let p = if same {
                    cfg.peer_prob_same_continent
                } else {
                    cfg.peer_prob_cross_continent
                };
                if rng.gen_bool(p) {
                    edges.push((i, j, EdgeKind::Peer));
                }
            }
        }

        // Materialize edges (dedup parallel edges; provider wins over peer).
        // A BTreeMap keyed on the normalized pair gives the sorted edge
        // order directly — no post-hoc sort needed.
        let mut seen: BTreeMap<(usize, usize), EdgeKind> = BTreeMap::new();
        for (a, b, kind) in edges {
            let key = (a.min(b), a.max(b));
            let entry = seen.entry(key).or_insert(kind);
            if kind == EdgeKind::ProviderCustomer {
                *entry = kind;
            }
        }
        let mut adjacency_pop: BTreeMap<(Asn, Asn), PopId> = BTreeMap::new();
        for ((lo, hi), kind) in seen {
            // The original orientation for provider edges was (provider=a,
            // customer=b) with a < b by construction above, because
            // providers always have smaller index.
            let (a, b) = (lo, hi);
            match kind {
                EdgeKind::ProviderCustomer => {
                    let (pa, pb) = (Asn(a as u32), Asn(b as u32));
                    if !ases[a].customers.contains(&pb) {
                        ases[a].customers.push(pb);
                        ases[b].providers.push(pa);
                    }
                }
                EdgeKind::Peer => {
                    let (pa, pb) = (Asn(a as u32), Asn(b as u32));
                    if !ases[a].peers.contains(&pb) {
                        ases[a].peers.push(pb);
                        ases[b].peers.push(pa);
                    }
                }
            }
            // Anchor the session at the geographically closest PoP pair.
            let (pop_a, pop_b) = closest_pop_pair(&ases[a], &ases[b], &pops);
            adjacency_pop.insert((Asn(a as u32), Asn(b as u32)), pop_a);
            adjacency_pop.insert((Asn(b as u32), Asn(a as u32)), pop_b);
        }

        AsGraph {
            ases,
            pops,
            adjacency_pop,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeKind {
    ProviderCustomer,
    Peer,
}

fn sample_provider_count<R: Rng>(mean: f64, rng: &mut R) -> usize {
    // 1 + geometric-ish: keeps a minimum of one provider.
    let extra_p = 1.0 - 1.0 / mean.max(1.0);
    let mut n = 1;
    while n < 5 && rng.gen_bool(extra_p) {
        n += 1;
    }
    n
}

/// The closest pair of PoPs between two ASes (brute force; PoP counts are
/// tiny).
fn closest_pop_pair(a: &AsNode, b: &AsNode, pops: &[Pop]) -> (PopId, PopId) {
    let mut best = (a.pops[0], b.pops[0]);
    let mut best_d = f64::INFINITY;
    for &pa in &a.pops {
        for &pb in &b.pops {
            let (x, y) = (&pops[pa.index()], &pops[pb.index()]);
            let d = distance_km(x.lat, x.lon, y.lat, y.lon);
            if d < best_d {
                best_d = d;
                best = (pa, pb);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    fn gen(seed: u64) -> AsGraph {
        let cfg = TopologyConfig::tiny(seed);
        let mut rng = Pcg64::seed_from_u64(seed);
        AsGraph::generate(&cfg, &mut rng)
    }

    #[test]
    fn sizes_match_config() {
        let g = gen(1);
        assert_eq!(g.len(), 120);
        assert!(!g.is_empty());
        assert!(g.pops.len() >= g.len()); // every AS has >= 1 PoP
    }

    #[test]
    fn tier1_clique_is_fully_meshed_and_provider_free() {
        let g = gen(2);
        let t1: Vec<&AsNode> = g.ases.iter().filter(|a| a.tier == AsTier::Tier1).collect();
        assert_eq!(t1.len(), 5);
        for a in &t1 {
            assert!(a.providers.is_empty(), "{} has providers", a.asn);
            for b in &t1 {
                if a.asn != b.asn {
                    assert!(a.peers.contains(&b.asn), "{} !~ {}", a.asn, b.asn);
                }
            }
        }
    }

    #[test]
    fn every_non_tier1_has_a_provider() {
        let g = gen(3);
        for a in &g.ases {
            if a.tier != AsTier::Tier1 {
                assert!(!a.providers.is_empty(), "{} is orphaned", a.asn);
            }
        }
    }

    #[test]
    fn relationships_are_symmetric() {
        let g = gen(4);
        for a in &g.ases {
            for p in &a.providers {
                assert!(g.node(*p).customers.contains(&a.asn));
            }
            for c in &a.customers {
                assert!(g.node(*c).providers.contains(&a.asn));
            }
            for q in &a.peers {
                assert!(g.node(*q).peers.contains(&a.asn));
            }
        }
    }

    #[test]
    fn provider_customer_is_acyclic() {
        // Providers always have a smaller ASN index by construction; check.
        let g = gen(5);
        for a in &g.ases {
            for p in &a.providers {
                assert!(p.index() < a.asn.index(), "{} -> provider {}", a.asn, p);
            }
        }
    }

    #[test]
    fn stubs_have_no_customers() {
        let g = gen(6);
        for a in &g.ases {
            if a.tier == AsTier::Stub {
                assert!(a.customers.is_empty(), "{} is a stub with customers", a.asn);
            }
        }
    }

    #[test]
    fn adjacency_pops_belong_to_their_as() {
        let g = gen(7);
        for ((a, _b), pop) in &g.adjacency_pop {
            assert_eq!(g.pops[pop.index()].asn, *a);
            assert!(g.node(*a).pops.contains(pop));
        }
        // Both directions exist.
        for (a, b) in g.adjacency_pop.keys() {
            assert!(g.adjacency_pop.contains_key(&(*b, *a)));
        }
    }

    #[test]
    fn all_ases_reach_tier1_via_providers() {
        let g = gen(8);
        for a in &g.ases {
            let mut cur = a;
            let mut hops = 0;
            while cur.tier != AsTier::Tier1 {
                cur = g.node(cur.providers[0]);
                hops += 1;
                assert!(hops < 100, "provider chain too long for {}", a.asn);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen(42);
        let b = gen(42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.ases.iter().zip(&b.ases) {
            assert_eq!(x.providers, y.providers);
            assert_eq!(x.peers, y.peers);
            assert_eq!(x.country, y.country);
        }
        let c = gen(43);
        // Different seed should differ somewhere.
        let same = a
            .ases
            .iter()
            .zip(&c.ases)
            .all(|(x, y)| x.providers == y.providers && x.country == y.country);
        assert!(!same);
    }

    #[test]
    fn tier1_pops_span_continents() {
        let g = gen(9);
        for a in g.ases.iter().filter(|a| a.tier == AsTier::Tier1) {
            let continents: std::collections::HashSet<_> = a
                .pops
                .iter()
                .map(|p| g.pops[p.index()].country.get().continent)
                .collect();
            assert!(
                continents.len() >= 3,
                "tier-1 {} spans only {:?}",
                a.asn,
                continents
            );
        }
    }

    #[test]
    fn neighbors_iterates_all_relations() {
        let g = gen(10);
        let a = &g.ases[g.len() - 1]; // a stub
        let count = g.neighbors(a.asn).count();
        assert_eq!(count, a.providers.len() + a.customers.len() + a.peers.len());
    }
}
