//! The assembled synthetic Internet.

use std::collections::BTreeMap;

use rand::SeedableRng;
use rand_pcg::Pcg64;
use vp_geo::GeoDb;
use vp_net::{Asn, Block24, Ipv4Addr, PrefixTrie};

use crate::blocks::{generate_blocks, BlockInfo};
use crate::config::TopologyConfig;
use crate::graph::AsGraph;
use crate::prefixes::{allocate_prefixes, PrefixInfo};

/// A complete generated world: AS graph, announced prefixes, populated
/// blocks, geolocation database and origin (Route Views-style) table.
#[derive(Debug, Clone)]
pub struct Internet {
    pub config: TopologyConfig,
    pub graph: AsGraph,
    pub prefixes: Vec<PrefixInfo>,
    pub blocks: Vec<BlockInfo>,
    pub geodb: GeoDb,
    /// Longest-prefix-match table from announced prefix to origin AS.
    pub origin_table: PrefixTrie<Asn>,
    block_index: BTreeMap<Block24, u32>,
    prefixes_per_as: Vec<u32>,
}

impl Internet {
    /// Generates a world from the configuration (deterministic in the seed).
    pub fn generate(config: TopologyConfig) -> Internet {
        let mut rng = Pcg64::seed_from_u64(config.seed);
        let graph = AsGraph::generate(&config, &mut rng);
        let prefixes = allocate_prefixes(&graph, &config, &mut rng);
        let (blocks, geodb) = generate_blocks(&graph, &prefixes, &config, &mut rng);

        let mut origin_table = PrefixTrie::new();
        let mut prefixes_per_as = vec![0u32; graph.len()];
        for info in &prefixes {
            origin_table.insert(info.prefix, info.origin);
            prefixes_per_as[info.origin.index()] += 1;
        }
        let block_index = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (b.block, i as u32))
            .collect();

        Internet {
            config,
            graph,
            prefixes,
            blocks,
            geodb,
            origin_table,
            block_index,
            prefixes_per_as,
        }
    }

    /// Attribute record for a block, if populated.
    pub fn block(&self, block: Block24) -> Option<&BlockInfo> {
        self.block_index
            .get(&block)
            .map(|&i| &self.blocks[i as usize]) // vp-lint: allow(g1): block_index values are positions in blocks, recorded at construction.
    }

    /// Index of a populated block in [`Internet::blocks`].
    pub fn block_idx(&self, block: Block24) -> Option<u32> {
        self.block_index.get(&block).copied()
    }

    /// The origin AS announcing the covering prefix of `ip`, if any.
    pub fn origin_of(&self, ip: Ipv4Addr) -> Option<Asn> {
        self.origin_table.longest_match(ip).map(|(_, asn)| *asn)
    }

    /// Number of prefixes announced by `asn`.
    pub fn announced_prefixes(&self, asn: Asn) -> u32 {
        self.prefixes_per_as[asn.index()] // vp-lint: allow(g1): prefixes_per_as is sized to the AS count of the world that minted asn.
    }

    /// Iterator over blocks whose representative address answers pings.
    pub fn responsive_blocks(&self) -> impl Iterator<Item = &BlockInfo> {
        self.blocks.iter().filter(|b| b.responsive)
    }

    /// Total daily queries across all blocks (the DITL-day volume).
    pub fn total_daily_queries(&self) -> f64 {
        self.blocks.iter().map(|b| b.daily_queries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Internet {
        Internet::generate(TopologyConfig::tiny(11))
    }

    #[test]
    fn block_lookup_roundtrip() {
        let w = world();
        for b in w.blocks.iter().take(100) {
            let got = w.block(b.block).unwrap();
            assert_eq!(got.block, b.block);
        }
        assert!(w.block(Block24(0)).is_none()); // below 1.0.0.0
    }

    #[test]
    fn origin_table_agrees_with_blocks() {
        let w = world();
        for b in w.blocks.iter().take(200) {
            let origin = w.origin_of(b.block.addr(1)).unwrap();
            assert_eq!(origin, b.origin);
        }
    }

    #[test]
    fn announced_prefix_counts_sum() {
        let w = world();
        let total: u32 = (0..w.graph.len() as u32)
            .map(|i| w.announced_prefixes(Asn(i)))
            .sum();
        assert_eq!(total as usize, w.prefixes.len());
    }

    #[test]
    fn responsive_iterator_filters() {
        let w = world();
        assert!(w.responsive_blocks().all(|b| b.responsive));
        let n = w.responsive_blocks().count();
        assert!(n > 0 && n < w.blocks.len());
    }

    #[test]
    fn total_daily_queries_positive() {
        let w = world();
        assert!(w.total_daily_queries() > 0.0);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = Internet::generate(TopologyConfig::tiny(5));
        let b = Internet::generate(TopologyConfig::tiny(5));
        assert_eq!(a.blocks.len(), b.blocks.len());
        assert_eq!(a.prefixes.len(), b.prefixes.len());
    }
}
