//! The assembled synthetic Internet.

use rand::SeedableRng;
use rand_pcg::Pcg64;
use vp_geo::GeoDb;
use vp_net::{Asn, BitSet, Block24, Ipv4Addr};

use crate::blocks::{generate_blocks, BlockInfo};
use crate::config::TopologyConfig;
use crate::graph::AsGraph;
use crate::index::BlockIndex;
use crate::lpm::ArenaLpm;
use crate::prefixes::{allocate_prefixes, PrefixInfo};

/// A complete generated world: AS graph, announced prefixes, populated
/// blocks, geolocation database and origin (Route Views-style) table.
///
/// Block-keyed state is columnar: a [`BlockIndex`] maps each `/24` to a
/// dense `u32` id (its rank in the sorted block universe), and boolean
/// attributes like responsiveness are packed [`BitSet`] columns over those
/// ids — the layout the million-block scan core indexes into directly.
#[derive(Debug, Clone)]
pub struct Internet {
    pub config: TopologyConfig,
    pub graph: AsGraph,
    pub prefixes: Vec<PrefixInfo>,
    pub blocks: Vec<BlockInfo>,
    pub geodb: GeoDb,
    /// Longest-prefix-match table from announced prefix to origin AS
    /// (arena-packed and path-compressed; node count stays `O(prefixes)`
    /// even for /24-heavy million-block tables).
    pub origin_table: ArenaLpm<Asn>,
    block_index: BlockIndex,
    /// Responsiveness column, keyed by dense block id.
    responsive: BitSet,
    prefixes_per_as: Vec<u32>,
}

impl Internet {
    /// Generates a world from the configuration (deterministic in the seed).
    pub fn generate(config: TopologyConfig) -> Internet {
        let mut rng = Pcg64::seed_from_u64(config.seed);
        let graph = AsGraph::generate(&config, &mut rng);
        let prefixes = allocate_prefixes(&graph, &config, &mut rng);
        let (blocks, geodb) = generate_blocks(&graph, &prefixes, &config, &mut rng);

        let mut origin_table = ArenaLpm::new();
        let mut prefixes_per_as = vec![0u32; graph.len()];
        for info in &prefixes {
            origin_table.insert(info.prefix, info.origin);
            // vp-lint: allow(g1): prefix origins are AS ids drawn from this graph.
            prefixes_per_as[info.origin.index()] += 1;
        }
        let block_index = BlockIndex::from_pairs(
            blocks
                .iter()
                .enumerate()
                .map(|(i, b)| (b.block, i as u32)),
        );
        let mut responsive = BitSet::new(blocks.len());
        for (id, (_, pos)) in block_index.iter().enumerate() {
            if blocks[vp_net::conv::index(pos)].responsive { // vp-lint: allow(g1): positions are indices into blocks, recorded at construction.
                responsive.set(id);
            }
        }

        Internet {
            config,
            graph,
            prefixes,
            blocks,
            geodb,
            origin_table,
            block_index,
            responsive,
            prefixes_per_as,
        }
    }

    /// Attribute record for a block, if populated.
    pub fn block(&self, block: Block24) -> Option<&BlockInfo> {
        self.block_index
            .position_of(block)
            .map(|i| &self.blocks[i as usize]) // vp-lint: allow(g1): index positions are indices into blocks, recorded at construction.
    }

    /// Index of a populated block in [`Internet::blocks`].
    pub fn block_idx(&self, block: Block24) -> Option<u32> {
        self.block_index.position_of(block)
    }

    /// Dense id of a populated block: its rank in the sorted block
    /// universe. Columns produced by the scan core are keyed by this id.
    pub fn block_id(&self, block: Block24) -> Option<u32> {
        self.block_index.id_of(block)
    }

    /// The columnar block index itself (id mint of the scan core).
    pub fn block_index(&self) -> &BlockIndex {
        &self.block_index
    }

    /// Whether the block with dense id `id` answers pings (bitset column).
    pub fn responsive_id(&self, id: u32) -> bool {
        self.responsive.get(vp_net::conv::index(id))
    }

    /// The packed responsiveness column, keyed by dense block id.
    pub fn responsive_bits(&self) -> &BitSet {
        &self.responsive
    }

    /// Iterates populated blocks in ascending block (= dense id) order —
    /// the canonical order of every column and of the hitlist. Streaming
    /// consumers use this instead of materializing a sorted copy.
    pub fn blocks_in_order(&self) -> impl Iterator<Item = &BlockInfo> + '_ {
        self.block_index
            .iter()
            .map(|(_, pos)| &self.blocks[vp_net::conv::index(pos)]) // vp-lint: allow(g1): index positions are indices into blocks, recorded at construction.
    }

    /// The origin AS announcing the covering prefix of `ip`, if any.
    pub fn origin_of(&self, ip: Ipv4Addr) -> Option<Asn> {
        self.origin_table.longest_match(ip).map(|(_, asn)| *asn)
    }

    /// Number of prefixes announced by `asn`.
    pub fn announced_prefixes(&self, asn: Asn) -> u32 {
        self.prefixes_per_as[asn.index()] // vp-lint: allow(g1): prefixes_per_as is sized to the AS count of the world that minted asn.
    }

    /// Iterator over blocks whose representative address answers pings.
    pub fn responsive_blocks(&self) -> impl Iterator<Item = &BlockInfo> {
        self.blocks.iter().filter(|b| b.responsive)
    }

    /// Total daily queries across all blocks (the DITL-day volume).
    pub fn total_daily_queries(&self) -> f64 {
        self.blocks.iter().map(|b| b.daily_queries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Internet {
        Internet::generate(TopologyConfig::tiny(11))
    }

    #[test]
    fn block_lookup_roundtrip() {
        let w = world();
        for b in w.blocks.iter().take(100) {
            let got = w.block(b.block).unwrap();
            assert_eq!(got.block, b.block);
        }
        assert!(w.block(Block24(0)).is_none()); // below 1.0.0.0
    }

    #[test]
    fn origin_table_agrees_with_blocks() {
        let w = world();
        for b in w.blocks.iter().take(200) {
            let origin = w.origin_of(b.block.addr(1)).unwrap();
            assert_eq!(origin, b.origin);
        }
    }

    #[test]
    fn announced_prefix_counts_sum() {
        let w = world();
        let total: u32 = (0..w.graph.len() as u32)
            .map(|i| w.announced_prefixes(Asn(i)))
            .sum();
        assert_eq!(total as usize, w.prefixes.len());
    }

    #[test]
    fn responsive_iterator_filters() {
        let w = world();
        assert!(w.responsive_blocks().all(|b| b.responsive));
        let n = w.responsive_blocks().count();
        assert!(n > 0 && n < w.blocks.len());
    }

    #[test]
    fn responsive_bitset_matches_block_attributes() {
        let w = world();
        assert_eq!(w.responsive_bits().len(), w.blocks.len());
        assert_eq!(
            w.responsive_bits().count_ones(),
            w.responsive_blocks().count()
        );
        for b in w.blocks.iter().take(200) {
            let id = w.block_id(b.block).unwrap();
            assert_eq!(w.responsive_id(id), b.responsive, "block {}", b.block);
        }
    }

    #[test]
    fn dense_ids_are_sorted_block_ranks() {
        let w = world();
        let mut prev = None;
        for (id, b) in w.blocks_in_order().enumerate() {
            if let Some(p) = prev {
                assert!(p < b.block, "blocks_in_order not strictly ascending");
            }
            prev = Some(b.block);
            assert_eq!(w.block_id(b.block), Some(id as u32));
        }
        assert_eq!(w.blocks_in_order().count(), w.blocks.len());
    }

    #[test]
    fn total_daily_queries_positive() {
        let w = world();
        assert!(w.total_daily_queries() > 0.0);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = Internet::generate(TopologyConfig::tiny(5));
        let b = Internet::generate(TopologyConfig::tiny(5));
        assert_eq!(a.blocks.len(), b.blocks.len());
        assert_eq!(a.prefixes.len(), b.prefixes.len());
    }
}
