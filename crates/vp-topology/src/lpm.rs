//! Arena-packed, path-compressed longest-prefix-match trie.
//!
//! The origin table of a million-block world holds hundreds of thousands
//! of announced prefixes. The plain binary trie in [`vp_net::trie`] mints
//! one arena node *per bit* of every inserted prefix — fine at workshop
//! scale, but a /24-heavy table costs ~24 nodes per prefix. This variant
//! path-compresses: each node stores up to 32 bits of the path on its
//! incoming edge, so chains of single-child nodes collapse into one, and
//! node count is bounded by `2·prefixes` regardless of prefix length.
//! Values live in their own arena (`Vec<T>`), keeping the node array a
//! homogeneous 16-byte-per-node column.
//!
//! Correctness is proved two ways: unit tests on the split edge cases, and
//! property tests checking that insert/longest-match agrees with a naive
//! linear scan over arbitrary prefix sets and that every arena child index
//! stays in bounds (the g1 contract the `allow` markers below assert).

use vp_net::{Ipv4Addr, Prefix};

const NONE: u32 = u32::MAX;

/// One trie node. The edge *into* this node (from its parent's branch bit)
/// carries `edge_len` extra path bits, left-aligned in `edge_bits`.
#[derive(Debug, Clone)]
struct Node {
    /// Compressed path bits, left-aligned; low `32 - edge_len` bits zero.
    edge_bits: u32,
    edge_len: u8,
    children: [u32; 2],
    /// Index into the value arena, or `NONE`.
    value: u32,
}

impl Node {
    fn new(edge_bits: u32, edge_len: u8) -> Node {
        Node {
            edge_bits,
            edge_len,
            children: [NONE, NONE],
            value: NONE,
        }
    }
}

/// A map from [`Prefix`] to `T` with longest-prefix-match lookup, nodes in
/// a flat arena and values in a second one.
#[derive(Debug, Clone)]
pub struct ArenaLpm<T> {
    nodes: Vec<Node>,
    values: Vec<T>,
    len: usize,
}

/// Bit `i` (0 = most significant) of `addr`.
fn bit(addr: u32, i: u8) -> usize {
    ((addr >> (31 - i)) & 1) as usize
}

/// Bits `start..start + len` of `addr`, left-aligned; zero when `len == 0`.
fn left_bits(addr: u32, start: u8, len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        (addr << start) & (u32::MAX << (32 - len))
    }
}

/// Length of the common left-aligned prefix of `a` and `b`, capped.
fn common_len(a: u32, b: u32, cap: u8) -> u8 {
    (((a ^ b).leading_zeros()) as u8).min(cap)
}

impl<T> Default for ArenaLpm<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ArenaLpm<T> {
    /// Creates an empty table.
    pub fn new() -> ArenaLpm<T> {
        ArenaLpm {
            nodes: vec![Node::new(0, 0)],
            values: Vec::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of arena nodes — exposed so tests can assert the
    /// path-compression bound (`nodes ≤ 2·prefixes + 1`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn place(&mut self, node: usize, value: T) -> Option<T> {
        let slot = self.nodes[node].value; // vp-lint: allow(g1): node indices are minted by push (or split) and the arena never shrinks.
        if slot == NONE {
            self.nodes[node].value = self.values.len() as u32; // vp-lint: allow(g1): same arena contract as above.
            self.values.push(value);
            self.len += 1;
            None
        } else {
            Some(std::mem::replace(
                &mut self.values[slot as usize], // vp-lint: allow(g1): value slots are minted by push and the value arena never shrinks.
                value,
            ))
        }
    }

    /// Inserts `value` under `prefix`, returning the previous value if the
    /// prefix was already present.
    // vp-lint: allow(g1): arena indexing throughout — child indices are minted by push and nodes never shrink, so every stored index is in bounds.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let addr = prefix.addr().0;
        let plen = prefix.len();
        let mut node = 0usize;
        let mut depth: u8 = 0; // bits of `addr` consumed so far
        loop {
            if depth == plen {
                return self.place(node, value);
            }
            let b = bit(addr, depth);
            let child = self.nodes[node].children[b];
            if child == NONE {
                // Fresh leaf carrying all remaining bits on its edge.
                let edge_len = plen - depth - 1;
                let leaf = Node::new(left_bits(addr, depth + 1, edge_len), edge_len);
                let idx = self.nodes.len() as u32;
                self.nodes.push(leaf);
                self.nodes[node].children[b] = idx;
                return self.place(idx as usize, value);
            }
            let child = child as usize;
            let c_len = self.nodes[child].edge_len;
            let c_bits = self.nodes[child].edge_bits;
            let have = plen - depth - 1; // prefix bits left after the branch bit
            let common = common_len(c_bits, left_bits(addr, depth + 1, c_len), c_len.min(have));
            if common == c_len {
                // Whole edge matches; descend.
                node = child;
                depth += 1 + c_len;
                continue;
            }
            // The edge diverges (or the prefix ends) after `common` bits:
            // split it. `mid` takes the first `common` bits; the old child
            // keeps the remainder past its new branch bit.
            let mid_idx = self.nodes.len() as u32;
            let mut mid = Node::new(left_bits(c_bits, 0, common), common);
            let old_branch = bit(c_bits, common);
            mid.children[old_branch] = child as u32;
            self.nodes.push(mid);
            let tail_len = c_len - common - 1;
            self.nodes[child].edge_bits = left_bits(c_bits, common + 1, tail_len);
            self.nodes[child].edge_len = tail_len;
            self.nodes[node].children[b] = mid_idx;
            let consumed = depth + 1 + common;
            if consumed == plen {
                // The prefix ends exactly at the split point.
                return self.place(mid_idx as usize, value);
            }
            // Remaining prefix bits branch the *other* way at the split
            // (same way would have extended `common`).
            let nb = bit(addr, consumed);
            debug_assert_ne!(nb, old_branch, "split bit must diverge");
            let leaf_len = plen - consumed - 1;
            let leaf = Node::new(left_bits(addr, consumed + 1, leaf_len), leaf_len);
            let leaf_idx = self.nodes.len() as u32;
            self.nodes.push(leaf);
            self.nodes[mid_idx as usize].children[nb] = leaf_idx;
            return self.place(leaf_idx as usize, value);
        }
    }

    /// Longest-prefix-match lookup: the most specific stored prefix
    /// containing `ip`, with its value.
    // vp-lint: allow(g1): arena indexing — child and value indices are minted by push and the arenas never shrink.
    pub fn longest_match(&self, ip: Ipv4Addr) -> Option<(Prefix, &T)> {
        let addr = ip.0;
        let mut node = 0usize;
        let mut depth: u8 = 0;
        let mut best: Option<(u8, u32)> = None;
        loop {
            let v = self.nodes[node].value;
            if v != NONE {
                best = Some((depth, v));
            }
            if depth >= 32 {
                break;
            }
            let b = bit(addr, depth);
            let child = self.nodes[node].children[b];
            if child == NONE {
                break;
            }
            let child = child as usize;
            let c_len = self.nodes[child].edge_len;
            if u32::from(depth) + 1 + u32::from(c_len) > 32
                || left_bits(addr, depth + 1, c_len) != self.nodes[child].edge_bits
            {
                break;
            }
            node = child;
            depth += 1 + c_len;
        }
        best.map(|(len, v)| {
            // vp-lint: allow(h2): depth never exceeds 32 (checked before descending).
            let p = Prefix::new(ip, len).expect("len <= 32");
            (p, &self.values[v as usize])
        })
    }

    /// Exact-match lookup of `prefix`.
    // vp-lint: allow(g1): arena indexing — child and value indices are minted by push and the arenas never shrink.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let addr = prefix.addr().0;
        let plen = prefix.len();
        let mut node = 0usize;
        let mut depth: u8 = 0;
        while depth < plen {
            let b = bit(addr, depth);
            let child = self.nodes[node].children[b];
            if child == NONE {
                return None;
            }
            let child = child as usize;
            let c_len = self.nodes[child].edge_len;
            if depth + 1 + c_len > plen
                || left_bits(addr, depth + 1, c_len) != self.nodes[child].edge_bits
            {
                return None;
            }
            node = child;
            depth += 1 + c_len;
        }
        let v = self.nodes[node].value;
        (v != NONE).then(|| &self.values[v as usize])
    }

    /// Iterates all stored `(prefix, value)` pairs in address order.
    // vp-lint: allow(g1): arena indexing — child and value indices are minted by push and the arenas never shrink.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        // DFS stack: (node, addr-so-far, depth). Push 1 before 0 so the
        // 0-branch pops (and yields) first.
        let mut stack = vec![(0u32, 0u32, 0u8)];
        std::iter::from_fn(move || {
            while let Some((node, addr, depth)) = stack.pop() {
                let n = &self.nodes[node as usize];
                for b in [1usize, 0] {
                    let child = n.children[b];
                    if child != NONE {
                        let c = &self.nodes[child as usize];
                        let caddr = addr
                            | ((b as u32) << (31 - depth))
                            | c.edge_bits.checked_shr(u32::from(depth) + 1).unwrap_or(0);
                        stack.push((child, caddr, depth + 1 + c.edge_len));
                    }
                }
                if n.value != NONE {
                    // vp-lint: allow(h2): stored depths never exceed 32 by construction.
                    let p = Prefix::new(Ipv4Addr(addr), depth).expect("depth <= 32");
                    return Some((p, &self.values[n.value as usize]));
                }
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_matches_nothing() {
        let t: ArenaLpm<u32> = ArenaLpm::new();
        assert!(t.is_empty());
        assert!(t.longest_match(ip("1.2.3.4")).is_none());
        assert!(t.get(p("0.0.0.0/0")).is_none());
    }

    #[test]
    fn insert_get_and_replace() {
        let mut t = ArenaLpm::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/16"), 2), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&1));
        assert_eq!(t.get(p("10.0.0.0/16")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/12")), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 9), Some(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&9));
    }

    #[test]
    fn longest_match_prefers_most_specific() {
        let mut t = ArenaLpm::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        let (mp, v) = t.longest_match(ip("10.1.2.3")).unwrap();
        assert_eq!((*v, mp.len()), (24, 24));
        let (mp, v) = t.longest_match(ip("10.1.9.1")).unwrap();
        assert_eq!((*v, mp.len()), (16, 16));
        let (mp, v) = t.longest_match(ip("10.200.0.1")).unwrap();
        assert_eq!((*v, mp.len()), (8, 8));
        let (mp, v) = t.longest_match(ip("192.0.2.1")).unwrap();
        assert_eq!((*v, mp.len()), (0, 0));
    }

    #[test]
    fn split_mid_edge_both_ways() {
        let mut t = ArenaLpm::new();
        // One long edge, then a prefix ending mid-edge, then one diverging.
        t.insert(p("10.1.2.0/24"), 'a');
        t.insert(p("10.1.0.0/16"), 'b'); // ends inside the /24's edge
        t.insert(p("10.1.3.0/24"), 'c'); // diverges one bit off the /24
        assert_eq!(t.get(p("10.1.2.0/24")), Some(&'a'));
        assert_eq!(t.get(p("10.1.0.0/16")), Some(&'b'));
        assert_eq!(t.get(p("10.1.3.0/24")), Some(&'c'));
        assert_eq!(t.longest_match(ip("10.1.3.9")).map(|(_, v)| *v), Some('c'));
        assert_eq!(t.longest_match(ip("10.1.7.9")).map(|(_, v)| *v), Some('b'));
        assert!(t.longest_match(ip("10.2.0.1")).is_none());
    }

    #[test]
    fn host_route_and_one_past_boundary() {
        let mut t = ArenaLpm::new();
        t.insert(p("192.0.2.7/32"), 7);
        t.insert(p("172.16.0.0/12"), 12);
        let (mp, v) = t.longest_match(ip("192.0.2.7")).unwrap();
        assert_eq!((mp.len(), *v), (32, 7));
        assert!(t.longest_match(ip("192.0.2.8")).is_none());
        assert!(t.longest_match(ip("172.32.0.0")).is_none());
        assert!(t.longest_match(ip("172.16.5.5")).is_some());
    }

    #[test]
    fn iter_yields_all_in_address_order() {
        let mut t = ArenaLpm::new();
        let prefixes = ["10.0.0.0/8", "9.0.0.0/8", "10.1.0.0/16", "0.0.0.0/0"];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        let got: Vec<String> = t.iter().map(|(pf, _)| pf.to_string()).collect();
        assert_eq!(
            got,
            vec!["0.0.0.0/0", "9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16"]
        );
        assert_eq!(t.iter().count(), t.len());
    }

    #[test]
    fn path_compression_bounds_node_count() {
        let mut t = ArenaLpm::new();
        // 256 random-ish /24s under one /8: the bit trie would mint ~24
        // nodes per prefix; the compressed one at most 2 per prefix + root.
        for i in 0..256u32 {
            let a = Ipv4Addr((10 << 24) | (i.wrapping_mul(2654435761) & 0x00ff_ff00));
            if let Ok(pre) = Prefix::new(a, 24) {
                t.insert(pre, i);
            }
        }
        assert!(t.node_count() <= 2 * t.len() + 1, "{} nodes for {} prefixes", t.node_count(), t.len());
    }

    /// Naive reference: scan all prefixes, keep the longest that covers.
    fn naive_lpm<'a>(table: &'a [(Prefix, u32)], ip: Ipv4Addr) -> Option<(u8, &'a u32)> {
        table
            .iter()
            .filter(|(pre, _)| pre.contains(ip))
            .max_by_key(|(pre, _)| pre.len())
            .map(|(pre, v)| (pre.len(), v))
    }

    /// Strategy: arbitrary prefixes biased toward shared high bits so
    /// splits and nesting actually happen.
    fn arb_prefix() -> impl Strategy<Value = Prefix> {
        (any::<u32>(), 0u8..=32, any::<bool>()).prop_map(|(addr, len, cluster)| {
            let addr = if cluster { addr & 0x0a0f_ffff | 0x0a00_0000 } else { addr };
            Prefix::new(Ipv4Addr(addr & Prefix::mask(len)), len).expect("len <= 32")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// insert + longest_match agrees with the naive linear scan on
        /// arbitrary prefix sets and arbitrary query addresses.
        #[test]
        fn lpm_agrees_with_naive_scan(
            prefixes in prop::collection::vec(arb_prefix(), 0..48),
            queries in prop::collection::vec(any::<u32>(), 0..32),
        ) {
            // Last-wins table semantics, like repeated insert.
            let mut t = ArenaLpm::new();
            let mut table: Vec<(Prefix, u32)> = Vec::new();
            for (i, pre) in prefixes.iter().enumerate() {
                t.insert(*pre, i as u32);
                table.retain(|(q, _)| q != pre);
                table.push((*pre, i as u32));
            }
            prop_assert_eq!(t.len(), table.len());
            // Every inserted prefix is exactly retrievable.
            for (pre, v) in &table {
                prop_assert_eq!(t.get(*pre), Some(v));
            }
            // Cluster half the queries where the prefixes are.
            for (qi, q) in queries.iter().enumerate() {
                let addr = if qi % 2 == 0 { q & 0x0a0f_ffff | 0x0a00_0000 } else { *q };
                let ipq = Ipv4Addr(addr);
                let got = t.longest_match(ipq).map(|(pre, v)| (pre.len(), v));
                prop_assert_eq!(got, naive_lpm(&table, ipq), "query {}", ipq);
            }
        }

        /// Arena child indices always stay in bounds and the node count
        /// respects the path-compression bound — the g1 contract.
        #[test]
        fn arena_indices_in_bounds(
            prefixes in prop::collection::vec(arb_prefix(), 0..48),
        ) {
            let mut t = ArenaLpm::new();
            for (i, pre) in prefixes.iter().enumerate() {
                t.insert(*pre, i);
            }
            let n = t.nodes.len();
            for node in &t.nodes {
                for &c in &node.children {
                    prop_assert!(c == NONE || (c as usize) < n, "child {} of {}", c, n);
                }
                prop_assert!(
                    node.value == NONE || (node.value as usize) < t.values.len()
                );
                // Edge bits are left-aligned: no stray low bits.
                prop_assert_eq!(node.edge_bits & !left_bits(node.edge_bits, 0, node.edge_len), 0);
            }
            prop_assert!(t.node_count() <= 2 * t.len() + 1 + 1);
            prop_assert_eq!(t.iter().count(), t.len());
        }
    }
}
