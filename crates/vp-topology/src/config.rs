//! Generator configuration.

use serde::{Deserialize, Serialize};

/// Parameters of the synthetic Internet.
///
/// The defaults generate a medium world that runs every experiment in
/// seconds; [`TopologyConfig::tiny`] is for unit tests and
/// [`TopologyConfig::paper_scale`] pushes block counts toward the paper's
/// scale (minutes of runtime, used by the headline experiment runs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Master seed; every derived structure is deterministic in it.
    pub seed: u64,
    /// Total number of ASes.
    pub num_ases: usize,
    /// Number of tier-1 (fully meshed, provider-free) ASes.
    pub num_tier1: usize,
    /// Fraction of non-tier-1 ASes that are transit (have customers).
    pub transit_fraction: f64,
    /// Mean provider count for multihomed ASes (at least 1 each).
    pub mean_providers: f64,
    /// Probability that a pair of transit ASes on the same continent peers.
    pub peer_prob_same_continent: f64,
    /// Probability that a pair of transit ASes on different continents peers.
    pub peer_prob_cross_continent: f64,
    /// Pareto shape for per-AS announced-prefix counts (smaller = heavier
    /// tail). The paper's Fig. 7 x-axis spans 1..10^3 prefixes.
    pub prefix_count_shape: f64,
    /// Cap on announced prefixes for a single AS.
    pub max_prefixes_per_as: usize,
    /// Cap on populated /24 blocks in the whole world.
    pub max_blocks: usize,
    /// Cap on populated blocks within one announced prefix (large prefixes
    /// are sparsely populated, as in the real Internet).
    pub max_blocks_per_prefix: usize,
    /// Overall probability that a block's representative address answers
    /// pings. The paper sees ~55% (Table 4), consistent with prior hitlist
    /// studies.
    pub responsiveness: f64,
    /// Fraction of blocks that send DNS queries to a root-like service at
    /// all (most hosts sit behind a recursive resolver in another block).
    pub participation: f64,
    /// Ping responsiveness of traffic-sending blocks. Resolver
    /// infrastructure answers pings far more often than the average block:
    /// the paper maps 87.1% of the blocks B-Root sees traffic from
    /// (Table 5) despite a 55% overall hitlist response rate.
    pub sender_responsiveness: f64,
    /// Fraction of blocks missing from the geolocation database.
    pub unlocatable_fraction: f64,
    /// Log-normal sigma of per-block daily query load.
    pub load_sigma: f64,
    /// Mean daily queries per block before concentration effects.
    pub load_mean_per_block: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 0x5eed,
            num_ases: 3000,
            num_tier1: 12,
            transit_fraction: 0.15,
            mean_providers: 2.2,
            peer_prob_same_continent: 0.08,
            peer_prob_cross_continent: 0.01,
            prefix_count_shape: 1.1,
            max_prefixes_per_as: 1200,
            max_blocks: 120_000,
            max_blocks_per_prefix: 256,
            responsiveness: 0.55,
            participation: 0.25,
            sender_responsiveness: 0.87,
            unlocatable_fraction: 2e-4,
            load_sigma: 1.3,
            load_mean_per_block: 1500.0,
        }
    }
}

impl TopologyConfig {
    /// A very small world for unit tests (runs in milliseconds).
    pub fn tiny(seed: u64) -> Self {
        TopologyConfig {
            seed,
            num_ases: 120,
            num_tier1: 5,
            max_blocks: 3_000,
            max_prefixes_per_as: 60,
            max_blocks_per_prefix: 32,
            ..TopologyConfig::default()
        }
    }

    /// A larger world approaching the paper's block counts.
    pub fn paper_scale(seed: u64) -> Self {
        TopologyConfig {
            seed,
            num_ases: 12_000,
            num_tier1: 16,
            max_blocks: 700_000,
            ..TopologyConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let tiny = TopologyConfig::tiny(1);
        let def = TopologyConfig::default();
        let paper = TopologyConfig::paper_scale(1);
        assert!(tiny.num_ases < def.num_ases && def.num_ases < paper.num_ases);
        assert!(tiny.max_blocks < def.max_blocks && def.max_blocks < paper.max_blocks);
    }

    #[test]
    fn defaults_are_sane() {
        let c = TopologyConfig::default();
        assert!(c.num_tier1 < c.num_ases);
        assert!((0.0..=1.0).contains(&c.responsiveness));
        assert!((0.0..=1.0).contains(&c.transit_fraction));
        assert!(c.unlocatable_fraction < 0.01);
    }
}
