//! Property-based tests of the routing simulator over random worlds.

use proptest::prelude::*;
use vp_bgp::{Announcement, BgpSim, RouteLevel};
use vp_topology::{pick_host_ases, Internet, TopologyConfig};

fn world(seed: u64) -> Internet {
    Internet::generate(TopologyConfig {
        seed,
        num_ases: 100,
        num_tier1: 4,
        max_blocks: 1500,
        max_prefixes_per_as: 20,
        max_blocks_per_prefix: 16,
        ..TopologyConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every AS converges to exactly one route with consistent candidates.
    #[test]
    fn convergence_and_candidate_invariants(
        world_seed in 0u64..10_000,
        policy_seed in any::<u64>(),
    ) {
        let w = world(world_seed);
        let ann = Announcement::from_placements(
            &pick_host_ases(&w, &[("A", "US"), ("B", "DE"), ("C", "CN")]),
            0,
        );
        let table = BgpSim::new(&w.graph, policy_seed).route(&ann);
        for (i, r) in table.per_as.iter().enumerate() {
            let r = r.as_ref().expect("every AS reaches the anycast prefix");
            prop_assert!(r.strict_count >= 1);
            prop_assert!(r.strict_count <= r.candidates.len());
            prop_assert!(r.selected < r.candidates.len());
            // Origins are self-candidates; everyone else names a neighbor.
            match r.level {
                RouteLevel::Origin => {
                    prop_assert_eq!(r.candidates.len(), 1);
                    prop_assert_eq!(r.candidates[0].neighbor.index(), i);
                }
                _ => {
                    for c in &r.candidates {
                        prop_assert!(c.neighbor.index() != i);
                        prop_assert!(c.session_pop.is_some());
                    }
                }
            }
        }
        // Per-PoP assignments use only sites of the owning AS's pool.
        for (p, site) in table.per_pop_site.iter().enumerate() {
            let site = site.expect("every pop assigned");
            let asn = w.graph.pops[p].asn;
            let r = table.per_as[asn.index()].as_ref().unwrap();
            prop_assert!(
                r.candidates.iter().any(|c| c.site == site),
                "pop {p} got a site outside its AS's candidates"
            );
        }
    }

    /// Path lengths respect the triangle structure: a non-origin AS's
    /// length is at least 1 and at most ASes-count hops.
    #[test]
    fn path_lengths_bounded(world_seed in 0u64..10_000) {
        let w = world(world_seed);
        let ann = Announcement::from_placements(
            &pick_host_ases(&w, &[("A", "US"), ("B", "JP")]),
            0,
        );
        let table = BgpSim::new(&w.graph, 1).route(&ann);
        for r in table.per_as.iter().flatten() {
            if r.level != RouteLevel::Origin {
                prop_assert!(r.path_len >= 1);
                prop_assert!((r.path_len as usize) < w.graph.len());
            }
        }
    }

    /// Withdrawing all but one site funnels every AS to the survivor,
    /// regardless of the policy seed.
    #[test]
    fn single_site_captures_everything(
        world_seed in 0u64..10_000,
        policy_seed in any::<u64>(),
    ) {
        let w = world(world_seed);
        let mut ann = Announcement::from_placements(
            &pick_host_ases(&w, &[("A", "US"), ("B", "BR")]),
            0,
        );
        ann.set_enabled("B", false);
        let table = BgpSim::new(&w.graph, policy_seed).route(&ann);
        let a = ann.site_by_name("A").unwrap().id;
        for r in table.per_as.iter().flatten() {
            prop_assert_eq!(r.selected_site(), a);
        }
    }

    /// Aggregate catchment shrinks (weakly) as one site prepends more.
    #[test]
    fn prepending_weakly_monotone(world_seed in 0u64..2_000) {
        let w = world(world_seed);
        let placements = pick_host_ases(&w, &[("A", "US"), ("B", "GB")]);
        let sim = BgpSim::new(&w.graph, 7).with_ignore_prepend_fraction(0.0);
        let b_id = 1u8;
        let mut prev = usize::MAX;
        for prepend in 0..=3u8 {
            let mut ann = Announcement::from_placements(&placements, 0);
            ann.set_prepend("B", prepend);
            let table = sim.route(&ann);
            let count = table
                .per_as
                .iter()
                .flatten()
                .filter(|r| r.selected_site().0 == b_id)
                .count();
            prop_assert!(
                count <= prev,
                "prepend {prepend}: catchment grew {prev} -> {count}"
            );
            prev = count;
        }
    }
}
