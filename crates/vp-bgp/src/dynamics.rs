//! Catchment dynamics: per-round site flips for flip-prone ASes.
//!
//! Fig. 9 / Table 7 of the paper find anycast catchments very stable over
//! 24 hours — a median of only ~0.1% of VPs change site between rounds —
//! but the instability is *persistent and concentrated*: 51% of all flips
//! come from a single AS (Chinanet), 63% from five ASes. The mechanism is
//! load-balancing across equal-cost routes. [`FlipModel`] reproduces this:
//! ASes with more than one equally-preferred route may, with a per-AS
//! per-round probability, momentarily serve traffic over an alternate
//! route. Flips happen at PoP granularity so different blocks of an AS
//! flip at different times, as in the real measurements.

use std::collections::BTreeMap;

use vp_net::Asn;
use vp_topology::graph::AsGraph;
use vp_topology::PopId;

use crate::announce::SiteId;
use crate::routing::{mix, unit_hash, RoutingTable};

/// Per-round flip behaviour layered over a converged [`RoutingTable`].
#[derive(Debug, Clone)]
pub struct FlipModel {
    seed: u64,
    /// Per-AS flip probability per round; ASes not present never flip.
    flip_prob: BTreeMap<Asn, f64>,
}

impl FlipModel {
    /// A model in which nothing flips.
    pub fn stable(seed: u64) -> Self {
        FlipModel {
            seed,
            flip_prob: BTreeMap::new(),
        }
    }

    /// Declares `asn` flip-prone with the given per-round probability.
    pub fn with_prone_as(mut self, asn: Asn, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob));
        self.flip_prob.insert(asn, prob);
        self
    }

    /// Builds the paper-shaped default: among ASes that actually have
    /// multiple candidate routes, the one homing the most blocks becomes
    /// the heavy flipper (the Chinanet analog), the next few are moderate,
    /// and a thin background covers the rest.
    ///
    /// `blocks_per_as[asn]` must count populated blocks per AS.
    pub fn paper_default(
        seed: u64,
        table: &RoutingTable,
        blocks_per_as: &[u32],
    ) -> Self {
        let mut multi: Vec<(u32, usize)> = table
            .per_as
            .iter()
            .enumerate()
            .filter_map(|(a, r)| {
                let r = r.as_ref()?;
                if r.candidate_sites().len() > 1 {
                    Some((blocks_per_as.get(a).copied().unwrap_or(0), a))
                } else {
                    None
                }
            })
            .collect();
        multi.sort_by_key(|&(blocks, a)| (std::cmp::Reverse(blocks), a));
        let mut model = FlipModel::stable(seed);
        for (rank, &(_, a)) in multi.iter().enumerate() {
            let prob = match rank {
                0 => 0.35,       // the Chinanet analog
                1..=4 => 0.04,   // the rest of Table 7's top five
                _ => 0.002,      // thin long tail
            };
            model.flip_prob.insert(Asn(a as u32), prob);
        }
        model
    }

    /// The probability configured for `asn` (0 if absent).
    pub fn prob(&self, asn: Asn) -> f64 {
        self.flip_prob.get(&asn).copied().unwrap_or(0.0)
    }

    /// The site traffic from `pop` reaches in measurement round `round`.
    ///
    /// Round 0 always matches the converged table; later rounds may flip
    /// among the AS's equally-preferred candidates.
    pub fn site_of_pop_at_round(
        &self,
        table: &RoutingTable,
        graph: &AsGraph,
        pop: PopId,
        round: u32,
    ) -> Option<SiteId> {
        let base = table.site_of_pop(pop)?;
        if round == 0 {
            return Some(base);
        }
        let asn = graph.pops[pop.index()].asn; // vp-lint: allow(g1): the PopId was minted by this graph.
        let route = table.per_as[asn.index()].as_ref()?; // vp-lint: allow(g1): per_as is sized to the graph that owns `asn`.
        if route.candidates.len() < 2 {
            return Some(base);
        }
        let p = self.prob(asn);
        if p <= 0.0 {
            return Some(base);
        }
        let h = mix(self.seed, (pop.0 as u64) << 32 | round as u64);
        if unit_hash(h) < p {
            // Flipped this round: pick uniformly among candidates (may pick
            // the base again — real load balancers do that too).
            let idx = (mix(self.seed ^ 0xf11b, h) % route.candidates.len() as u64) as usize;
            Some(route.candidates[idx].site) // vp-lint: allow(g1): idx is reduced modulo candidates.len(), and tables never store empty candidate lists.
        } else {
            Some(base)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::announce::Announcement;
    use crate::routing::BgpSim;
    use vp_topology::{pick_host_ases, tangled_specs, Internet, TopologyConfig};

    fn setup() -> (Internet, Announcement, RoutingTable) {
        let w = Internet::generate(TopologyConfig::tiny(55));
        let ann = Announcement::from_placements(&pick_host_ases(&w, &tangled_specs()), 2);
        let table = BgpSim::new(&w.graph, 5).route(&ann);
        (w, ann, table)
    }

    #[test]
    fn stable_model_never_flips() {
        let (w, _, table) = setup();
        let model = FlipModel::stable(1);
        for pop in 0..w.graph.pops.len() as u32 {
            let base = table.site_of_pop(PopId(pop));
            for round in 0..5 {
                assert_eq!(
                    model.site_of_pop_at_round(&table, &w.graph, PopId(pop), round),
                    base
                );
            }
        }
    }

    #[test]
    fn round_zero_matches_converged_table() {
        let (w, _, table) = setup();
        let blocks_per_as = vec![10u32; w.graph.len()];
        let model = FlipModel::paper_default(3, &table, &blocks_per_as);
        for pop in 0..w.graph.pops.len() as u32 {
            assert_eq!(
                model.site_of_pop_at_round(&table, &w.graph, PopId(pop), 0),
                table.site_of_pop(PopId(pop))
            );
        }
    }

    #[test]
    fn flips_stay_within_candidate_sites() {
        let (w, _, table) = setup();
        let blocks_per_as = vec![10u32; w.graph.len()];
        let model = FlipModel::paper_default(3, &table, &blocks_per_as);
        for pop in 0..w.graph.pops.len() as u32 {
            let asn = w.graph.pops[pop as usize].asn;
            let sites = table.per_as[asn.index()].as_ref().unwrap().candidate_sites();
            for round in 0..20 {
                let s = model
                    .site_of_pop_at_round(&table, &w.graph, PopId(pop), round)
                    .unwrap();
                assert!(sites.contains(&s), "pop {pop} round {round}: {s:?} not in {sites:?}");
            }
        }
    }

    #[test]
    fn prone_as_actually_flips() {
        let (w, _, table) = setup();
        // Find a multi-candidate AS and make it flip heavily.
        let prone = table
            .per_as
            .iter()
            .enumerate()
            .find(|(_, r)| {
                r.as_ref()
                    .is_some_and(|r| r.candidate_sites().len() > 1)
            })
            .map(|(a, _)| Asn(a as u32))
            .expect("tiny world should have at least one multi-candidate AS");
        let model = FlipModel::stable(9).with_prone_as(prone, 0.9);
        let pop = w.graph.node(prone).pops[0];
        let base = table.site_of_pop(pop).unwrap();
        let mut saw_flip = false;
        for round in 1..200 {
            let s = model
                .site_of_pop_at_round(&table, &w.graph, pop, round)
                .unwrap();
            if s != base {
                saw_flip = true;
                break;
            }
        }
        assert!(saw_flip, "prone AS never flipped in 200 rounds");
    }

    #[test]
    fn model_is_deterministic_per_round() {
        let (w, _, table) = setup();
        let blocks_per_as = vec![10u32; w.graph.len()];
        let m1 = FlipModel::paper_default(3, &table, &blocks_per_as);
        let m2 = FlipModel::paper_default(3, &table, &blocks_per_as);
        for pop in 0..w.graph.pops.len() as u32 {
            for round in 0..10 {
                assert_eq!(
                    m1.site_of_pop_at_round(&table, &w.graph, PopId(pop), round),
                    m2.site_of_pop_at_round(&table, &w.graph, PopId(pop), round)
                );
            }
        }
    }

    #[test]
    fn paper_default_assigns_heavy_head() {
        let (w, _, table) = setup();
        let mut blocks_per_as = vec![1u32; w.graph.len()];
        // Make AS with most blocks identifiable.
        if let Some((a, _)) = table
            .per_as
            .iter()
            .enumerate()
            .find(|(_, r)| r.as_ref().is_some_and(|r| r.candidate_sites().len() > 1))
        {
            blocks_per_as[a] = 1000;
            let model = FlipModel::paper_default(3, &table, &blocks_per_as);
            assert!((model.prob(Asn(a as u32)) - 0.35).abs() < 1e-12);
        }
    }
}
