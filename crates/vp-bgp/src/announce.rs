//! Anycast announcements: the same prefix originated from several sites.

use serde::{Deserialize, Serialize};
use vp_net::{Asn, Ipv4Addr, Prefix};
use vp_topology::{PopId, SitePlacement, ANYCAST_REGION};

/// Identifier of an anycast site within one deployment (dense, small).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SiteId(pub u8);

impl SiteId {
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// One anycast site: where the service announces from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    pub id: SiteId,
    /// Paper-style tag ("LAX", "MIA", "CDG", ...).
    pub name: String,
    /// The AS hosting this site (the "Upstream" column of Table 3).
    pub host_asn: Asn,
    /// The PoP of the host AS where the service machines sit.
    pub pop: PopId,
    /// Times the origin prepends its own ASN (0 = no prepending).
    pub prepend: u8,
    /// Withdrawn sites stay in the table but do not announce.
    pub enabled: bool,
}

/// An anycast deployment: one prefix, many origins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Announcement {
    /// The service prefix (a /24, as anycast operators announce).
    pub prefix: Prefix,
    pub sites: Vec<Site>,
}

impl Announcement {
    /// Builds a deployment from placed sites, announcing the `n`-th /24 of
    /// the reserved anycast region.
    ///
    /// # Panics
    /// Panics on more than 250 sites or duplicate host ASes.
    pub fn from_placements(placements: &[SitePlacement], region_slot: u8) -> Announcement {
        assert!(placements.len() <= 250, "too many sites");
        let mut sites = Vec::with_capacity(placements.len());
        for (i, p) in placements.iter().enumerate() {
            assert!(
                !sites.iter().any(|s: &Site| s.host_asn == p.host_asn),
                "duplicate host AS {} for site {}",
                p.host_asn,
                p.name
            );
            sites.push(Site {
                id: SiteId(i as u8),
                name: p.name.clone(),
                host_asn: p.host_asn,
                pop: p.pop,
                prepend: 0,
                enabled: true,
            });
        }
        let base = ANYCAST_REGION.0 + ((region_slot as u32) << 8);
        Announcement {
            // vp-lint: allow(h2): /24 is always a valid prefix length.
            prefix: Prefix::new(Ipv4Addr(base), 24).expect("static /24"),
            sites,
        }
    }

    /// The measurement source address used by the prober (first host in the
    /// service prefix, which is inside the anycast /24 as §3.1 requires).
    pub fn measurement_addr(&self) -> Ipv4Addr {
        Ipv4Addr(self.prefix.addr().0 | 1)
    }

    /// The enabled sites.
    pub fn active_sites(&self) -> impl Iterator<Item = &Site> {
        self.sites.iter().filter(|s| s.enabled)
    }

    /// Looks a site up by name.
    pub fn site_by_name(&self, name: &str) -> Option<&Site> {
        self.sites.iter().find(|s| s.name == name)
    }

    /// Sets the prepend count for a named site. Panics on unknown name.
    // vp-lint: allow(g1): documented contract — scenario builders address sites by the fixed testbed names, and a typo must fail loudly, not route silently.
    pub fn set_prepend(&mut self, name: &str, prepend: u8) -> &mut Self {
        let site = self
            .sites
            .iter_mut()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no site named {name:?}"));
        site.prepend = prepend;
        self
    }

    /// Enables/disables a named site. Panics on unknown name.
    // vp-lint: allow(g1): documented contract — scenario builders address sites by the fixed testbed names, and a typo must fail loudly, not route silently.
    pub fn set_enabled(&mut self, name: &str, enabled: bool) -> &mut Self {
        let site = self
            .sites
            .iter_mut()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no site named {name:?}"));
        site.enabled = enabled;
        self
    }

    /// A copy with all prepends cleared (the "equal" configuration of
    /// Figs. 5 and 6).
    pub fn without_prepending(&self) -> Announcement {
        let mut a = self.clone();
        for s in &mut a.sites {
            s.prepend = 0;
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_topology::{pick_host_ases, tangled_specs, Internet, TopologyConfig};

    fn deployment() -> Announcement {
        let world = Internet::generate(TopologyConfig::tiny(31));
        let placements = pick_host_ases(&world, &tangled_specs());
        Announcement::from_placements(&placements, 0)
    }

    #[test]
    fn prefix_is_in_reserved_region() {
        let a = deployment();
        assert_eq!(a.prefix.len(), 24);
        assert!(a.prefix.addr().0 >= ANYCAST_REGION.0);
        assert!(a.prefix.contains(a.measurement_addr()));
    }

    #[test]
    fn sites_have_dense_ids_and_names() {
        let a = deployment();
        for (i, s) in a.sites.iter().enumerate() {
            assert_eq!(s.id, SiteId(i as u8));
            assert!(s.enabled);
            assert_eq!(s.prepend, 0);
        }
        assert!(a.site_by_name("SYD").is_some());
        assert!(a.site_by_name("XXX").is_none());
    }

    #[test]
    fn prepend_and_enable_toggles() {
        let mut a = deployment();
        a.set_prepend("MIA", 3).set_enabled("HND", false);
        assert_eq!(a.site_by_name("MIA").unwrap().prepend, 3);
        assert!(!a.site_by_name("HND").unwrap().enabled);
        assert_eq!(a.active_sites().count(), a.sites.len() - 1);
        let cleared = a.without_prepending();
        assert_eq!(cleared.site_by_name("MIA").unwrap().prepend, 0);
        // enablement survives clearing prepends
        assert!(!cleared.site_by_name("HND").unwrap().enabled);
    }

    #[test]
    fn distinct_slots_give_distinct_prefixes() {
        let world = Internet::generate(TopologyConfig::tiny(32));
        let placements = pick_host_ases(&world, &[("A", "US"), ("B", "DE")]);
        let a = Announcement::from_placements(&placements, 0);
        let b = Announcement::from_placements(&placements, 1);
        assert_ne!(a.prefix, b.prefix);
    }

    #[test]
    #[should_panic(expected = "no site named")]
    fn unknown_site_name_panics() {
        deployment().set_prepend("NOPE", 1);
    }
}
