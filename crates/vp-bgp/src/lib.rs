//! BGP policy-routing simulator for anycast catchments.
//!
//! The paper stresses that it "does not model BGP routing to predict future
//! catchments, \[it\] measures actual deployment" (§3.1) — because it has the
//! real Internet to measure. This reproduction does not, so this crate
//! provides the routing system that *produces* the catchments the prober
//! then measures. The measurement pipeline never peeks at this crate's
//! internals; it only observes where reply packets arrive, exactly like the
//! real tool.
//!
//! The model is the standard Gao–Rexford abstraction used by BGP simulation
//! studies:
//!
//! * **Export rules** — routes learned from customers are exported to
//!   everyone; routes learned from peers or providers only to customers
//!   (valley-free routing).
//! * **Decision process** — prefer customer-learned over peer-learned over
//!   provider-learned (local-pref), then shortest AS path (where
//!   [`Site::prepend`] inflates the origin's path), then a deterministic
//!   per-AS policy tie-break. A configurable sliver of ASes ignores path
//!   length entirely — the paper observes ASes "that choose to ignore
//!   prepending" sticking to MIA even at MIA+3 (§6.1).
//! * **Hot-potato egress** — when several neighbors offer equally good
//!   routes, each PoP of an AS exits via the neighbor session closest to
//!   it. This is what splits large ASes across catchments (Figs. 7, 8).
//! * **Dynamics** — [`dynamics::FlipModel`] perturbs the per-round choice
//!   among equal candidates for flip-prone ASes, reproducing the rare but
//!   persistent catchment instability of Fig. 9 / Table 7.

pub mod announce;
pub mod dynamics;
pub mod routing;

pub use announce::{Announcement, Site, SiteId};
pub use dynamics::FlipModel;
pub use routing::{BgpSim, Candidate, RouteLevel, RouteObs, RoutingTable};
