//! Route propagation and the per-AS / per-PoP decision process.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};
use vp_geo::distance_km;
use vp_net::Asn;
use vp_topology::graph::AsGraph;
use vp_topology::PopId;

use crate::announce::{Announcement, SiteId};

/// Where the selected route was learned (the local-pref ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteLevel {
    /// This AS hosts a site itself.
    Origin,
    Customer,
    Peer,
    Provider,
}

/// One equally-preferred (or near-equal) route available at an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    /// The neighbor offering the route (self for origins).
    pub neighbor: Asn,
    /// The anycast site this route leads to.
    pub site: SiteId,
    /// Our PoP where the session to `neighbor` lands (None for origins).
    pub session_pop: Option<PopId>,
}

/// The route state of one AS for the anycast prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsRoute {
    pub level: RouteLevel,
    /// Effective AS-path length (prepending included).
    pub path_len: u32,
    /// Available routes: the first `strict_count` are shortest-path ties;
    /// any further entries are within the hot-potato slack (one hop
    /// longer), which large multi-PoP ASes may still use at some PoPs.
    pub candidates: Vec<Candidate>,
    /// How many leading candidates are strictly best (≥ 1).
    pub strict_count: usize,
    /// Index of the deterministically tie-broken best candidate. For
    /// prepend-ignoring ASes this may point into the slack range; such
    /// routes are used locally but never re-advertised.
    pub selected: usize,
}

impl AsRoute {
    /// The tie-broken site this AS as a whole routes to.
    pub fn selected_site(&self) -> SiteId {
        self.candidates[self.selected].site // vp-lint: allow(g1): BgpSim sets `selected` to a valid candidates position.
    }

    /// Distinct sites reachable over equally-preferred routes.
    pub fn candidate_sites(&self) -> Vec<SiteId> {
        let mut v: Vec<SiteId> = self.candidates.iter().map(|c| c.site).collect();
        v.sort();
        v.dedup();
        v
    }
}

/// The converged routing outcome for one announcement configuration.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    /// Per-AS route state, indexed by dense ASN. `None` = unreachable.
    pub per_as: Vec<Option<AsRoute>>,
    /// Hot-potato site choice per PoP, indexed by [`PopId`].
    pub per_pop_site: Vec<Option<SiteId>>,
}

impl RoutingTable {
    /// The site the AS-level selected route leads to.
    pub fn site_of_as(&self, asn: Asn) -> Option<SiteId> {
        self.per_as[asn.index()].as_ref().map(AsRoute::selected_site) // vp-lint: allow(g1): per_as is sized to the AS graph that minted `asn`.
    }

    /// The site traffic from this PoP reaches (the catchment of every block
    /// homed on the PoP).
    pub fn site_of_pop(&self, pop: PopId) -> Option<SiteId> {
        self.per_pop_site[pop.index()] // vp-lint: allow(g1): per_pop_site is sized to the graph that minted `pop`.
    }

    /// Distinct sites seen from any PoP of this AS — the quantity behind
    /// the AS-division analysis (Figs. 7, 8).
    pub fn sites_seen_by_as(&self, graph: &AsGraph, asn: Asn) -> Vec<SiteId> {
        let mut v: Vec<SiteId> = graph
            .node(asn)
            .pops
            .iter()
            .filter_map(|p| self.per_pop_site[p.index()]) // vp-lint: allow(g1): PoP ids come from the same graph the table was built over.
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

/// Work counters for one [`BgpSim::route`] propagation — the phase
/// profiler's view of route convergence cost. Purely derived from the
/// graph and announcement, so identical across reruns; recorded into a
/// `vp_obs::Registry` with [`RouteObs::record`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteObs {
    /// ASes that converged on a route.
    pub ases_routed: u64,
    /// ASes left with no route to the prefix.
    pub unreachable: u64,
    /// Heap pops in the customer-route Dijkstra (stage 1), stale included.
    pub heap_pops_customer: u64,
    /// Heap pops in the provider-route descent (stage 3), stale included.
    pub heap_pops_provider: u64,
    /// Candidate routes retained across all ASes (strict + slack).
    pub candidates: u64,
    /// Slack candidates among those (hot-potato-only, never re-exported).
    pub slack_candidates: u64,
    /// PoPs given a hot-potato site assignment.
    pub pops_assigned: u64,
    /// Selected-route counts by [`RouteLevel`]: origin/customer/peer/provider.
    pub selected_by_level: [u64; 4],
}

impl RouteObs {
    /// Folds these counters into a registry as `bgp.*` series.
    pub fn record(&self, registry: &mut vp_obs::Registry) {
        registry.counter_add("bgp.ases_routed", &[], self.ases_routed);
        registry.counter_add("bgp.unreachable", &[], self.unreachable);
        registry.counter_add("bgp.heap_pops", &[("stage", "customer")], self.heap_pops_customer);
        registry.counter_add("bgp.heap_pops", &[("stage", "provider")], self.heap_pops_provider);
        registry.counter_add("bgp.candidates", &[], self.candidates);
        registry.counter_add("bgp.slack_candidates", &[], self.slack_candidates);
        registry.counter_add("bgp.pops_assigned", &[], self.pops_assigned);
        for (level, n) in ["origin", "customer", "peer", "provider"]
            .iter()
            .zip(self.selected_by_level)
        {
            registry.counter_add("bgp.selected", &[("level", level)], n);
        }
    }
}

/// The simulator: owns decision-policy knobs, borrows the graph.
#[derive(Debug, Clone)]
pub struct BgpSim<'a> {
    graph: &'a AsGraph,
    policy_seed: u64,
    /// Fraction of ASes whose decision ignores AS-path length (§6.1's
    /// "ASes that choose to ignore prepending").
    ignore_prepend_fraction: f64,
}

impl<'a> BgpSim<'a> {
    pub fn new(graph: &'a AsGraph, policy_seed: u64) -> Self {
        BgpSim {
            graph,
            policy_seed,
            ignore_prepend_fraction: 0.02,
        }
    }

    /// Overrides the fraction of prepend-ignoring ASes (0 disables).
    pub fn with_ignore_prepend_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.ignore_prepend_fraction = f;
        self
    }

    fn ignores_prepending(&self, asn: Asn) -> bool {
        unit_hash(mix(self.policy_seed ^ 0x1971, asn.0 as u64)) < self.ignore_prepend_fraction
    }

    /// Computes the converged routing table for `ann`.
    ///
    /// Runs the standard three-stage valley-free propagation: customer
    /// routes climb provider links (Dijkstra, since prepended origins start
    /// at different costs), peer routes take one lateral hop, provider
    /// routes descend customer links using each AS's pref-selected export.
    pub fn route(&self, ann: &Announcement) -> RoutingTable {
        self.route_traced(ann).0
    }

    /// Like [`BgpSim::route`], additionally returning the propagation work
    /// counters (same table, bit for bit — the counters are observers).
    // vp-lint: allow(g1): the propagation core indexes dense per-AS vectors sized to self.graph; every id is a node of that graph.
    pub fn route_traced(&self, ann: &Announcement) -> (RoutingTable, RouteObs) {
        let mut obs = RouteObs::default();
        let n = self.graph.len();
        const INF: u32 = u32::MAX;

        let mut origin_site: Vec<Option<(SiteId, u32)>> = vec![None; n];
        for site in ann.active_sites() {
            origin_site[site.host_asn.index()] = Some((site.id, site.prepend as u32)); // vp-lint: allow(g1): host ASNs are nodes of the graph this sim was built over.
        }

        // Stage 1: customer routes (and origin injections) climb upward.
        let mut dist_cust = vec![INF; n];
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        for (i, o) in origin_site.iter().enumerate() {
            if let Some((_, prepend)) = o {
                dist_cust[i] = *prepend;
                heap.push(Reverse((*prepend, i as u32)));
            }
        }
        while let Some(Reverse((d, a))) = heap.pop() {
            obs.heap_pops_customer += 1;
            if d > dist_cust[a as usize] {
                continue;
            }
            for p in &self.graph.ases[a as usize].providers {
                let pi = p.index();
                // Origins keep their own route; they never adopt customer
                // routes for the anycast prefix.
                if origin_site[pi].is_some() {
                    continue;
                }
                if d + 1 < dist_cust[pi] {
                    dist_cust[pi] = d + 1;
                    heap.push(Reverse((d + 1, p.0)));
                }
            }
        }

        // Stage 2: peer routes — one lateral hop from ASes whose best route
        // is customer-learned (or originated).
        let mut dist_peer = vec![INF; n];
        for a in 0..n {
            if origin_site[a].is_some() {
                continue;
            }
            for q in &self.graph.ases[a].peers {
                let qd = dist_cust[q.index()];
                if qd != INF && qd + 1 < dist_peer[a] {
                    dist_peer[a] = qd + 1;
                }
            }
        }

        // Stage 3: provider routes descend customer links. Every AS exports
        // its pref-selected best (customer beats peer beats provider), so
        // ASes with customer/peer routes are fixed-cost sources.
        let mut dist_prov = vec![INF; n];
        let mut export_len = vec![INF; n];
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        let mut popped = vec![false; n];
        for a in 0..n {
            let fixed = if dist_cust[a] != INF {
                dist_cust[a]
            } else if dist_peer[a] != INF {
                dist_peer[a]
            } else {
                continue;
            };
            export_len[a] = fixed;
            heap.push(Reverse((fixed, a as u32)));
        }
        while let Some(Reverse((d, a))) = heap.pop() {
            obs.heap_pops_provider += 1;
            let ai = a as usize;
            if popped[ai] {
                continue;
            }
            popped[ai] = true;
            export_len[ai] = d;
            for c in &self.graph.ases[ai].customers {
                let ci = c.index();
                if origin_site[ci].is_some() {
                    continue;
                }
                if d + 1 < dist_prov[ci] {
                    dist_prov[ci] = d + 1;
                    // Only provider-route-dependent ASes re-export at this
                    // cost; others were already seeded with their fixed one.
                    if dist_cust[ci] == INF && dist_peer[ci] == INF {
                        heap.push(Reverse((d + 1, c.0)));
                    }
                }
            }
        }
        // Export length for provider-only ASes.
        for a in 0..n {
            if export_len[a] == INF && dist_prov[a] != INF {
                export_len[a] = dist_prov[a];
            }
        }

        // Stage 4: selection with site identity, in increasing export_len
        // order so every neighbor's routes are final before use. Per-PoP
        // (hot-potato) assignment happens inline, because the site a
        // neighbor hands us depends on *which of its PoPs* our session
        // lands on — large ASes export different sites at different
        // interconnection points, which is how catchment splits propagate.
        let mut order: Vec<usize> = (0..n).filter(|&a| export_len[a] != INF).collect();
        order.sort_by_key(|&a| export_len[a]);
        let mut per_as: Vec<Option<AsRoute>> = vec![None; n];
        let mut per_pop_site: Vec<Option<SiteId>> = vec![None; self.graph.pops.len()];
        // What each PoP *advertises* over its sessions: hot-potato over the
        // strictly-best routes only. Slack routes never propagate — their
        // longer AS path would otherwise be laundered into the strict
        // length at every multi-PoP AS, neutering prepending downstream.
        let mut per_pop_export: Vec<Option<SiteId>> = vec![None; self.graph.pops.len()];
        for &a in &order {
            let asn = Asn(a as u32);
            let route = if let Some((site, prepend)) = origin_site[a] {
                AsRoute {
                    level: RouteLevel::Origin,
                    path_len: prepend,
                    candidates: vec![Candidate {
                        neighbor: asn,
                        site,
                        session_pop: None,
                    }],
                    strict_count: 1,
                    selected: 0,
                }
            } else {
                let ignore_len = self.ignores_prepending(asn);
                let (level, len) = if dist_cust[a] != INF {
                    (RouteLevel::Customer, dist_cust[a])
                } else if dist_peer[a] != INF {
                    (RouteLevel::Peer, dist_peer[a])
                } else {
                    (RouteLevel::Provider, dist_prov[a])
                };
                // Strict candidates tie on shortest path; slack candidates
                // are one hop longer and remain usable for hot-potato
                // egress at large ASes (RIB diversity).
                let mut strict = Vec::new();
                let mut slack = Vec::new();
                let push = |neighbor: Asn,
                            offer_len: u32,
                            strict: &mut Vec<Candidate>,
                            slack: &mut Vec<Candidate>| {
                    if offer_len == INF {
                        return;
                    }
                    // Strict = shortest-path ties (these propagate).
                    // Slack = one hop longer for everyone, or any length
                    // for prepend-ignoring ASes — slack routes serve local
                    // traffic only and are never re-advertised, so a
                    // length-ignoring AS cannot launder a prepended path
                    // into a short one for its whole customer cone.
                    let bucket: Option<&mut Vec<Candidate>> = if offer_len + 1 == len {
                        Some(strict)
                    } else if offer_len == len || ignore_len {
                        Some(slack)
                    } else {
                        None
                    };
                    if let Some(bucket) = bucket {
                        if let Some(route) = per_as[neighbor.index()].as_ref() {
                            // The route the neighbor hands us at this
                            // session is the one its local PoP advertises.
                            let site = self
                                .graph
                                .session_pop(neighbor, asn)
                                .and_then(|sp| per_pop_export[sp.index()])
                                .unwrap_or_else(|| route.selected_site());
                            bucket.push(Candidate {
                                neighbor,
                                site,
                                session_pop: self.graph.session_pop(asn, neighbor),
                            });
                        }
                    }
                };
                match level {
                    RouteLevel::Customer => {
                        for c in &self.graph.ases[a].customers {
                            push(*c, dist_cust[c.index()], &mut strict, &mut slack);
                        }
                    }
                    RouteLevel::Peer => {
                        for q in &self.graph.ases[a].peers {
                            push(*q, dist_cust[q.index()], &mut strict, &mut slack);
                        }
                    }
                    RouteLevel::Provider => {
                        for p in &self.graph.ases[a].providers {
                            push(*p, export_len[p.index()], &mut strict, &mut slack);
                        }
                    }
                    RouteLevel::Origin => unreachable!("handled above"),
                }
                if strict.is_empty() {
                    // Can happen only if a neighbor's route was filtered by
                    // the equal-length rule due to the ignore-length path;
                    // fall back to any neighbor at the level.
                    continue;
                }
                let strict_count = strict.len();
                let mut candidates = strict;
                candidates.extend(slack);
                // Prepend-ignoring ASes pick among everything they hear;
                // everyone else tie-breaks among the strictly best.
                let pick_span = if ignore_len { candidates.len() } else { strict_count };
                let selected = (mix(self.policy_seed, a as u64) % pick_span as u64) as usize;
                AsRoute {
                    level,
                    path_len: len,
                    candidates,
                    strict_count,
                    selected,
                }
            };
            // Hot-potato per-PoP egress for this AS. Small ASes use only
            // the strictly best routes; multi-PoP ASes (>= 2 PoPs) also use
            // the slack routes, so distant PoPs exit via their nearest
            // session even when its path is one hop longer — the mechanism
            // behind the big-AS catchment splits of Figs. 7 and 8.
            let pops = &self.graph.ases[a].pops;
            let hot_potato = |pop: PopId, pool: &[Candidate]| -> SiteId {
                if pool.len() == 1 {
                    return pool[0].site;
                }
                let here = &self.graph.pops[pop.index()];
                let mut best = pool[0];
                let mut best_d = f64::INFINITY;
                for cand in pool {
                    let d = match cand.session_pop {
                        Some(sp) => {
                            let p = &self.graph.pops[sp.index()];
                            // IGP costs are not great-circle distances; a
                            // deterministic +-25% jitter keyed by (pop,
                            // neighbor) models the difference and breaks
                            // co-located session ties.
                            let igp_noise = 0.75
                                + 0.5
                                    * unit_hash(mix(
                                        self.policy_seed ^ 0x16b,
                                        (pop.0 as u64) << 32 | cand.neighbor.0 as u64,
                                    ));
                            (distance_km(here.lat, here.lon, p.lat, p.lon) + 50.0) * igp_noise
                        }
                        None => 0.0,
                    };
                    if d < best_d {
                        best_d = d;
                        best = *cand;
                    }
                }
                best.site
            };
            // Local traffic may ride slack routes at multi-PoP ASes (and
            // at prepend-ignoring ASes, whose selection may itself be a
            // slack route); exports advertise only strictly-best routes.
            let ignore_len = origin_site[a].is_none() && self.ignores_prepending(Asn(a as u32));
            let local_pool: &[Candidate] = if pops.len() >= 2 || ignore_len {
                &route.candidates[..]
            } else {
                &route.candidates[..route.strict_count]
            };
            let export_pool: &[Candidate] = &route.candidates[..route.strict_count];
            for &pop in pops {
                per_pop_site[pop.index()] = Some(hot_potato(pop, local_pool));
                per_pop_export[pop.index()] = Some(hot_potato(pop, export_pool));
            }
            obs.pops_assigned += pops.len() as u64;
            obs.candidates += route.candidates.len() as u64;
            obs.slack_candidates += (route.candidates.len() - route.strict_count) as u64;
            obs.selected_by_level[route.level as usize] += 1;
            per_as[a] = Some(route);
        }

        obs.ases_routed = per_as.iter().filter(|r| r.is_some()).count() as u64;
        obs.unreachable = n as u64 - obs.ases_routed;
        (
            RoutingTable {
                per_as,
                per_pop_site,
            },
            obs,
        )
    }
}

/// splitmix64 — the deterministic policy hash.
pub(crate) fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to the unit interval.
pub(crate) fn unit_hash(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::announce::Announcement;
    use vp_topology::{broot_specs, pick_host_ases, tangled_specs, Internet, TopologyConfig};

    fn world() -> Internet {
        Internet::generate(TopologyConfig::tiny(77))
    }

    fn broot(world: &Internet) -> Announcement {
        Announcement::from_placements(&pick_host_ases(world, &broot_specs()), 0)
    }

    #[test]
    fn every_as_gets_a_route() {
        let w = world();
        let sim = BgpSim::new(&w.graph, 7);
        let table = sim.route(&broot(&w));
        for (i, r) in table.per_as.iter().enumerate() {
            assert!(r.is_some(), "AS{i} has no route");
        }
        for (i, s) in table.per_pop_site.iter().enumerate() {
            assert!(s.is_some(), "pop {i} has no site");
        }
    }

    #[test]
    fn origins_route_to_themselves() {
        let w = world();
        let ann = broot(&w);
        let sim = BgpSim::new(&w.graph, 7);
        let table = sim.route(&ann);
        for site in ann.active_sites() {
            let r = table.per_as[site.host_asn.index()].as_ref().unwrap();
            assert_eq!(r.level, RouteLevel::Origin);
            assert_eq!(r.selected_site(), site.id);
            // All PoPs of the host AS stay home.
            for &pop in &w.graph.node(site.host_asn).pops {
                assert_eq!(table.site_of_pop(pop), Some(site.id));
            }
        }
    }

    #[test]
    fn both_sites_attract_some_catchment() {
        let w = world();
        let sim = BgpSim::new(&w.graph, 7);
        let table = sim.route(&broot(&w));
        let mut counts = [0usize; 2];
        for r in table.per_as.iter().flatten() {
            counts[r.selected_site().index()] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0, "counts {counts:?}");
    }

    #[test]
    fn disabling_a_site_sends_everything_to_the_other() {
        let w = world();
        let mut ann = broot(&w);
        ann.set_enabled("MIA", false);
        let sim = BgpSim::new(&w.graph, 7);
        let table = sim.route(&ann);
        let lax = ann.site_by_name("LAX").unwrap().id;
        for r in table.per_as.iter().flatten() {
            assert_eq!(r.selected_site(), lax);
        }
    }

    #[test]
    fn prepending_monotonically_shrinks_a_catchment() {
        let w = world();
        let sim = BgpSim::new(&w.graph, 7).with_ignore_prepend_fraction(0.0);
        let mia = 1usize; // site index of MIA in broot specs
        let mut prev = usize::MAX;
        for prepend in 0..=3u8 {
            let mut ann = broot(&w);
            ann.set_prepend("MIA", prepend);
            let table = sim.route(&ann);
            let mia_count = table
                .per_as
                .iter()
                .flatten()
                .filter(|r| r.selected_site().index() == mia)
                .count();
            assert!(
                mia_count <= prev,
                "prepend {prepend}: catchment grew {prev} -> {mia_count}"
            );
            prev = mia_count;
        }
    }

    #[test]
    fn host_customers_stick_through_prepending() {
        // The paper's §6.1 residual: direct customers of MIA's host AS keep
        // routing to MIA even at +3 prepending, because customer routes win
        // on local-pref before path length is compared.
        let w = world();
        let mut ann = broot(&w);
        ann.set_prepend("MIA", 3);
        let mia_site = ann.site_by_name("MIA").unwrap();
        let sim = BgpSim::new(&w.graph, 7).with_ignore_prepend_fraction(0.0);
        let table = sim.route(&ann);
        for c in &w.graph.node(mia_site.host_asn).customers {
            let r = table.per_as[c.index()].as_ref().unwrap();
            // Customer of the origin: its customer-level route to MIA is
            // one hop; LAX can only be reached via providers/peers at best,
            // or via another customer chain. If its level is Customer and
            // MIA's host is the only customer-route source, it must be MIA.
            if r.level == RouteLevel::Customer && r.path_len == ann.site_by_name("MIA").unwrap().prepend as u32 + 1 {
                assert_eq!(r.selected_site(), mia_site.id);
            }
        }
    }

    #[test]
    fn tangled_all_nine_sites_reachable() {
        let w = world();
        let ann = Announcement::from_placements(&pick_host_ases(&w, &tangled_specs()), 1);
        let sim = BgpSim::new(&w.graph, 3);
        let table = sim.route(&ann);
        let mut seen = std::collections::HashSet::new();
        for r in table.per_as.iter().flatten() {
            seen.insert(r.selected_site());
        }
        // Every site is at least its own origin's catchment.
        assert_eq!(seen.len(), 9, "sites seen: {seen:?}");
    }

    #[test]
    fn routing_is_deterministic() {
        let w = world();
        let ann = broot(&w);
        let sim = BgpSim::new(&w.graph, 9);
        let a = sim.route(&ann);
        let b = sim.route(&ann);
        for (x, y) in a.per_as.iter().zip(&b.per_as) {
            assert_eq!(x, y);
        }
        assert_eq!(a.per_pop_site, b.per_pop_site);
    }

    #[test]
    fn policy_seed_changes_tie_breaks_only_modestly() {
        let w = world();
        let ann = broot(&w);
        let t1 = BgpSim::new(&w.graph, 1).route(&ann);
        let t2 = BgpSim::new(&w.graph, 2).route(&ann);
        let total = t1.per_as.len();
        let differ = t1
            .per_as
            .iter()
            .zip(&t2.per_as)
            .filter(|(a, b)| {
                a.as_ref().map(|r| r.selected_site()) != b.as_ref().map(|r| r.selected_site())
            })
            .count();
        // Path structure dominates; tie-breaks move only a minority.
        assert!(
            differ * 2 < total,
            "{differ}/{total} ASes moved on a seed change"
        );
    }

    #[test]
    fn candidates_are_consistent() {
        let w = world();
        let ann = Announcement::from_placements(&pick_host_ases(&w, &tangled_specs()), 1);
        let sim = BgpSim::new(&w.graph, 3);
        let table = sim.route(&ann);
        for (a, r) in table.per_as.iter().enumerate() {
            let r = r.as_ref().unwrap();
            assert!(r.selected < r.candidates.len());
            assert!(!r.candidates.is_empty());
            for c in &r.candidates {
                if r.level != RouteLevel::Origin {
                    assert_ne!(c.neighbor.index(), a, "self candidate on non-origin");
                    assert!(c.session_pop.is_some());
                }
            }
            let sites = r.candidate_sites();
            assert!(sites.contains(&r.selected_site()));
        }
    }

    #[test]
    fn sites_seen_by_as_matches_pop_assignments() {
        let w = world();
        let ann = Announcement::from_placements(&pick_host_ases(&w, &tangled_specs()), 1);
        let table = BgpSim::new(&w.graph, 3).route(&ann);
        for node in &w.graph.ases {
            let sites = table.sites_seen_by_as(&w.graph, node.asn);
            for &pop in &node.pops {
                let s = table.site_of_pop(pop).unwrap();
                assert!(sites.contains(&s));
            }
        }
    }

    #[test]
    fn some_multi_pop_ases_split_across_sites() {
        // Hot-potato must create at least some intra-AS divisions in a
        // nine-site deployment (Figs. 7-8's subject matter).
        let w = world();
        let ann = Announcement::from_placements(&pick_host_ases(&w, &tangled_specs()), 1);
        let table = BgpSim::new(&w.graph, 3).route(&ann);
        let split = w
            .graph
            .ases
            .iter()
            .filter(|n| table.sites_seen_by_as(&w.graph, n.asn).len() > 1)
            .count();
        assert!(split > 0, "no AS is split across sites");
    }
}
