//! Property-based tests of the load substrate.

use proptest::prelude::*;
use vp_dns::{LoadModel, QueryLog, Rssac002Report};
use vp_topology::{Internet, TopologyConfig};

fn world(seed: u64) -> Internet {
    Internet::generate(TopologyConfig {
        seed,
        num_ases: 80,
        num_tier1: 4,
        max_blocks: 1200,
        max_prefixes_per_as: 20,
        max_blocks_per_prefix: 16,
        ..TopologyConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hourly rates are non-negative and integrate to the daily volume
    /// within the configured noise.
    #[test]
    fn hourly_integral_matches_daily(world_seed in 0u64..3000, model_seed in any::<u64>()) {
        let w = world(world_seed);
        let model = LoadModel { seed: model_seed, ..LoadModel::default() };
        let log = QueryLog::ditl(&w, model, "L");
        for i in (0..w.blocks.len()).step_by(31) {
            let daily = log.daily_by_idx(i);
            let sum: f64 = (0..24).map(|h| {
                let v = log.hourly_by_idx(i, h);
                assert!(v >= 0.0 && v.is_finite());
                v
            }).sum();
            if daily > 0.0 {
                prop_assert!((sum - daily).abs() / daily < 0.15, "block {i}: {sum} vs {daily}");
            } else {
                prop_assert_eq!(sum, 0.0);
            }
        }
    }

    /// Date drift preserves the zero/non-zero participation pattern and
    /// stays within the documented ±30% per block.
    #[test]
    fn date_drift_bounded(world_seed in 0u64..3000, date_seed in any::<u64>()) {
        let w = world(world_seed);
        let log = QueryLog::ditl(&w, LoadModel::default(), "a");
        let drifted = log.with_date(date_seed, "b");
        for i in 0..w.blocks.len() {
            let (a, b) = (log.daily_by_idx(i), drifted.daily_by_idx(i));
            if a == 0.0 {
                prop_assert_eq!(b, 0.0);
            } else {
                let ratio = b / a;
                prop_assert!((0.69..=1.31).contains(&ratio), "ratio {ratio}");
            }
        }
    }

    /// Reply classes are ordered: good <= all replies <= queries, for any
    /// model parameters in range.
    #[test]
    fn reply_class_ordering(
        world_seed in 0u64..3000,
        good in 0.05f64..0.9,
        rrl in 0.0f64..0.3,
    ) {
        let w = world(world_seed);
        let model = LoadModel {
            good_reply_frac_mean: good,
            rrl_drop_frac: rrl,
            ..LoadModel::default()
        };
        let log = QueryLog::ditl(&w, model, "L");
        let q = log.total_daily();
        prop_assert!(log.total_replies() <= q + 1e-9);
        for b in w.blocks.iter().take(64) {
            let g = log.good_reply_frac(b.block);
            prop_assert!((0.0..=1.0).contains(&g));
            prop_assert!(log.reply_frac(b.block) <= 1.0);
        }
    }

    /// RSSAC reports partition the log under any block-to-site assignment.
    #[test]
    fn rssac_partitions(world_seed in 0u64..3000, sites in 1u8..9) {
        let w = world(world_seed);
        let log = QueryLog::ditl(&w, LoadModel::default(), "L");
        let report = Rssac002Report::build(&log, |b| Some((b.0 % sites as u32) as u8));
        prop_assert!((report.totals().queries - log.total_daily()).abs() < 1e-6);
        let share: f64 = (0..sites).map(|s| report.query_share(s)).sum();
        if log.total_daily() > 0.0 {
            prop_assert!((share - 1.0).abs() < 1e-9);
        }
    }
}
