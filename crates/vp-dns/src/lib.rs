//! DNS load substrate: the query logs that calibrate catchments.
//!
//! The paper weights Verfploeter's block-level catchment map with
//! "historical data from [B-Root's] unicast deployment" — a DITL day of
//! query logs — to predict per-site load (§3.2, §5.4). It considers three
//! load notions (queries, good replies, all replies), computes load "over
//! one day ... using hourly bins", and contrasts B-Root's globally spread
//! load with the regionally concentrated load of the `.nl` ccTLD
//! (Fig. 4b).
//!
//! This crate generates the equivalent logs over a synthetic world:
//!
//! * [`QueryLog`] — per-block daily query volumes (the world's heavy-tailed
//!   load weights), modulated by a longitude-aware diurnal curve into
//!   hourly bins, with deterministic per-hour noise; per-block good-reply
//!   and answered-reply fractions model junk queries (most root traffic
//!   since 1992) and response rate limiting.
//! * [`QueryLog::regional`] — a `.nl`-style service whose load concentrates
//!   in one country and its neighbors.
//! * [`QueryLog::with_date`] — day-keyed drift, so an "April" log differs
//!   from a "May" log the way Table 6's two collection dates do.
//! * [`rssac`] — RSSAC-002-style per-site daily reporting, the artifact
//!   §3.2 says every root operator already produces.

pub mod log;
pub mod rssac;

pub use log::{LoadModel, QueryLog};
pub use rssac::{DailyMetrics, Rssac002Report};
