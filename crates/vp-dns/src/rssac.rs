//! RSSAC-002-style daily reporting.
//!
//! §3.2: "all root operators collect this information as part of standard
//! RSSAC-002 performance reporting". This module produces the equivalent
//! daily metrics over a [`QueryLog`] and a per-block site assignment — the
//! artifact an operator would use as the "historical data" input to
//! load-aware catchment calibration.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use vp_net::Block24;

use crate::log::QueryLog;

/// One day of RSSAC-002-style traffic metrics for one site (or the whole
/// service when unaggregated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DailyMetrics {
    /// Queries received (the "traffic-volume" metric).
    pub queries: f64,
    /// Responses sent (RRL suppresses some).
    pub responses: f64,
    /// Responses carrying useful data (non-NXDOMAIN share).
    pub good_responses: f64,
    /// Distinct /24 sources observed.
    pub sources: u64,
}

/// A per-site daily report.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Rssac002Report<K: Ord> {
    pub per_site: BTreeMap<K, DailyMetrics>,
}

impl<K: Ord + Copy> Rssac002Report<K> {
    /// Builds the report by attributing every traffic-sending block's
    /// volume to the site `assign` returns for it (`None` entries are
    /// dropped — blocks whose site is unknown to the reporting pipeline).
    pub fn build(log: &QueryLog, mut assign: impl FnMut(Block24) -> Option<K>) -> Self {
        let mut per_site: BTreeMap<K, DailyMetrics> = BTreeMap::new();
        for (i, b) in log.world().blocks.iter().enumerate() {
            let q = log.daily_by_idx(i);
            if q <= 0.0 {
                continue;
            }
            let Some(site) = assign(b.block) else {
                continue;
            };
            let m = per_site.entry(site).or_default();
            m.queries += q;
            m.responses += q * log.reply_frac(b.block);
            m.good_responses += q * log.good_reply_frac(b.block);
            m.sources += 1;
        }
        Rssac002Report { per_site }
    }

    /// Service-wide totals.
    pub fn totals(&self) -> DailyMetrics {
        let mut t = DailyMetrics::default();
        for m in self.per_site.values() {
            t.queries += m.queries;
            t.responses += m.responses;
            t.good_responses += m.good_responses;
            t.sources += m.sources;
        }
        t
    }

    /// Fraction of queries arriving at `site` (0 if absent).
    pub fn query_share(&self, site: K) -> f64 {
        let total = self.totals().queries;
        if total <= 0.0 {
            return 0.0;
        }
        self.per_site.get(&site).map_or(0.0, |m| m.queries) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LoadModel;
    use vp_topology::{Internet, TopologyConfig};

    fn world() -> Internet {
        Internet::generate(TopologyConfig::tiny(151))
    }

    #[test]
    fn report_partitions_all_traffic() {
        let w = world();
        let log = QueryLog::ditl(&w, LoadModel::default(), "L");
        // Assign blocks to two sites by parity.
        let report = Rssac002Report::build(&log, |b| Some((b.0 % 2) as u8));
        let t = report.totals();
        assert!((t.queries - log.total_daily()).abs() < 1e-6);
        assert!(t.responses < t.queries, "RRL must suppress something");
        assert!(t.good_responses < t.responses);
        let share: f64 = [0u8, 1].iter().map(|s| report.query_share(*s)).sum();
        assert!((share - 1.0).abs() < 1e-9);
        // Sources = traffic-sending blocks.
        let senders = w
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| log.daily_by_idx(*i) > 0.0)
            .count() as u64;
        assert_eq!(t.sources, senders);
    }

    #[test]
    fn unknown_blocks_are_dropped() {
        let w = world();
        let log = QueryLog::ditl(&w, LoadModel::default(), "L");
        let all = Rssac002Report::build(&log, |_| Some(0u8));
        let none = Rssac002Report::build(&log, |_| Option::<u8>::None);
        assert!(all.totals().queries > 0.0);
        assert_eq!(none.totals().queries, 0.0);
        assert_eq!(none.query_share(0), 0.0);
    }

    #[test]
    fn per_site_shares_reflect_assignment() {
        let w = world();
        let log = QueryLog::ditl(&w, LoadModel::default(), "L");
        // Everything to site 7.
        let report = Rssac002Report::build(&log, |_| Some(7u8));
        assert!((report.query_share(7) - 1.0).abs() < 1e-12);
        assert_eq!(report.query_share(3), 0.0);
        assert_eq!(report.per_site.len(), 1);
    }
}
