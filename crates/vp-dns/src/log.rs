//! Query-log generation.

use serde::{Deserialize, Serialize};
use vp_geo::Continent;
use vp_net::Block24;
use vp_topology::Internet;

/// Parameters of the load model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadModel {
    /// Seed for all deterministic noise.
    pub seed: u64,
    /// Amplitude of the diurnal curve (0 = flat, 1 = full swing).
    pub diurnal_amplitude: f64,
    /// Mean fraction of queries that get a "good" (non-NXDOMAIN) reply.
    /// Root traffic is dominated by junk queries, "first observed in 1992
    /// and still true today" (§3.2).
    pub good_reply_frac_mean: f64,
    /// Fraction of replies suppressed by response rate limiting.
    pub rrl_drop_frac: f64,
    /// Relative noise applied per (block, hour).
    pub hourly_noise: f64,
    /// Fraction of the world's traffic-sending blocks this particular
    /// service hears from (1.0 = all of them). Which blocks send queries
    /// at all is a world property (`BlockInfo::sends_queries`): most hosts
    /// reach the DNS root through their ISP's recursive resolver in
    /// another block.
    pub participation: f64,
}

impl Default for LoadModel {
    fn default() -> Self {
        LoadModel {
            seed: 0xd17,
            diurnal_amplitude: 0.45,
            good_reply_frac_mean: 0.35,
            rrl_drop_frac: 0.05,
            hourly_noise: 0.10,
            participation: 1.0,
        }
    }
}

/// A day of per-block query volumes for one service.
///
/// Indexed by the world's block index; hourly rates are computed on demand
/// from the daily weight, the block's longitude (diurnal phase) and
/// deterministic noise, so a log over a million blocks is cheap to hold.
#[derive(Debug, Clone)]
pub struct QueryLog<'w> {
    world: &'w Internet,
    model: LoadModel,
    /// Daily queries per block (parallel to `world.blocks`).
    daily: Vec<f64>,
    /// Dataset tag, e.g. "LB-5-15".
    pub name: String,
}

impl<'w> QueryLog<'w> {
    /// The DITL-style log of a root-like service: every block contributes
    /// its world load weight.
    pub fn ditl(world: &'w Internet, model: LoadModel, name: &str) -> QueryLog<'w> {
        let daily = world
            .blocks
            .iter()
            .map(|b| {
                if b.sends_queries
                    && unit(mix(model.seed ^ 0x9a67, b.block.0 as u64)) < model.participation
                {
                    b.daily_queries
                } else {
                    0.0
                }
            })
            .collect();
        QueryLog {
            world,
            model,
            daily,
            name: name.to_owned(),
        }
    }

    /// A regionally skewed service log (the `.nl` analog): blocks in
    /// `home_country` keep full weight, the rest of its continent is
    /// down-weighted, other continents heavily down-weighted.
    ///
    /// # Panics
    /// Panics if `home_country_code` is not in the static country table.
    pub fn regional(
        world: &'w Internet,
        model: LoadModel,
        name: &str,
        home_country_code: &str,
    ) -> QueryLog<'w> {
        let (home, home_info) =
            // vp-lint: allow(h2): documented contract - callers pass codes from the static table.
            vp_geo::world::country_by_code(home_country_code).expect("known country code");
        let home_continent = home_info.continent;
        let daily = world
            .blocks
            .iter()
            .map(|b| {
                let weight = match world.geodb.locate(b.block) {
                    Some(loc) if loc.country == home => 1.0,
                    Some(loc) => {
                        let c = loc.country.get().continent;
                        if c == home_continent {
                            0.12
                        } else if c == Continent::NorthAmerica {
                            0.05
                        } else {
                            0.01
                        }
                    }
                    None => 0.01,
                };
                if b.sends_queries
                    && unit(mix(model.seed ^ 0x9a67, b.block.0 as u64)) < model.participation
                {
                    b.daily_queries * weight
                } else {
                    0.0
                }
            })
            .collect();
        QueryLog {
            world,
            model,
            daily,
            name: name.to_owned(),
        }
    }

    /// A drifted copy of this log for a different collection date: each
    /// block's volume is scaled by date-keyed noise (±~30%), modelling the
    /// April → May load shift behind Table 6's long-duration prediction
    /// error.
    pub fn with_date(&self, date_seed: u64, name: &str) -> QueryLog<'w> {
        let daily = self
            .world
            .blocks
            .iter()
            .zip(&self.daily)
            .map(|(b, &d)| {
                let u = unit(mix(date_seed, b.block.0 as u64));
                d * (0.7 + 0.6 * u)
            })
            .collect();
        QueryLog {
            world: self.world,
            model: self.model.clone(),
            daily,
            name: name.to_owned(),
        }
    }

    /// The world this log covers.
    pub fn world(&self) -> &'w Internet {
        self.world
    }

    /// Daily queries from the `i`-th block of the world.
    // vp-lint: allow(g1): index-by-contract accessor — documented to require i < world.blocks.len(), mirroring slice indexing.
    pub fn daily_by_idx(&self, i: usize) -> f64 {
        self.daily[i]
    }

    /// Daily queries from a block (0 for unpopulated blocks).
    pub fn daily(&self, block: Block24) -> f64 {
        self.world
            .block_idx(block)
            .map_or(0.0, |i| self.daily[i as usize]) // vp-lint: allow(g1): block_idx returns positions in blocks, and daily is sized to blocks.
    }

    /// Queries from block `i` during UTC hour `hour` (0..24).
    ///
    /// The diurnal curve peaks at 20:00 local time (evening usage), with
    /// local time derived from the block's longitude; deterministic noise
    /// is added per (block, hour). The curve averages to 1 over the day, so
    /// hourly values sum to ≈ the daily volume.
    // vp-lint: allow(g1): index-by-contract accessor — documented to require i < world.blocks.len(), mirroring slice indexing.
    pub fn hourly_by_idx(&self, i: usize, hour: u32) -> f64 {
        assert!(hour < 24, "hour {hour} out of range");
        let b = &self.world.blocks[i];
        let lon = self
            .world
            .geodb
            .locate(b.block)
            .map_or(0.0, |loc| loc.lon);
        let local = (hour as f64 + lon / 15.0).rem_euclid(24.0);
        let phase = (local - 20.0) / 24.0 * std::f64::consts::TAU;
        let diurnal = 1.0 + self.model.diurnal_amplitude * phase.cos();
        let noise = 1.0
            + self.model.hourly_noise
                * (2.0 * unit(mix(self.model.seed ^ 0x40d, (b.block.0 as u64) << 5 | hour as u64))
                    - 1.0);
        (self.daily[i] / 24.0) * diurnal * noise
    }

    /// Total queries over the day.
    pub fn total_daily(&self) -> f64 {
        self.daily.iter().sum()
    }

    /// Average queries per second over the day.
    pub fn queries_per_sec(&self) -> f64 {
        self.total_daily() / 86_400.0
    }

    /// Total queries per UTC hour.
    pub fn hourly_totals(&self) -> [f64; 24] {
        let mut out = [0.0; 24];
        for (h, slot) in out.iter_mut().enumerate() {
            for i in 0..self.daily.len() {
                *slot += self.hourly_by_idx(i, h as u32);
            }
        }
        out
    }

    /// Fraction of this block's queries that receive a good reply.
    pub fn good_reply_frac(&self, block: Block24) -> f64 {
        let m = self.model.good_reply_frac_mean;
        let jitter = 0.5 * m * (2.0 * unit(mix(self.model.seed ^ 0x60d, block.0 as u64)) - 1.0);
        (m + jitter).clamp(0.0, 1.0)
    }

    /// Fraction of this block's queries that receive any reply (RRL may
    /// suppress some).
    pub fn reply_frac(&self, _block: Block24) -> f64 {
        1.0 - self.model.rrl_drop_frac
    }

    /// Daily good replies across the whole log.
    pub fn total_good_replies(&self) -> f64 {
        self.world
            .blocks
            .iter()
            .zip(&self.daily)
            .map(|(b, d)| d * self.good_reply_frac(b.block))
            .sum()
    }

    /// Daily replies of any kind across the whole log.
    pub fn total_replies(&self) -> f64 {
        self.world
            .blocks
            .iter()
            .zip(&self.daily)
            .map(|(b, d)| d * self.reply_frac(b.block))
            .sum()
    }
}

fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_topology::TopologyConfig;

    fn world() -> Internet {
        Internet::generate(TopologyConfig::tiny(23))
    }

    #[test]
    fn ditl_weights_come_from_participating_blocks() {
        let w = world();
        let model = LoadModel::default();
        let log = QueryLog::ditl(&w, model.clone(), "LB-TEST");
        // Exactly the world's traffic-sending blocks contribute (the model's
        // participation factor defaults to 1.0 = all of them).
        for (i, b) in w.blocks.iter().enumerate() {
            let d = log.daily_by_idx(i);
            if b.sends_queries {
                assert!((d - b.daily_queries).abs() < 1e-9);
            } else {
                assert_eq!(d, 0.0);
            }
        }
        let active = w.blocks.iter().filter(|b| b.sends_queries).count();
        let frac = active as f64 / w.blocks.len() as f64;
        assert!(
            (frac - w.config.participation).abs() < 0.05,
            "participation {frac:.3}"
        );
        assert!(log.total_daily() > 0.0);
        assert!(log.total_daily() < w.total_daily_queries());
        assert!(log.queries_per_sec() > 0.0);
        assert_eq!(log.name, "LB-TEST");
    }

    #[test]
    fn hourly_sums_to_daily_within_noise() {
        let w = world();
        let log = QueryLog::ditl(&w, LoadModel::default(), "x");
        for i in (0..w.blocks.len()).step_by(97) {
            let day: f64 = (0..24).map(|h| log.hourly_by_idx(i, h)).sum();
            let expect = log.daily_by_idx(i);
            if expect > 0.0 {
                let rel = (day - expect).abs() / expect;
                assert!(rel < 0.12, "block {i}: hourly sum off by {rel:.3}");
            }
        }
    }

    #[test]
    fn diurnal_curve_varies_by_hour() {
        let w = world();
        let model = LoadModel {
            hourly_noise: 0.0,
            ..LoadModel::default()
        };
        let log = QueryLog::ditl(&w, model, "x");
        let i = (0..w.blocks.len())
            .find(|&i| log.daily_by_idx(i) > 0.0)
            .unwrap();
        let rates: Vec<f64> = (0..24).map(|h| log.hourly_by_idx(i, h)).collect();
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 1.5, "diurnal swing too flat: {min}..{max}");
    }

    #[test]
    fn regional_concentrates_at_home() {
        let w = world();
        let model = LoadModel::default();
        let nl = QueryLog::regional(&w, model.clone(), "LN-TEST", "NL");
        let global = QueryLog::ditl(&w, model, "LB-TEST");
        // Home-country share must be much larger in the regional log.
        let share = |log: &QueryLog, code: &str| {
            let (cid, _) = vp_geo::world::country_by_code(code).unwrap();
            let mut home = 0.0;
            let mut total = 0.0;
            for (i, b) in w.blocks.iter().enumerate() {
                let d = log.daily_by_idx(i);
                total += d;
                if w.geodb.locate(b.block).map(|l| l.country) == Some(cid) {
                    home += d;
                }
            }
            home / total
        };
        let nl_share_regional = share(&nl, "NL");
        let nl_share_global = share(&global, "NL");
        assert!(
            nl_share_regional > 3.0 * nl_share_global,
            "regional {nl_share_regional:.3} vs global {nl_share_global:.3}"
        );
    }

    #[test]
    fn date_drift_changes_volumes_but_not_wildly() {
        let w = world();
        let log = QueryLog::ditl(&w, LoadModel::default(), "april");
        let may = log.with_date(0x0515, "may");
        let (a, b) = (log.total_daily(), may.total_daily());
        assert!(a != b);
        assert!((a - b).abs() / a < 0.25, "drift too large: {a} -> {b}");
        // Per-block drift exists on participating blocks; zeros stay zero.
        let active: Vec<usize> = (0..w.blocks.len())
            .filter(|&i| log.daily_by_idx(i) > 0.0)
            .collect();
        let changed = active
            .iter()
            .filter(|&&i| (log.daily_by_idx(i) - may.daily_by_idx(i)).abs() > 1e-12)
            .count();
        assert!(changed > active.len() / 2);
        for i in 0..w.blocks.len() {
            if log.daily_by_idx(i) == 0.0 {
                assert_eq!(may.daily_by_idx(i), 0.0);
            }
        }
    }

    #[test]
    fn reply_classes_are_fractions_of_queries() {
        let w = world();
        let log = QueryLog::ditl(&w, LoadModel::default(), "x");
        let q = log.total_daily();
        let good = log.total_good_replies();
        let all = log.total_replies();
        assert!(good < all && all < q, "expected good < all < queries; {good} {all} {q}");
        for b in w.blocks.iter().take(50) {
            let g = log.good_reply_frac(b.block);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hour_out_of_range_panics() {
        let w = world();
        let log = QueryLog::ditl(&w, LoadModel::default(), "x");
        log.hourly_by_idx(0, 24);
    }
}
