//! The rule set.
//!
//! | id  | rule |
//! |-----|------|
//! | d1  | no `HashMap`/`HashSet` in non-test code — ambient hash order must never feed catchment maps, serialized results or reports |
//! | d2  | no ambient nondeterminism (`thread_rng`, `SystemTime::now`, `Instant::now`, `std::env`) outside `vp-bench` |
//! | d3  | every `pub fn merge` needs a merge-algebra test (a `vp-lint: merge-tested(Type::merge[, suite=<file-stem>])` marker or a matching test name; in marker-strict crates — `vp-monitor` — only an exact marker counts; a `suite=` claim must name a scanned file) |
//! | d4  | wall-time `Clock` impls belong in binaries or `vp-bench`: a library file that implements the `Clock` trait must not read `Instant`/`SystemTime` |
//! | h1  | no narrowing `as` casts in the hot crates (`vp-sim`, `verfploeter`, `vp-hitlist`) |
//! | h2  | no `unwrap()`/`expect()` in library (non-test, non-bin) code |
//! | c5  | `std::thread::spawn`/`thread::scope` only inside the blessed executor module (`crates/vp-sim/src/exec.rs`) — every other thread must go through `ShardExecutor` |
//! | o1  | span/event names passed to `.span(`/`.event(`/`.record_span(`/`.record_interval(` must be string literals — dynamic names create unbounded metric cardinality and nondeterministic reports (applies in binaries too) |
//! | directive | malformed `vp-lint:` directive (never suppressible) |
//!
//! c1–c4 (the rest of the concurrency-safety layer) are interprocedural
//! and live in [`crate::crules`]; c5 is token-level, like d4, because
//! "who spawns" is a per-file fact that needs no graph. p1–p5 (the
//! hot-path cost rules) are interprocedural too and live in
//! [`crate::prules`]: they police the *hot region* — everything
//! reachable from the scan inner loops — for per-probe heap allocation
//! (p1), per-probe map lookups (p2), loop-invariant recomputation (p3),
//! dynamic dispatch (p4) and per-probe error/string construction (p5).
//!
//! Matching happens on masked tokens (see [`crate::lexer`]), so literals
//! and comments can never trigger a rule. Test scope — files under
//! `tests/`, `benches/` or `examples/`, and `#[cfg(test)]` blocks — is
//! exempt from every rule except `directive`.

use crate::directives::{self, Directives};
use crate::lexer::{self, Token};

/// Stable identifier of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    D1,
    D2,
    D3,
    D4,
    H1,
    H2,
    G1,
    G2,
    G3,
    C1,
    C2,
    C3,
    C4,
    C5,
    O1,
    P1,
    P2,
    P3,
    P4,
    P5,
    Directive,
}

impl RuleId {
    /// Every rule the analyzer runs, in report order. The length of this
    /// table is what `vp-lint bench --budget-per-rule-ms` scales by, so a
    /// new rule automatically widens the CI budget instead of silently
    /// eating the old one.
    pub const ALL: [RuleId; 21] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::H1,
        RuleId::H2,
        RuleId::G1,
        RuleId::G2,
        RuleId::G3,
        RuleId::C1,
        RuleId::C2,
        RuleId::C3,
        RuleId::C4,
        RuleId::C5,
        RuleId::O1,
        RuleId::P1,
        RuleId::P2,
        RuleId::P3,
        RuleId::P4,
        RuleId::P5,
        RuleId::Directive,
    ];

    pub fn name(self) -> &'static str {
        match self {
            RuleId::D1 => "d1",
            RuleId::D2 => "d2",
            RuleId::D3 => "d3",
            RuleId::D4 => "d4",
            RuleId::H1 => "h1",
            RuleId::H2 => "h2",
            RuleId::G1 => "g1",
            RuleId::G2 => "g2",
            RuleId::G3 => "g3",
            RuleId::C1 => "c1",
            RuleId::C2 => "c2",
            RuleId::C3 => "c3",
            RuleId::C4 => "c4",
            RuleId::C5 => "c5",
            RuleId::O1 => "o1",
            RuleId::P1 => "p1",
            RuleId::P2 => "p2",
            RuleId::P3 => "p3",
            RuleId::P4 => "p4",
            RuleId::P5 => "p5",
            RuleId::Directive => "directive",
        }
    }

    pub fn from_name(s: &str) -> Option<RuleId> {
        match s {
            "d1" => Some(RuleId::D1),
            "d2" => Some(RuleId::D2),
            "d3" => Some(RuleId::D3),
            "d4" => Some(RuleId::D4),
            "h1" => Some(RuleId::H1),
            "h2" => Some(RuleId::H2),
            "g1" => Some(RuleId::G1),
            "g2" => Some(RuleId::G2),
            "g3" => Some(RuleId::G3),
            "c1" => Some(RuleId::C1),
            "c2" => Some(RuleId::C2),
            "c3" => Some(RuleId::C3),
            "c4" => Some(RuleId::C4),
            "c5" => Some(RuleId::C5),
            "o1" => Some(RuleId::O1),
            "p1" => Some(RuleId::P1),
            "p2" => Some(RuleId::P2),
            "p3" => Some(RuleId::P3),
            "p4" => Some(RuleId::P4),
            "p5" => Some(RuleId::P5),
            "directive" => Some(RuleId::Directive),
            _ => None,
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based.
    pub line: usize,
    /// 1-based (chars).
    pub col: usize,
    pub rule: RuleId,
    pub message: String,
    /// For graph rules (g1/g2): the call chain from the public entry
    /// point down to the sink/source token. Empty for token rules.
    pub witness: Vec<String>,
}

/// Where a file sits in the workspace; decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// `crates/<name>/...` → `<name>`; the root package otherwise.
    pub crate_name: String,
    /// Under `tests/`, `benches/` or `examples/`.
    pub is_test: bool,
    /// `src/main.rs`, under `src/bin/`, or a build script.
    pub is_bin: bool,
}

impl FileContext {
    /// Derives the context from a workspace-relative path.
    pub fn from_rel_path(rel_path: &str) -> FileContext {
        let components: Vec<&str> = rel_path.split('/').collect();
        let crate_name = if components.len() > 2 && components[0] == "crates" {
            components[1].to_string()
        } else {
            String::new()
        };
        let is_test = components
            .iter()
            .any(|c| matches!(*c, "tests" | "benches" | "examples"));
        let file_name = components.last().copied().unwrap_or("");
        let is_bin = components.iter().any(|c| *c == "bin")
            || file_name == "main.rs"
            || file_name == "build.rs";
        FileContext {
            rel_path: rel_path.to_string(),
            crate_name,
            is_test,
            is_bin,
        }
    }
}

/// The one file allowed to spawn OS threads (rule c5) and the anchor of
/// the parallel-region computation (rules c1–c4 in [`crate::crules`]):
/// any fn with a call edge into this file is treated as handing closures
/// to the executor. The same path works for the seeded fixture workspace,
/// whose fake executor lives at the same relative location.
pub const BLESSED_EXECUTOR_FILE: &str = "crates/vp-sim/src/exec.rs";

/// Crates whose narrowing casts H1 polices.
const HOT_CRATES: [&str; 3] = ["vp-sim", "verfploeter", "vp-hitlist"];
/// Crates exempt from D2 (benchmarks measure wall-clock by design).
const D2_EXEMPT_CRATES: [&str; 1] = ["vp-bench"];
/// Crates exempt from D4 (same reasoning: vp-bench times real work).
const D4_EXEMPT_CRATES: [&str; 1] = ["vp-bench"];
/// Crates where D3 accepts only an explicit `merge-tested(Type::merge)`
/// marker — a test that merely *names* the type is not proof it exercises
/// the algebra. vp-monitor's `DriftSummary` merge feeds alerting, where a
/// silently wrong fold means a silently wrong page.
const D3_MARKER_REQUIRED_CRATES: [&str; 1] = ["vp-monitor"];
/// Narrow numeric cast targets (anything that can drop bits from the u64 /
/// usize / f64 values this codebase computes with). `u64`/`u128`/`i64`/
/// `i128`/`f64` targets are widening at our value ranges and exempt.
const NARROW_TYPES: [&str; 9] = [
    "u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize", "f32",
];
const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "hash_map", "hash_set"];
/// Observability methods whose first argument names a span/event series
/// (rule o1). A literal name keeps metric cardinality bounded and report
/// ordering deterministic; a computed name does neither.
const O1_NAME_METHODS: [&str; 4] = ["span", "event", "record_span", "record_interval"];

/// A `pub fn merge` definition found in library code.
#[derive(Debug, Clone)]
pub struct MergeDef {
    /// `Type::merge`, or bare `merge` outside an `impl`.
    pub qualified: String,
    /// The `impl` type, lowercased with no underscores (for test-name
    /// matching); empty outside an `impl`.
    pub type_key: String,
    pub file: String,
    pub line: usize,
    pub col: usize,
    /// Whether an `allow(d3)` covers the definition line.
    pub suppressed: bool,
    /// Crate is marker-strict: only an exact `merge-tested(Type::merge)`
    /// marker satisfies D3, not a matching test name or a bare `merge`
    /// wildcard.
    pub marker_required: bool,
}

/// Everything one file contributes to the workspace scan.
#[derive(Debug, Clone, Default)]
pub struct FileScan {
    pub findings: Vec<Finding>,
    pub merge_defs: Vec<MergeDef>,
    /// `merge-tested(...)` markers.
    pub merge_markers: Vec<directives::MergeMarker>,
    /// Names of `fn`s in test scope, lowercased with underscores removed.
    pub test_fn_keys: Vec<String>,
    /// `(applies-to line, rule)` pairs for allow directives that actually
    /// suppressed a token-rule finding here — feeds rule g3.
    pub used_allows: Vec<(usize, RuleId)>,
}

/// Per-token scope annotations computed in one pass.
struct Annotations {
    /// Token is inside a `#[cfg(test)]` block.
    in_test: Vec<bool>,
    /// Enclosing `impl` type name per token (innermost), if any.
    impl_type: Vec<Option<String>>,
}

fn annotate(tokens: &[Token]) -> Annotations {
    let mut in_test = vec![false; tokens.len()];
    let mut impl_type: Vec<Option<String>> = vec![None; tokens.len()];

    let mut depth = 0usize;
    let mut test_stack: Vec<usize> = Vec::new();
    let mut impl_stack: Vec<(usize, Option<String>)> = Vec::new();

    // `#[cfg(test)]`-ish attribute seen; latches onto the next `{` unless a
    // `;` ends the attributed item first.
    let mut pending_test = false;
    // Collecting the header of an `impl` (between `impl` and `{`).
    let mut impl_capture: Option<(usize, Vec<String>)> = None; // (angle_depth, idents)
    let mut pending_impl: Option<String> = None;

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        in_test[i] = !test_stack.is_empty();
        impl_type[i] = impl_stack.iter().rev().find_map(|(_, n)| n.clone());

        // Attributes: consume `#[ ... ]` wholesale and classify.
        if t.is_punct('#') && tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            let mut j = i + 2;
            let mut bracket = 1usize;
            let mut idents: Vec<&str> = Vec::new();
            while j < tokens.len() && bracket > 0 {
                match &tokens[j].tok {
                    lexer::Tok::Punct('[') => bracket += 1,
                    lexer::Tok::Punct(']') => bracket -= 1,
                    lexer::Tok::Ident(s) => idents.push(s),
                    _ => {}
                }
                in_test[j] = !test_stack.is_empty();
                impl_type[j] = impl_type[i].clone();
                j += 1;
            }
            let is_cfg_test = idents.first().is_some_and(|f| *f == "cfg" || *f == "cfg_attr")
                && idents.iter().any(|s| *s == "test");
            if is_cfg_test {
                pending_test = true;
            }
            i = j;
            continue;
        }

        match &t.tok {
            lexer::Tok::Ident(s) if s == "impl" && impl_capture.is_none() => {
                impl_capture = Some((0, Vec::new()));
            }
            lexer::Tok::Ident(s) => {
                if let Some((angle, idents)) = impl_capture.as_mut() {
                    if *angle == 0 {
                        if s == "for" {
                            idents.clear();
                        } else if s == "where" {
                            // Header name is settled; ignore the rest.
                        } else {
                            idents.push(s.clone());
                        }
                    }
                }
            }
            lexer::Tok::Punct('<') => {
                if let Some((angle, _)) = impl_capture.as_mut() {
                    *angle += 1;
                }
            }
            lexer::Tok::Punct('>') => {
                if let Some((angle, _)) = impl_capture.as_mut() {
                    *angle = angle.saturating_sub(1);
                }
            }
            lexer::Tok::Punct(';') => {
                // An attributed item without a body (`#[cfg(test)] use ...;`)
                // must not latch the test flag onto an unrelated later block.
                if pending_test && impl_capture.is_none() {
                    pending_test = false;
                }
            }
            lexer::Tok::Punct('{') => {
                if let Some((_, idents)) = impl_capture.take() {
                    pending_impl = Some(idents.last().cloned().unwrap_or_default());
                }
                if let Some(name) = pending_impl.take() {
                    let name = if name.is_empty() { None } else { Some(name) };
                    impl_stack.push((depth, name));
                }
                if pending_test {
                    test_stack.push(depth);
                    pending_test = false;
                }
                depth += 1;
            }
            lexer::Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                while impl_stack.last().is_some_and(|(d, _)| *d == depth) {
                    impl_stack.pop();
                }
                while test_stack.last().is_some_and(|d| *d == depth) {
                    test_stack.pop();
                }
            }
            _ => {}
        }
        i += 1;
    }

    Annotations { in_test, impl_type }
}

/// Lowercases and strips underscores (for loose test-name matching).
fn name_key(s: &str) -> String {
    s.chars()
        .filter(|c| *c != '_')
        .flat_map(char::to_lowercase)
        .collect()
}

/// Scans one file from source text. Cross-file conclusions (rules D3 and
/// g1–g3) are drawn later by [`crate::workspace::scan_files`].
pub fn scan_file(ctx: &FileContext, source: &str) -> FileScan {
    let masked = lexer::mask(source);
    let tokens = lexer::tokenize(&masked);
    let dirs = directives::parse(&masked.comments);
    scan_tokens(ctx, &tokens, &dirs)
}

/// Token-level scan over an already-lexed file (the workspace driver
/// lexes once and shares the tokens with the graph indexer).
pub fn scan_tokens(ctx: &FileContext, tokens: &[Token], dirs: &Directives) -> FileScan {
    let ann = annotate(tokens);

    let mut out = FileScan {
        merge_markers: dirs.merge_markers.clone(),
        ..FileScan::default()
    };

    let hot = HOT_CRATES.contains(&ctx.crate_name.as_str());
    let d2_exempt = D2_EXEMPT_CRATES.contains(&ctx.crate_name.as_str());
    let d4_exempt =
        D4_EXEMPT_CRATES.contains(&ctx.crate_name.as_str()) || ctx.is_bin || ctx.is_test;
    let d3_marker_required = D3_MARKER_REQUIRED_CRATES.contains(&ctx.crate_name.as_str());
    // d4 bookkeeping: wall-time reads and `impl ... Clock for ...` headers
    // are collected during the token walk and resolved after it.
    let mut wall_time_sites: Vec<(usize, usize)> = Vec::new();
    let mut implements_clock = false;

    let push = |dirs: &Directives, out: &mut FileScan, rule, line, col, message: String| {
        if dirs.allows_on(rule, line) {
            out.used_allows.push((line, rule));
        } else {
            out.findings.push(Finding {
                file: ctx.rel_path.clone(),
                line,
                col,
                rule,
                message,
                witness: Vec::new(),
            });
        }
    };

    for (i, t) in tokens.iter().enumerate() {
        let in_test = ctx.is_test || ann.in_test[i];

        // Collect test fn names (for D3 name matching).
        if in_test
            && t.ident() == Some("fn")
        {
            if let Some(name) = tokens.get(i + 1).and_then(Token::ident) {
                out.test_fn_keys.push(name_key(name));
            }
        }
        if in_test {
            continue;
        }

        // d1 — hash collections.
        if let Some(id) = t.ident() {
            if HASH_TYPES.contains(&id) {
                push(
                    dirs,
                    &mut out,
                    RuleId::D1,
                    t.line,
                    t.col,
                    format!(
                        "{id} has nondeterministic iteration order; use BTreeMap/BTreeSet \
                         (or sort before anything order-sensitive)"
                    ),
                );
            }
        }

        // d2 — ambient nondeterminism.
        if !d2_exempt {
            if t.ident() == Some("thread_rng") {
                push(
                    dirs,
                    &mut out,
                    RuleId::D2,
                    t.line,
                    t.col,
                    "thread_rng is ambient entropy; draw from a seeded, keyed RNG".into(),
                );
            }
            let path2 = |a: &str, b: &str| {
                t.ident() == Some(a)
                    && tokens.get(i + 1).is_some_and(|x| x.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|x| x.is_punct(':'))
                    && tokens.get(i + 3).and_then(Token::ident) == Some(b)
            };
            if path2("SystemTime", "now") || path2("Instant", "now") {
                push(
                    dirs,
                    &mut out,
                    RuleId::D2,
                    t.line,
                    t.col,
                    "wall-clock reads are nondeterministic; use SimTime or pass time in".into(),
                );
            }
            if path2("std", "env") {
                push(
                    dirs,
                    &mut out,
                    RuleId::D2,
                    t.line,
                    t.col,
                    "std::env makes behaviour depend on ambient process state".into(),
                );
            }
        }

        // d4 — collect wall-time sources and Clock-impl headers.
        if !d4_exempt {
            if matches!(t.ident(), Some("Instant") | Some("SystemTime")) {
                wall_time_sites.push((t.line, t.col));
            }
            if t.ident() == Some("impl") {
                // Walk the impl header (up to `{` or `;`): a trait path
                // ending in `Clock` right before `for` marks a Clock impl.
                let mut last_ident: Option<&str> = None;
                let mut j = i + 1;
                while let Some(n) = tokens.get(j) {
                    if n.is_punct('{') || n.is_punct(';') {
                        break;
                    }
                    if let Some(id) = n.ident() {
                        if id == "for" {
                            if last_ident == Some("Clock") {
                                implements_clock = true;
                            }
                            break;
                        }
                        last_ident = Some(id);
                    }
                    j += 1;
                }
            }
        }

        // d3 — record pub fn merge definitions.
        if t.ident() == Some("pub")
            && tokens.get(i + 1).and_then(Token::ident) == Some("fn")
            && tokens.get(i + 2).and_then(Token::ident) == Some("merge")
        {
            let def_tok = &tokens[i + 2];
            let (qualified, type_key) = match &ann.impl_type[i] {
                Some(ty) => (format!("{ty}::merge"), name_key(ty)),
                None => ("merge".to_string(), String::new()),
            };
            out.merge_defs.push(MergeDef {
                qualified,
                type_key,
                file: ctx.rel_path.clone(),
                line: def_tok.line,
                col: def_tok.col,
                suppressed: dirs.allows_on(RuleId::D3, def_tok.line),
                marker_required: d3_marker_required,
            });
        }

        // h1 — narrowing casts in hot crates.
        if hot
            && t.ident() == Some("as")
        {
            if let Some(ty) = tokens.get(i + 1).and_then(Token::ident) {
                if NARROW_TYPES.contains(&ty) {
                    push(
                        dirs,
                        &mut out,
                        RuleId::H1,
                        t.line,
                        t.col,
                        format!(
                            "narrowing `as {ty}` can truncate silently; use From/try_from \
                             or a saturating conversion"
                        ),
                    );
                }
            }
        }

        // c5 — OS threads outside the blessed executor module. Detection
        // is the `thread :: spawn` / `thread :: scope` path shape, which
        // catches `std::thread::spawn`, `thread::scope` and any aliased
        // `use std::thread` — but not a renamed module import, which is
        // what code review is for.
        if !ctx.is_bin
            && ctx.rel_path != BLESSED_EXECUTOR_FILE
            && matches!(t.ident(), Some("spawn") | Some("scope"))
            && i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].ident() == Some("thread")
        {
            push(
                dirs,
                &mut out,
                RuleId::C5,
                t.line,
                t.col,
                format!(
                    "thread::{} outside the blessed executor module: spawn work \
                     through vp_sim::exec::ShardExecutor ({BLESSED_EXECUTOR_FILE}) \
                     so the shard-id-ordered merge discipline holds",
                    t.ident().unwrap_or_default(),
                ),
            );
        }

        // o1 — span/event names must be string literals. The lexer blanks
        // string literals before tokenizing, so a literal first argument
        // leaves `,` (or `)` for a single-argument call) directly after the
        // opening paren; any surviving token there is a computed name.
        // Unlike h2 this applies in binaries too: a bin's dynamic span
        // names flow into the same artifacts and reports.
        if t.is_punct('.')
            && tokens.get(i + 2).is_some_and(|x| x.is_punct('('))
        {
            if let Some(m) = tokens.get(i + 1).and_then(Token::ident) {
                if O1_NAME_METHODS.contains(&m)
                    && !tokens
                        .get(i + 3)
                        .map_or(true, |x| x.is_punct(',') || x.is_punct(')'))
                {
                    let mt = &tokens[i + 1];
                    push(
                        dirs,
                        &mut out,
                        RuleId::O1,
                        mt.line,
                        mt.col,
                        format!(
                            "{m}() name must be a string literal: dynamic span/event \
                             names create unbounded cardinality and nondeterministic \
                             reports"
                        ),
                    );
                }
            }
        }

        // h2 — unwrap/expect in library code.
        if !ctx.is_bin
            && t.is_punct('.')
            && tokens.get(i + 2).is_some_and(|x| x.is_punct('('))
        {
            if let Some(m) = tokens.get(i + 1).and_then(Token::ident) {
                if m == "unwrap" || m == "expect" {
                    let mt = &tokens[i + 1];
                    push(
                        dirs,
                        &mut out,
                        RuleId::H2,
                        mt.line,
                        mt.col,
                        format!("{m}() in library code can panic; propagate the error or \
                                 handle the None/Err case"),
                    );
                }
            }
        }
    }

    // d4 — a library file that implements `Clock` must not read wall time:
    // wall-backed clocks belong in binaries or vp-bench, so that every
    // clock a library can be handed is an injected, deterministic one.
    if implements_clock {
        for (line, col) in wall_time_sites {
            push(
                dirs,
                &mut out,
                RuleId::D4,
                line,
                col,
                "wall-time source in a file that implements Clock: wall-backed clocks \
                 belong in binaries or vp-bench; library code takes injected sim clocks"
                    .into(),
            );
        }
    }

    // Malformed directives are findings everywhere and cannot be allowed.
    for (line, why) in &dirs.malformed {
        out.findings.push(Finding {
            file: ctx.rel_path.clone(),
            line: *line,
            col: 1,
            rule: RuleId::Directive,
            message: why.clone(),
            witness: Vec::new(),
        });
    }

    out
}

/// A `merge-tested(...)` marker plus the file it was written in, for
/// cross-file D3 resolution (and for anchoring suite-claim findings).
#[derive(Debug, Clone)]
pub struct MarkerSite {
    /// Workspace-relative path of the file carrying the marker.
    pub file: String,
    pub marker: directives::MergeMarker,
}

/// Resolves rule D3 across files: every unsuppressed `pub fn merge` must be
/// named by a `merge-tested(...)` marker or covered by a test fn whose
/// name mentions both the type and "merge". In marker-strict crates
/// (`D3_MARKER_REQUIRED_CRATES`) only an exact `merge-tested(Type::merge)`
/// marker counts.
///
/// A marker may claim a proving suite with `suite=<file-stem>`; the claim
/// is verified against `scanned_files` (the workspace file set). A marker
/// whose suite does not exist is reported (unsuppressibly, like a malformed
/// directive) and does **not** discharge any obligation — deleting or
/// renaming the suite re-fires D3 at every merge that relied on it.
///
/// Also returns the `(file, line)` of every *suppressed* definition that
/// would have failed — those are the lines where an `allow(d3)` is doing
/// real work, which rule g3 needs to know.
pub fn resolve_merge_rule(
    defs: &[MergeDef],
    markers: &[MarkerSite],
    test_fn_keys: &[String],
    scanned_files: &[String],
) -> (Vec<Finding>, Vec<(String, usize)>) {
    let mut findings = Vec::new();
    let mut used: Vec<(String, usize)> = Vec::new();

    // Verify suite claims first; only markers with an honest (or absent)
    // claim participate in matching.
    let mut valid: Vec<&str> = Vec::new();
    for site in markers {
        match &site.marker.suite {
            Some(stem) => {
                let target = format!("{stem}.rs");
                let exists = scanned_files.iter().any(|f| {
                    f == &target || f.ends_with(&format!("/{target}"))
                });
                if exists {
                    valid.push(&site.marker.name);
                } else {
                    findings.push(Finding {
                        file: site.file.clone(),
                        line: site.marker.line,
                        col: 1,
                        rule: RuleId::Directive,
                        message: format!(
                            "merge-tested({}, suite={stem}) names a suite that does not \
                             exist: no scanned file is `{target}` — fix the stem or \
                             restore the suite",
                            site.marker.name
                        ),
                        witness: Vec::new(),
                    });
                }
            }
            None => valid.push(&site.marker.name),
        }
    }

    for def in defs {
        let exact = valid.iter().any(|m| *m == def.qualified);
        let ok = if def.marker_required {
            exact
        } else {
            let marked = exact || valid.iter().any(|m| *m == "merge");
            let named = !def.type_key.is_empty()
                && test_fn_keys
                    .iter()
                    .any(|k| k.contains("merge") && k.contains(&def.type_key));
            marked || named
        };
        if ok {
            continue;
        }
        if def.suppressed {
            used.push((def.file.clone(), def.line));
        } else {
            let requirement = if def.marker_required {
                "this crate is marker-strict: add a commutativity/associativity \
                 proptest carrying an exact"
            } else {
                "add a commutativity/associativity proptest and a"
            };
            findings.push(Finding {
                file: def.file.clone(),
                line: def.line,
                col: def.col,
                rule: RuleId::D3,
                message: format!(
                    "{} has no merge-algebra test: {requirement} \
                     `vp-lint: merge-tested({})` marker beside it",
                    def.qualified, def.qualified
                ),
                witness: Vec::new(),
            });
        }
    }
    (findings, used)
}
