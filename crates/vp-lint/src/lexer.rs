//! A small hand-rolled Rust lexer.
//!
//! The analyzer runs in a vendor-only environment (no `syn`), so rule
//! matching works on a *masked* copy of each source file: every string,
//! character, byte and raw-string literal and every comment is blanked to
//! spaces (newlines preserved), which guarantees rules never fire on text
//! inside literals or comments. Comments are collected separately so the
//! directive parser (`// vp-lint: ...`) can read them.
//!
//! The scanner is total: any byte sequence (valid UTF-8 or not after lossy
//! conversion) produces a masked file without panicking. Unterminated
//! literals simply mask through end of file.

/// One comment found in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Whether code preceded the comment on its starting line (a trailing
    /// comment annotates its own line; a standalone one annotates the next).
    pub trailing: bool,
    /// Comment text without the `//`, `///`, `/*`, `*/` framing.
    pub text: String,
}

/// A source file with literals and comments blanked out.
#[derive(Debug, Clone)]
pub struct MaskedFile {
    /// Same length (in chars) as the input; literal and comment chars are
    /// replaced by spaces, newlines are preserved.
    pub code: String,
    pub comments: Vec<Comment>,
}

impl MaskedFile {
    /// The masked code split into lines (no terminators).
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.code.split('\n')
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Masks `source`. Never panics, for any input.
pub fn mask(source: &str) -> MaskedFile {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(source.len());
    let mut comments = Vec::new();

    let mut i = 0usize;
    let mut line = 1usize;
    let mut code_on_line = false;
    // Last non-whitespace char emitted as code (to tell a raw-string prefix
    // `r"` from the tail of an identifier like `var` + `"...` — the latter
    // cannot occur in valid Rust, but the lexer must stay total anyway).
    let mut prev_code: Option<char> = None;

    // Emits a masked (blanked) char, preserving newlines.
    macro_rules! blank {
        ($c:expr) => {
            if $c == '\n' {
                out.push('\n');
                line += 1;
                code_on_line = false;
            } else {
                out.push(' ');
            }
        };
    }

    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment (also doc comments `///`, `//!`).
        if c == '/' && next == Some('/') {
            let start_line = line;
            let trailing = code_on_line;
            let mut text = String::new();
            let mut j = i;
            // Skip the leading slashes and an optional doc marker.
            while j < n && chars[j] == '/' {
                j += 1;
            }
            if chars.get(j) == Some(&'!') {
                j += 1;
            }
            while i < j.min(n) {
                blank!(chars[i]);
                i += 1;
            }
            while i < n && chars[i] != '\n' {
                text.push(chars[i]);
                blank!(chars[i]);
                i += 1;
            }
            comments.push(Comment {
                line: start_line,
                trailing,
                text: text.trim().to_string(),
            });
            continue;
        }

        // Block comment (Rust block comments nest).
        if c == '/' && next == Some('*') {
            let start_line = line;
            let trailing = code_on_line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    blank!(chars[i]);
                    blank!(chars[i + 1]);
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth = depth.saturating_sub(1);
                    blank!(chars[i]);
                    blank!(chars[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if depth > 0 {
                        text.push(chars[i]);
                    }
                    blank!(chars[i]);
                    i += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                trailing,
                text: text.trim().to_string(),
            });
            continue;
        }

        // Raw / byte / C-string prefixes: r"..", r#".."#, b"..", br#".."#,
        // b'..', c"..". Only when not glued to a preceding identifier.
        let prefix_ok = !prev_code.map_or(false, is_ident_char);
        if prefix_ok && (c == 'r' || c == 'b' || c == 'c') {
            // Find the shape of a possible literal prefix.
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            let raw = c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r'));
            let mut hashes = 0usize;
            if raw {
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
            }
            if chars.get(j) == Some(&'"') {
                // Mask prefix + opening quote.
                while i <= j && i < n {
                    blank!(chars[i]);
                    i += 1;
                }
                if raw {
                    // Scan for `"` followed by `hashes` hash marks.
                    while i < n {
                        if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                for _ in 0..=hashes {
                                    if i < n {
                                        blank!(chars[i]);
                                        i += 1;
                                    }
                                }
                                break;
                            }
                        }
                        blank!(chars[i]);
                        i += 1;
                    }
                } else {
                    // The opening quote is already masked above; scan the
                    // body only. Re-entering at the opening-quote masker
                    // here would treat the *closing* quote of an empty
                    // `b""`/`c""` as another opening quote and swallow
                    // everything after it.
                    mask_string_body(&chars, &mut i, n, '"', &mut |ch| blank!(ch));
                }
                prev_code = None;
                continue;
            }
            if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                // Byte char literal b'x'.
                blank!(chars[i]);
                i += 1;
                mask_char_literal(&chars, &mut i, n, &mut |ch| blank!(ch));
                prev_code = None;
                continue;
            }
            // Not a literal prefix: fall through to plain code below.
        }

        // Cooked string.
        if c == '"' {
            mask_cooked_string(&chars, &mut i, n, &mut |ch| blank!(ch));
            prev_code = None;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let is_char_lit = match next {
                Some('\\') => true,
                // `'x'` — one char then a closing quote. `'x` with anything
                // else after (ident char, `>`, `,`, ...) is a lifetime.
                Some(nc) => nc != '\'' && chars.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char_lit {
                mask_char_literal(&chars, &mut i, n, &mut |ch| blank!(ch));
                prev_code = None;
                continue;
            }
            // Lifetime (or stray quote): keep as code.
        }

        // Plain code char.
        if c == '\n' {
            out.push('\n');
            line += 1;
            code_on_line = false;
        } else {
            out.push(c);
            if !c.is_whitespace() {
                code_on_line = true;
                prev_code = Some(c);
            }
        }
        i += 1;
    }

    MaskedFile {
        code: out,
        comments,
    }
}

/// Masks a cooked (escaped) string starting at the opening quote.
fn mask_cooked_string(
    chars: &[char],
    i: &mut usize,
    n: usize,
    blank: &mut dyn FnMut(char),
) {
    // Opening quote.
    if *i < n {
        blank(chars[*i]);
        *i += 1;
    }
    mask_string_body(chars, i, n, '"', blank);
}

/// Masks a char (or byte-char) literal starting at the opening quote.
fn mask_char_literal(
    chars: &[char],
    i: &mut usize,
    n: usize,
    blank: &mut dyn FnMut(char),
) {
    // Opening quote.
    if *i < n {
        blank(chars[*i]);
        *i += 1;
    }
    mask_string_body(chars, i, n, '\'', blank);
}

/// Masks an escaped literal body up to (and including) the `close` quote.
/// Assumes the opening quote has already been consumed, so an empty body
/// terminates immediately on the very next char.
fn mask_string_body(
    chars: &[char],
    i: &mut usize,
    n: usize,
    close: char,
    blank: &mut dyn FnMut(char),
) {
    while *i < n {
        let c = chars[*i];
        if c == '\\' {
            blank(c);
            *i += 1;
            if *i < n {
                blank(chars[*i]);
                *i += 1;
            }
            continue;
        }
        blank(c);
        *i += 1;
        if c == close {
            break;
        }
    }
}

/// A token of masked code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (value irrelevant to the rules; kept so `1u16` never
    /// reads as the identifier `u16`).
    Number,
    /// Single punctuation char.
    Punct(char),
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in chars).
    pub col: usize,
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// Tokenizes masked code. Numbers swallow their suffixes (`1u16`, `0xbad`)
/// but never a `.` (so `x.unwrap` keeps its dot token).
pub fn tokenize(masked: &MaskedFile) -> Vec<Token> {
    let mut toks = Vec::new();
    for (lineno, line) in masked.lines().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            let col = i + 1;
            if c.is_ascii_digit() {
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Number,
                    line: lineno + 1,
                    col,
                });
            } else if is_ident_char(c) {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                    line: lineno + 1,
                    col,
                });
            } else {
                toks.push(Token {
                    tok: Tok::Punct(c),
                    line: lineno + 1,
                    col,
                });
                i += 1;
            }
        }
    }
    toks
}
