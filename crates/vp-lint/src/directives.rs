//! `vp-lint:` comment directives.
//!
//! Two forms are recognised anywhere in a comment:
//!
//! * `vp-lint: allow(<rule>[, <rule>]*): <justification>` — suppresses the
//!   listed rules on the annotated line. A trailing comment annotates its
//!   own line; a comment alone on a line annotates the next line. The
//!   justification is mandatory: an allow without one is itself a finding.
//! * `vp-lint: merge-tested(<Type::merge>)` — declares that the named
//!   `pub fn merge` has a commutativity/associativity test (rule D3).
//!
//! Anything else after a `vp-lint:` marker is a malformed directive and is
//! reported (unsuppressibly) so typos cannot silently disable a rule.

use crate::lexer::Comment;
use crate::rules::RuleId;

/// A parsed suppression.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the directive comment itself starts on.
    pub line: usize,
    /// 1-based line the suppression applies to.
    pub applies_to: usize,
    pub rules: Vec<RuleId>,
}

/// Directives extracted from one file's comments.
#[derive(Debug, Clone, Default)]
pub struct Directives {
    pub allows: Vec<Allow>,
    /// `merge-tested(...)` payloads, e.g. `CatchmentMap::merge`.
    pub merge_markers: Vec<String>,
    /// Malformed directives: (line, explanation).
    pub malformed: Vec<(usize, String)>,
}

impl Directives {
    /// Whether `rule` is suppressed on `line`.
    pub fn allows_on(&self, rule: RuleId, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.applies_to == line && a.rules.contains(&rule))
    }
}

const MARKER: &str = "vp-lint";

/// Parses all directives out of a file's comments.
///
/// Only comments that *start* with `vp-lint` are directives — prose that
/// mentions the syntax mid-sentence (documentation, this file) is ignored.
/// A leading `vp-lint` without the colon is still reported as malformed so
/// a typo cannot silently disable a rule.
pub fn parse(comments: &[Comment]) -> Directives {
    let mut out = Directives::default();
    for c in comments {
        let Some(after_marker) = c.text.trim_start().strip_prefix(MARKER) else {
            continue;
        };
        let Some(rest) = after_marker.strip_prefix(':').map(str::trim_start) else {
            out.malformed
                .push((c.line, "vp-lint directive is missing its `:`".into()));
            continue;
        };
        if let Some(args) = rest.strip_prefix("allow") {
            match parse_allow(args) {
                Ok(rules) => out.allows.push(Allow {
                    line: c.line,
                    applies_to: if c.trailing { c.line } else { c.line + 1 },
                    rules,
                }),
                Err(why) => out.malformed.push((c.line, why)),
            }
        } else if let Some(args) = rest.strip_prefix("merge-tested") {
            match parse_paren(args) {
                Some(inner) if !inner.trim().is_empty() => {
                    out.merge_markers.push(inner.trim().to_string());
                }
                _ => out
                    .malformed
                    .push((c.line, "merge-tested needs a (Type::merge) argument".into())),
            }
        } else {
            out.malformed.push((
                c.line,
                format!(
                    "unknown vp-lint directive `{}` (expected allow(...) or merge-tested(...))",
                    rest.split_whitespace().next().unwrap_or("")
                ),
            ));
        }
    }
    out
}

/// Extracts the content of a leading `( ... )` group, if present.
fn parse_paren(s: &str) -> Option<&str> {
    let s = s.trim_start();
    let inner = s.strip_prefix('(')?;
    let end = inner.find(')')?;
    Some(&inner[..end])
}

/// Parses `( rule[, rule]* ): justification`.
fn parse_allow(args: &str) -> Result<Vec<RuleId>, String> {
    let args_trimmed = args.trim_start();
    let Some(inner) = parse_paren(args_trimmed) else {
        return Err("allow needs a (rule, ...) list".into());
    };
    let mut rules = Vec::new();
    for part in inner.split(',') {
        let name = part.trim();
        match RuleId::from_name(name) {
            Some(r) => rules.push(r),
            None => return Err(format!("unknown rule `{name}` in allow(...)")),
        }
    }
    if rules.is_empty() {
        return Err("allow(...) lists no rules".into());
    }
    // The justification: everything after the closing paren, introduced by
    // a colon, must be non-empty.
    let after = match args_trimmed.find(')') {
        Some(i) => args_trimmed[i + 1..].trim_start(),
        None => "",
    };
    let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err("allow(...) needs a `: <one-line justification>`".into());
    }
    Ok(rules)
}
