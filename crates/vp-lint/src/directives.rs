//! `vp-lint:` comment directives.
//!
//! Three forms are recognised anywhere in a comment:
//!
//! * `vp-lint: allow(<rule>[, <rule>]*): <justification>` — suppresses the
//!   listed rules on the annotated line. A trailing comment annotates its
//!   own line; a comment alone on a line annotates the next line. The
//!   justification is mandatory: an allow without one is itself a finding.
//! * `vp-lint: merge-tested(<Type::merge>[, suite=<file-stem>])` — declares
//!   that the named `pub fn merge` has a commutativity/associativity test
//!   (rule D3). The optional `suite=` names the test file (by stem, e.g.
//!   `suite=columnar_equivalence` for `tests/columnar_equivalence.rs`) that
//!   proves the algebra; rule D3 verifies the named file actually exists in
//!   the scanned set, so a marker cannot point at a deleted or misspelled
//!   suite and still discharge the obligation.
//! * `vp-lint: cold(fn): <justification>` — on (or directly above) a `fn`
//!   definition line: marks the fn setup/teardown, excluding it (and the
//!   subgraph only it reaches) from the hot-region closure the p-rules
//!   police. The justification is mandatory, exactly like an allow's.
//!
//! Anything else after a `vp-lint:` marker is a malformed directive and is
//! reported (unsuppressibly) so typos cannot silently disable a rule.

use crate::lexer::Comment;
use crate::rules::RuleId;

/// A parsed suppression.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the directive comment itself starts on.
    pub line: usize,
    /// 1-based line the suppression applies to.
    pub applies_to: usize,
    pub rules: Vec<RuleId>,
}

/// A parsed `merge-tested(...)` marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeMarker {
    /// 1-based line of the directive comment.
    pub line: usize,
    /// Qualified merge name the marker vouches for, e.g.
    /// `CatchmentMap::merge` (or the bare `merge` wildcard).
    pub name: String,
    /// Stem of the test file claimed to prove the algebra
    /// (`suite=<file-stem>`), when declared.
    pub suite: Option<String>,
}

/// A parsed `cold(fn)` marker (hot-region boundary, rules p1–p5).
#[derive(Debug, Clone)]
pub struct Cold {
    /// 1-based line the directive comment itself starts on.
    pub line: usize,
    /// 1-based line the marker applies to (the fn definition line).
    pub applies_to: usize,
}

/// Directives extracted from one file's comments.
#[derive(Debug, Clone, Default)]
pub struct Directives {
    pub allows: Vec<Allow>,
    /// `merge-tested(...)` markers, e.g. `CatchmentMap::merge`.
    pub merge_markers: Vec<MergeMarker>,
    /// `cold(fn)` markers excluding setup/teardown fns from the hot region.
    pub colds: Vec<Cold>,
    /// Malformed directives: (line, explanation).
    pub malformed: Vec<(usize, String)>,
}

impl Directives {
    /// Whether `rule` is suppressed on `line`.
    pub fn allows_on(&self, rule: RuleId, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.applies_to == line && a.rules.contains(&rule))
    }

    /// Whether a `cold(fn)` marker applies to `line`.
    pub fn cold_on(&self, line: usize) -> bool {
        self.colds.iter().any(|c| c.applies_to == line)
    }
}

const MARKER: &str = "vp-lint";

/// Parses all directives out of a file's comments.
///
/// Only comments that *start* with `vp-lint` are directives — prose that
/// mentions the syntax mid-sentence (documentation, this file) is ignored.
/// A leading `vp-lint` without the colon is still reported as malformed so
/// a typo cannot silently disable a rule.
pub fn parse(comments: &[Comment]) -> Directives {
    let mut out = Directives::default();
    for c in comments {
        let Some(after_marker) = c.text.trim_start().strip_prefix(MARKER) else {
            continue;
        };
        let Some(rest) = after_marker.strip_prefix(':').map(str::trim_start) else {
            out.malformed
                .push((c.line, "vp-lint directive is missing its `:`".into()));
            continue;
        };
        if let Some(args) = rest.strip_prefix("allow") {
            match parse_allow(args) {
                Ok(rules) => out.allows.push(Allow {
                    line: c.line,
                    applies_to: if c.trailing { c.line } else { c.line + 1 },
                    rules,
                }),
                Err(why) => out.malformed.push((c.line, why)),
            }
        } else if let Some(args) = rest.strip_prefix("merge-tested") {
            match parse_paren(args).map(|inner| parse_merge_marker(inner, c.line)) {
                Some(Ok(marker)) => out.merge_markers.push(marker),
                Some(Err(why)) => out.malformed.push((c.line, why)),
                None => out.malformed.push((
                    c.line,
                    "merge-tested needs a (Type::merge[, suite=<file-stem>]) argument".into(),
                )),
            }
        } else if let Some(args) = rest.strip_prefix("cold") {
            match parse_cold(args) {
                Ok(()) => out.colds.push(Cold {
                    line: c.line,
                    applies_to: if c.trailing { c.line } else { c.line + 1 },
                }),
                Err(why) => out.malformed.push((c.line, why)),
            }
        } else {
            out.malformed.push((
                c.line,
                format!(
                    "unknown vp-lint directive `{}` (expected allow(...), \
                     merge-tested(...) or cold(fn))",
                    rest.split_whitespace().next().unwrap_or("")
                ),
            ));
        }
    }
    out
}

/// Parses the `Type::merge[, suite=<file-stem>]` payload of a
/// `merge-tested` directive. Unknown arguments are malformed — a typo like
/// `suit=` must not silently become part of the merge name.
fn parse_merge_marker(inner: &str, line: usize) -> Result<MergeMarker, String> {
    let mut parts = inner.split(',').map(str::trim);
    let name = parts.next().unwrap_or("");
    if name.is_empty() {
        return Err("merge-tested needs a (Type::merge[, suite=<file-stem>]) argument".into());
    }
    let mut suite = None;
    for p in parts {
        let Some(v) = p.strip_prefix("suite=") else {
            return Err(format!(
                "unknown merge-tested argument `{p}` (expected suite=<file-stem>)"
            ));
        };
        let v = v.trim();
        if v.is_empty() {
            return Err("merge-tested suite= needs a test file stem".into());
        }
        if suite.replace(v.to_string()).is_some() {
            return Err("merge-tested takes at most one suite= argument".into());
        }
    }
    Ok(MergeMarker {
        line,
        name: name.to_string(),
        suite,
    })
}

/// Parses `(fn): justification` — the only accepted `cold` payload, so a
/// typo like `cold(Fn)` or a missing justification is malformed, not a
/// silent no-op.
fn parse_cold(args: &str) -> Result<(), String> {
    let args_trimmed = args.trim_start();
    let Some(inner) = parse_paren(args_trimmed) else {
        return Err("cold needs a (fn) argument".into());
    };
    if inner.trim() != "fn" {
        return Err(format!("unknown cold argument `{}` (expected fn)", inner.trim()));
    }
    let after = match args_trimmed.find(')') {
        Some(i) => args_trimmed[i + 1..].trim_start(),
        None => "",
    };
    let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err("cold(fn) needs a `: <one-line justification>`".into());
    }
    Ok(())
}

/// Extracts the content of a leading `( ... )` group, if present.
fn parse_paren(s: &str) -> Option<&str> {
    let s = s.trim_start();
    let inner = s.strip_prefix('(')?;
    let end = inner.find(')')?;
    Some(&inner[..end])
}

/// Parses `( rule[, rule]* ): justification`.
fn parse_allow(args: &str) -> Result<Vec<RuleId>, String> {
    let args_trimmed = args.trim_start();
    let Some(inner) = parse_paren(args_trimmed) else {
        return Err("allow needs a (rule, ...) list".into());
    };
    let mut rules = Vec::new();
    for part in inner.split(',') {
        let name = part.trim();
        match RuleId::from_name(name) {
            Some(r) => rules.push(r),
            None => return Err(format!("unknown rule `{name}` in allow(...)")),
        }
    }
    if rules.is_empty() {
        return Err("allow(...) lists no rules".into());
    }
    // The justification: everything after the closing paren, introduced by
    // a colon, must be non-empty.
    let after = match args_trimmed.find(')') {
        Some(i) => args_trimmed[i + 1..].trim_start(),
        None => "",
    };
    let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err("allow(...) needs a `: <one-line justification>`".into());
    }
    Ok(rules)
}
