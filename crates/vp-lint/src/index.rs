//! The item indexer: the first layer of the graph engine.
//!
//! Walks one file's masked token stream (see [`crate::lexer`]) and records
//! every item the call-graph layer needs: `mod` declarations (with their
//! visibility), `struct`/`enum`/`trait` declarations (ditto), `use` aliases,
//! and — the payload — every `fn` definition together with the call sites,
//! panic sinks and nondeterminism sources inside its body.
//!
//! The indexer is total (any token soup produces an index without
//! panicking) and purely lexical: it never resolves names itself. Name
//! resolution lives in [`crate::graph`], which over-approximates on
//! ambiguity — so the indexer's job is only to never *lose* an item, not
//! to understand one precisely.

use std::collections::BTreeMap;

use crate::directives::Directives;
use crate::lexer::{Tok, Token};
use crate::rules::{FileContext, RuleId};

/// What kind of panic sink a token is (rule g1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    /// `.unwrap()` / `.expect(..)`.
    Method(String),
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro(String),
    /// Slice/array indexing `expr[..]`.
    Index,
}

impl SinkKind {
    /// Short human label used in witness paths.
    pub fn label(&self) -> String {
        match self {
            SinkKind::Method(m) => format!("{m}()"),
            SinkKind::Macro(m) => format!("{m}!"),
            SinkKind::Index => "slice-indexing".to_string(),
        }
    }
}

/// A panic sink inside a fn body.
#[derive(Debug, Clone)]
pub struct Sink {
    pub kind: SinkKind,
    pub line: usize,
    pub col: usize,
}

/// An ambient-nondeterminism source inside a fn body (rule g2; the same
/// source set as token rule d2).
#[derive(Debug, Clone)]
pub struct NondetSource {
    /// e.g. `thread_rng`, `Instant::now`, `std::env`.
    pub what: String,
    pub line: usize,
    pub col: usize,
}

/// Shared-mutable-state evidence inside a fn body (rule c1): an
/// interior-mutability type named in the body (`Cell`/`RefCell`/
/// `UnsafeCell` — constructors and type ascriptions) or a `static mut`.
#[derive(Debug, Clone)]
pub struct Hazard {
    /// e.g. `RefCell`, `static mut COUNTER`.
    pub what: String,
    pub line: usize,
    pub col: usize,
}

/// A lock acquisition `recv.lock()` inside a fn body (rules c2/c3). The
/// lock's identity is the receiver identifier — purely lexical, which is
/// exactly as precise as the rest of the index: two fields with the same
/// name are conservatively the same lock.
#[derive(Debug, Clone)]
pub struct LockAcq {
    pub lock: String,
    pub line: usize,
    pub col: usize,
}

/// A blocking call (`recv`/`join`/`lock`) evaluated while a `let`-bound
/// lock guard is still live in the same fn body (rule c3). Fully resolved
/// at index time — the rule is intraprocedural.
#[derive(Debug, Clone)]
pub struct BlockingUnderGuard {
    /// The blocking call, e.g. `recv()`.
    pub what: String,
    /// The lock whose guard is live.
    pub guard_lock: String,
    pub guard_line: usize,
    pub line: usize,
    pub col: usize,
}

/// A loop whose body (or header — `while let Ok(x) = rx.recv()`) receives
/// from a channel that is **not** indexed by shard id (rule c4). If the
/// same loop also calls `merge`, results are being folded in channel
/// arrival order; the interprocedural half (a loop-body call that reaches
/// a fn named `merge`) is resolved in [`crate::crules`] via `start_line`/
/// `end_line` against the call graph.
#[derive(Debug, Clone)]
pub struct RecvLoop {
    /// The receive call, e.g. `recv()`.
    pub recv_what: String,
    pub recv_line: usize,
    pub recv_col: usize,
    /// Line of the `for`/`while`/`loop` keyword.
    pub start_line: usize,
    /// Line of the loop's closing brace.
    pub end_line: usize,
    /// A direct `.merge(` inside the same loop, if any.
    pub merge: Option<(usize, usize)>,
}

/// A hot-path cost fact inside a fn body (rules p1–p5, resolved against
/// the hot region in [`crate::prules`]). The indexer only records what it
/// sees — whether the fn is hot is the region computation's business.
#[derive(Debug, Clone)]
pub struct PFact {
    /// Which p-rule the fact feeds (P1–P5).
    pub rule: RuleId,
    /// Human label for the witness path, e.g. `Vec::new`, `format!`,
    /// `results.push (no capacity witness)`.
    pub label: String,
    pub line: usize,
    pub col: usize,
}

/// A call site inside a fn body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Path segments as written (`Self` already substituted where known):
    /// `helper` / `conv::index` / `vp_net::conv::index`. Method calls
    /// (`x.get(..)`) carry their single segment with `method == true`.
    pub path: Vec<String>,
    pub method: bool,
    pub line: usize,
    pub col: usize,
}

/// One `fn` definition with everything reachability needs.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    /// Crate-rooted module path (crate name first, `_`-normalised).
    pub module: Vec<String>,
    /// The `impl` self type, if the fn sits in an `impl` block.
    pub impl_type: Option<String>,
    /// The trait name when the fn sits in an `impl Trait for Type` block.
    pub trait_impl: Option<String>,
    /// `pub` with no visibility restriction (`pub(crate)` etc. is false).
    pub is_pub: bool,
    pub line: usize,
    pub col: usize,
    /// `vp-lint: allow(g1)` on the definition line: audited total — the
    /// fn's body (and transitively its callees) is vouched panic-free.
    pub audited_g1: bool,
    /// `vp-lint: allow(g2)` on the definition line: audited deterministic.
    pub audited_g2: bool,
    /// `vp-lint: allow(c1)` on the definition line: shared-mutable state
    /// in (or below) this fn is vouched thread-confined.
    pub audited_c1: bool,
    /// `vp-lint: allow(c2)` on the definition line: this fn's lock
    /// acquisitions are vouched cycle-free and excluded from the
    /// lock-order graph.
    pub audited_c2: bool,
    /// `vp-lint: allow(p1)`..`allow(p5)` on the definition line: the fn's
    /// hot-path costs for that rule are audited (index 0 = p1).
    pub audited_p: [bool; 5],
    /// `vp-lint: cold(fn)` on the definition line: setup/teardown — the
    /// hot-region closure does not traverse into this fn.
    pub is_cold: bool,
    pub calls: Vec<Call>,
    pub sinks: Vec<Sink>,
    pub sources: Vec<NondetSource>,
    pub hazards: Vec<Hazard>,
    pub locks: Vec<LockAcq>,
    pub blocked_guards: Vec<BlockingUnderGuard>,
    pub recv_loops: Vec<RecvLoop>,
    /// Hot-path cost facts (rules p1–p5).
    pub pfacts: Vec<PFact>,
}

impl FnInfo {
    /// `crate::module::Type::name` (display form).
    pub fn qualified(&self) -> String {
        let mut parts: Vec<&str> = self.module.iter().map(String::as_str).collect();
        if let Some(t) = &self.impl_type {
            parts.push(t);
        }
        parts.push(&self.name);
        parts.join("::")
    }

    /// Path segments used for suffix matching (type segment included).
    pub fn path_segments(&self) -> Vec<String> {
        let mut segs = self.module.clone();
        if let Some(t) = &self.impl_type {
            segs.push(t.clone());
        }
        segs.push(self.name.clone());
        segs
    }
}

/// A `mod` declaration (inline or out-of-line) with its visibility.
#[derive(Debug, Clone)]
pub struct ModDecl {
    /// Module path of the *parent* the decl appears in.
    pub parent: Vec<String>,
    pub name: String,
    pub is_pub: bool,
}

/// A `struct`/`enum`/`trait`/`type` declaration with its visibility.
#[derive(Debug, Clone)]
pub struct TypeDecl {
    pub name: String,
    pub is_pub: bool,
}

/// Everything the indexer extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct FileIndex {
    pub file: String,
    /// `crates/<name>` crate, or `""` for the root umbrella package.
    pub crate_name: String,
    pub fns: Vec<FnInfo>,
    pub mods: Vec<ModDecl>,
    pub types: Vec<TypeDecl>,
    /// `use` aliases: local name → full path segments.
    pub uses: BTreeMap<String, Vec<String>>,
    /// File-level `static mut` / interior-mutability statics (rule c1):
    /// reachable by anything in the file, so attributed to the file, not
    /// to a fn.
    pub statics: Vec<Hazard>,
    /// `(line, rule)` pairs for allow directives the indexer consumed
    /// (g1 on a sink line, g2 on a source line) — feeds rule g3.
    pub used_allows: Vec<(usize, RuleId)>,
}

/// Crate-rooted module path derived from the file's workspace path.
/// `crates/x/src/lib.rs` → `[x]`; `crates/x/src/a/b.rs` → `[x, a, b]`;
/// the root package's `src/...` gets the pseudo-crate name `""` → `[]`-ish.
fn module_path_of(ctx: &FileContext) -> Vec<String> {
    let comps: Vec<&str> = ctx.rel_path.split('/').collect();
    let mut path = Vec::new();
    if !ctx.crate_name.is_empty() {
        path.push(ctx.crate_name.replace('-', "_"));
    }
    // Everything between `src/` and the file name is module structure.
    let mut in_src = false;
    for (i, c) in comps.iter().enumerate() {
        let last = i + 1 == comps.len();
        if last {
            if in_src && *c != "lib.rs" && *c != "mod.rs" {
                if let Some(stem) = c.strip_suffix(".rs") {
                    path.push(stem.to_string());
                }
            }
        } else if *c == "src" {
            in_src = true;
        }
    }
    path
}

/// Identifiers that look like calls (`kw (`) or indexed values (`kw [`)
/// but are control flow / syntax, not names.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else" | "match" | "while" | "for" | "loop" | "return" | "break"
            | "continue" | "in" | "as" | "let" | "const" | "static" | "fn" | "mod"
            | "use" | "pub" | "impl" | "trait" | "struct" | "enum" | "type" | "where"
            | "move" | "ref" | "mut" | "dyn" | "unsafe" | "extern" | "crate" | "super"
            | "self" | "Self" | "box" | "await" | "yield" | "async"
    )
}

const SINK_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const SINK_METHODS: [&str; 2] = ["unwrap", "expect"];
/// Interior-mutability types whose mention in a fn body is a c1 hazard.
const INTERIOR_MUT_TYPES: [&str; 3] = ["Cell", "RefCell", "UnsafeCell"];
/// Channel receives that observe arrival order (rule c4). `join` blocks
/// but does not receive, so it is c3-only.
const RECV_METHODS: [&str; 3] = ["recv", "try_recv", "recv_timeout"];
/// Blocking calls that deadlock-risk while a guard is live (rule c3).
/// `try_recv` is non-blocking and exempt.
const BLOCKING_METHODS: [&str; 4] = ["recv", "recv_timeout", "join", "lock"];

/// Mutable walk state for the concurrency extraction (rules c1–c4): live
/// lock guards and open loop bodies, maintained by `index_file`'s brace
/// walk and consumed by `extract_at`.
#[derive(Default)]
struct ConcState {
    /// `let`-bound lock guards still live: (depth at acquisition, lock, line).
    guards: Vec<(usize, String, usize)>,
    /// Open `for`/`while`/`loop` bodies, innermost last.
    loops: Vec<OpenLoop>,
    /// A loop keyword was seen at this line; the next `{` opens its body.
    pending_loop: Option<usize>,
    /// A receive seen in a loop *header* (`while let Ok(x) = rx.recv()`)
    /// before the body's `{` opened; moved into the loop when it does.
    pending_recv: Option<(String, usize, usize)>,
}

struct OpenLoop {
    /// Depth the loop's `{` opened at (same convention as `mod_stack`).
    depth: usize,
    start_line: usize,
    /// First unindexed channel receive seen in the loop.
    recv: Option<(String, usize, usize)>,
    /// First `.merge(` seen in the loop.
    merge: Option<(usize, usize)>,
}

/// Collection types whose construction / growth is a p1 allocation fact
/// and whose declarations feed the receiver-type table (p1 clone, p2).
const COLLECTION_TYPES: [&str; 8] = [
    "Vec", "VecDeque", "BTreeMap", "BTreeSet", "BinaryHeap", "String", "BytesMut", "Bytes",
];
/// Encode/checksum helpers whose loop-invariant calls rule p3 flags: a
/// call inside a probe loop whose arguments never mention a loop-bound
/// name recomputes the same value every iteration.
const P3_HELPERS: [&str; 4] = [
    "internet_checksum",
    "internet_checksum_parts",
    "emit",
    "encode_payload",
];

/// A p3 candidate call held inside an open loop frame until the loop
/// closes and its invariance can be decided.
struct P3Call {
    helper: String,
    line: usize,
    col: usize,
    /// Identifiers mentioned in the call's receiver/arguments.
    args: Vec<String>,
}

/// One open loop for the p3 invariance analysis: the names the loop binds
/// (pattern vars, `let` bindings, assignment targets) and the helper calls
/// seen so far.
struct P3Frame {
    /// Depth the loop's `{` opened at.
    depth: usize,
    bound: Vec<String>,
    calls: Vec<P3Call>,
}

/// Mutable walk state for the hot-path cost extraction (rules p1–p5).
/// Pushes, map lookups and clones are *deferred*: their verdict depends on
/// file-level tables (capacity witnesses, receiver types) that are only
/// complete at end of file.
#[derive(Default)]
struct PState {
    /// Receiver idents with a `with_capacity`/`reserve` witness anywhere
    /// in this file — a `push` on them is amortized, not a p1 fact.
    witnessed: Vec<String>,
    /// Ident → collection type, from `name: Type<...>` ascriptions and
    /// `let name = Type::new()`-style bindings anywhere in the file.
    collections: BTreeMap<String, String>,
    /// Deferred `.get(`/`.contains_key(` sites: (fn index, receiver,
    /// method, line, col).
    lookups: Vec<(usize, String, String, usize, usize)>,
    /// Deferred `.clone()` sites: (fn index, receiver, line, col).
    clones: Vec<(usize, String, usize, usize)>,
    /// Open loop frames for p3, innermost last.
    frames: Vec<P3Frame>,
    /// A `for` keyword was seen: collect pattern idents until `in`. The
    /// names land in `pending_bound` and move into the frame at its `{`.
    /// (`while let` headers are not collected — their body `let`s and
    /// assignments still bind, which is enough in practice.)
    collecting: bool,
    pending_bound: Vec<String>,
    /// Inside an open frame, a `let` was seen: bind idents until `=`/`:`/`;`.
    let_bind: bool,
    /// Deferred p1 allocation sites whose verdict needs the witness set:
    /// (fn index, receiver, label, line, col).
    deferred_p1: Vec<(usize, String, String, usize, usize)>,
}

impl PState {
    /// Binds `name` in the innermost open loop frame, if any.
    fn bind(&mut self, name: &str) {
        if let Some(f) = self.frames.last_mut() {
            f.bound.push(name.to_string());
        }
    }
}

/// Identifiers mentioned in a call's argument list: everything between the
/// opening paren at `open` and its matching close. Purely lexical — for p3
/// invariance, mentioning a loop-bound name anywhere in the arguments is
/// what makes a call varying.
fn call_arg_idents(tokens: &[Token], open: usize) -> Vec<String> {
    let mut args = Vec::new();
    if !tokens.get(open).is_some_and(|t| t.is_punct('(')) {
        return args;
    }
    let mut paren = 1usize;
    let mut j = open + 1;
    while let Some(n) = tokens.get(j) {
        match &n.tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            }
            Tok::Ident(s) if !is_keyword(s) => args.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    args
}

/// The receiver a collection constructor call binds to, if discoverable:
/// `let [mut] name [...] = X::ctor(..)`, `name = X::ctor(..)`, or a struct
/// literal / ascribed field `name: X::ctor(..)`. `i` is the index of the
/// type ident `X`. Bounded backward walk; an undiscoverable receiver
/// returns `None` (the caller decides whether that is a fact or a skip).
fn binding_receiver(tokens: &[Token], i: usize) -> Option<String> {
    if i == 0 {
        return None;
    }
    if tokens[i - 1].is_punct('=') {
        // `name = X::..` / `let mut name = X::..` (ident right before `=`).
        if let Some(name) = (i >= 2).then(|| tokens[i - 2].ident()).flatten() {
            if !is_keyword(name) {
                return Some(name.to_string());
            }
        }
        // `let mut name: Type<..> = X::..` — the type annotation sits
        // between the name and the `=`; find the `let` instead.
        let floor = i.saturating_sub(24);
        let mut j = i - 1;
        while j > floor {
            j -= 1;
            match &tokens[j].tok {
                Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => return None,
                Tok::Ident(s) if s == "let" => {
                    let mut k = j + 1;
                    if tokens.get(k).and_then(Token::ident) == Some("mut") {
                        k += 1;
                    }
                    return tokens.get(k).and_then(Token::ident).map(str::to_string);
                }
                _ => {}
            }
        }
        return None;
    }
    // Struct literal field `name: X::ctor(..)` (a single `:`, not `::`).
    if tokens[i - 1].is_punct(':') && i >= 2 && !tokens[i - 2].is_punct(':') {
        if let Some(name) = tokens[i - 2].ident() {
            if !is_keyword(name) {
                return Some(name.to_string());
            }
        }
    }
    None
}

/// Whether the ident at `i` is the target of a (possibly compound)
/// assignment: `x = ..`, `x += ..` — but not `x == ..` or `.. <= x`.
/// Assignment inside a loop body makes the name varying for p3.
fn is_assignment_target(tokens: &[Token], i: usize) -> bool {
    let simple = tokens.get(i + 1).is_some_and(|n| n.is_punct('='))
        && !tokens.get(i + 2).is_some_and(|n| n.is_punct('='))
        && !(i > 0
            && matches!(
                &tokens[i - 1].tok,
                Tok::Punct('=') | Tok::Punct('<') | Tok::Punct('>') | Tok::Punct('!')
            ));
    let compound = tokens.get(i + 1).is_some_and(|n| {
        matches!(
            n.tok,
            Tok::Punct('+')
                | Tok::Punct('-')
                | Tok::Punct('*')
                | Tok::Punct('/')
                | Tok::Punct('%')
                | Tok::Punct('&')
                | Tok::Punct('|')
                | Tok::Punct('^')
        )
    }) && tokens.get(i + 2).is_some_and(|n| n.is_punct('='));
    simple || compound
}

/// Feeds the file-level receiver-type table from `name: Type<..>`
/// ascriptions (struct fields, fn params, let bindings) — runs on every
/// non-test token, inside fn bodies or not, because a field declared on a
/// struct types the receivers every method of that struct uses.
fn collect_ascription(tokens: &[Token], i: usize, pstate: &mut PState) {
    let Some(ty) = tokens[i].ident() else { return };
    if !COLLECTION_TYPES.contains(&ty) {
        return;
    }
    // Walk back over `&` / `mut` to the ascription's `:` (a single colon).
    let mut j = i;
    while j > 0 && (tokens[j - 1].is_punct('&') || tokens[j - 1].ident() == Some("mut")) {
        j -= 1;
    }
    if j < 2 || !tokens[j - 1].is_punct(':') || tokens[j - 2].is_punct(':') {
        return;
    }
    if let Some(name) = tokens[j - 2].ident() {
        if !is_keyword(name) {
            pstate.collections.insert(name.to_string(), ty.to_string());
        }
    }
}

/// Walks one lexed file and builds its [`FileIndex`]. `dirs` supplies the
/// allow directives that audit sinks/sources in place.
pub fn index_file(ctx: &FileContext, tokens: &[Token], dirs: &Directives) -> FileIndex {
    let mut out = FileIndex {
        file: ctx.rel_path.clone(),
        crate_name: ctx.crate_name.clone(),
        ..FileIndex::default()
    };
    let file_module = module_path_of(ctx);

    let mut depth = 0usize;
    // (depth the block opened at, module name) for inline `mod x {`.
    let mut mod_stack: Vec<(usize, String)> = Vec::new();
    // (open depth, self type, trait name) for `impl` blocks.
    let mut impl_stack: Vec<(usize, Option<String>, Option<String>)> = Vec::new();
    // (open depth, index into out.fns) for fn bodies currently open.
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();
    // depths at which `#[cfg(test)]` blocks opened.
    let mut test_stack: Vec<usize> = Vec::new();

    let mut pending_test = false;
    let mut conc = ConcState::default();
    let mut pstate = PState::default();
    // A parsed-but-unopened item header waiting for its `{` (or `;`).
    enum Pending {
        Mod { name: String, is_pub: bool },
        Impl { self_ty: Option<String>, trait_name: Option<String> },
        Fn(FnInfo),
    }
    let mut pending: Option<Pending> = None;

    let current_module = |mod_stack: &[(usize, String)]| -> Vec<String> {
        let mut m = file_module.clone();
        m.extend(mod_stack.iter().map(|(_, n)| n.clone()));
        m
    };

    // Visibility of the item whose `pub`-ish tokens *end* right before
    // token index `i` (i.e. `i` is the `fn`/`mod`/`struct` keyword).
    let is_pub_before = |tokens: &[Token], i: usize| -> bool {
        let mut j = i;
        loop {
            if j == 0 {
                return false;
            }
            j -= 1;
            match &tokens[j].tok {
                Tok::Ident(s)
                    if matches!(s.as_str(), "const" | "async" | "unsafe" | "extern") =>
                {
                    continue;
                }
                Tok::Ident(s) if s == "pub" => return true,
                // A `)` directly before the item keyword can only close a
                // `pub(crate)` / `pub(in path)` restriction — which is
                // restricted visibility, i.e. not public API.
                Tok::Punct(')') => return false,
                _ => return false,
            }
        }
    };

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        let in_test = ctx.is_test || !test_stack.is_empty();

        // Attributes: consume `#[...]` wholesale; latch cfg(test).
        if t.is_punct('#') && tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            let mut j = i + 2;
            let mut bracket = 1usize;
            let mut idents: Vec<&str> = Vec::new();
            while j < tokens.len() && bracket > 0 {
                match &tokens[j].tok {
                    Tok::Punct('[') => bracket += 1,
                    Tok::Punct(']') => bracket -= 1,
                    Tok::Ident(s) => idents.push(s),
                    _ => {}
                }
                j += 1;
            }
            if idents.first().is_some_and(|f| *f == "cfg" || *f == "cfg_attr")
                && idents.iter().any(|s| *s == "test")
            {
                pending_test = true;
            }
            i = j;
            continue;
        }

        match &t.tok {
            Tok::Ident(kw) if kw == "mod" && pending.is_none() => {
                if let Some(name) = tokens.get(i + 1).and_then(Token::ident) {
                    let is_pub = is_pub_before(tokens, i);
                    if tokens.get(i + 2).is_some_and(|x| x.is_punct(';')) {
                        // Out-of-line decl: visibility info only.
                        if !in_test {
                            out.mods.push(ModDecl {
                                parent: current_module(&mod_stack),
                                name: name.to_string(),
                                is_pub,
                            });
                        }
                        i += 3;
                        continue;
                    }
                    pending = Some(Pending::Mod {
                        name: name.to_string(),
                        is_pub,
                    });
                    i += 2;
                    continue;
                }
            }
            Tok::Ident(kw) if (kw == "struct" || kw == "enum" || kw == "trait" || kw == "union")
                && pending.is_none() && !in_test =>
            {
                if let Some(name) = tokens.get(i + 1).and_then(Token::ident) {
                    out.types.push(TypeDecl {
                        name: name.to_string(),
                        is_pub: is_pub_before(tokens, i),
                    });
                    if kw == "trait" {
                        // Default trait methods are public API through the
                        // trait: index them like `impl Trait` methods.
                        pending = Some(Pending::Impl {
                            self_ty: Some(name.to_string()),
                            trait_name: None,
                        });
                    }
                }
                // Fall through: the decl's `{` (if any) is plain nesting.
            }
            Tok::Ident(kw) if kw == "impl" && pending.is_none() => {
                // Parse the impl header up to `{` or `;`: the last path
                // segment before `for` is the trait, the last one before
                // `{` is the self type.
                let mut j = i + 1;
                let mut angle = 0usize;
                let mut last: Option<String> = None;
                let mut trait_name: Option<String> = None;
                while let Some(n) = tokens.get(j) {
                    match &n.tok {
                        Tok::Punct('{') | Tok::Punct(';') => break,
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle = angle.saturating_sub(1),
                        Tok::Ident(s) if angle == 0 => {
                            if s == "for" {
                                trait_name = last.take();
                            } else if s == "where" {
                                break;
                            } else {
                                last = Some(s.clone());
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                pending = Some(Pending::Impl {
                    self_ty: last,
                    trait_name,
                });
                // Do not skip ahead: the header tokens carry no calls and
                // re-walking them only costs the `{` detection below.
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(name_tok) = tokens.get(i + 1) {
                    if let Some(name) = name_tok.ident() {
                        if !in_test {
                            let (impl_ty, trait_name) = impl_stack
                                .last()
                                .map(|(_, t, tr)| (t.clone(), tr.clone()))
                                .unwrap_or((None, None));
                            let mut info = FnInfo {
                                name: name.to_string(),
                                module: current_module(&mod_stack),
                                impl_type: impl_ty,
                                trait_impl: trait_name,
                                is_pub: is_pub_before(tokens, i),
                                line: name_tok.line,
                                col: name_tok.col,
                                audited_g1: dirs.allows_on(RuleId::G1, name_tok.line),
                                audited_g2: dirs.allows_on(RuleId::G2, name_tok.line),
                                audited_c1: dirs.allows_on(RuleId::C1, name_tok.line),
                                audited_c2: dirs.allows_on(RuleId::C2, name_tok.line),
                                audited_p: [
                                    dirs.allows_on(RuleId::P1, name_tok.line),
                                    dirs.allows_on(RuleId::P2, name_tok.line),
                                    dirs.allows_on(RuleId::P3, name_tok.line),
                                    dirs.allows_on(RuleId::P4, name_tok.line),
                                    dirs.allows_on(RuleId::P5, name_tok.line),
                                ],
                                is_cold: dirs.cold_on(name_tok.line),
                                calls: Vec::new(),
                                sinks: Vec::new(),
                                sources: Vec::new(),
                                hazards: Vec::new(),
                                locks: Vec::new(),
                                blocked_guards: Vec::new(),
                                recv_loops: Vec::new(),
                                pfacts: Vec::new(),
                            };
                            // `dyn` in the signature (arguments or return
                            // type) is dynamic dispatch the body pays for
                            // on every call — a p4 fact on the fn itself.
                            let mut j = i + 2;
                            while let Some(n) = tokens.get(j) {
                                if n.is_punct('{') || n.is_punct(';') {
                                    break;
                                }
                                if n.ident() == Some("dyn") {
                                    if dirs.allows_on(RuleId::P4, n.line) {
                                        out.used_allows.push((n.line, RuleId::P4));
                                    } else {
                                        info.pfacts.push(PFact {
                                            rule: RuleId::P4,
                                            label: "dyn in signature".into(),
                                            line: n.line,
                                            col: n.col,
                                        });
                                    }
                                }
                                j += 1;
                            }
                            pending = Some(Pending::Fn(info));
                        }
                        i += 2;
                        continue;
                    }
                }
            }
            Tok::Ident(kw)
                if kw == "static"
                    && !in_test
                    && !(i > 0 && tokens[i - 1].is_punct('\'')) =>
            {
                // `static [mut] NAME : Type = ...` — a `'static` lifetime
                // is excluded by the quote check above. `static mut` is a
                // c1 hazard outright; an immutable static whose type
                // mentions an interior-mutability cell or `Rc` is a
                // non-`Sync` static, same hazard.
                let mut j = i + 1;
                let is_mut = tokens.get(j).and_then(Token::ident) == Some("mut");
                if is_mut {
                    j += 1;
                }
                if let Some(name) = tokens.get(j).and_then(Token::ident) {
                    let mut non_sync = false;
                    if !is_mut {
                        let mut k = j + 1;
                        while let Some(n) = tokens.get(k) {
                            if n.is_punct('=') || n.is_punct(';') {
                                break;
                            }
                            if matches!(
                                n.ident(),
                                Some("Cell") | Some("RefCell") | Some("UnsafeCell") | Some("Rc")
                            ) {
                                non_sync = true;
                            }
                            k += 1;
                        }
                    }
                    if is_mut || non_sync {
                        let what = if is_mut {
                            format!("static mut {name}")
                        } else {
                            format!("non-Sync static {name}")
                        };
                        if dirs.allows_on(RuleId::C1, t.line) {
                            out.used_allows.push((t.line, RuleId::C1));
                        } else if let Some(&(_, fi)) = fn_stack.last() {
                            out.fns[fi].hazards.push(Hazard {
                                what,
                                line: t.line,
                                col: t.col,
                            });
                        } else {
                            out.statics.push(Hazard {
                                what,
                                line: t.line,
                                col: t.col,
                            });
                        }
                    }
                }
            }
            Tok::Ident(kw) if kw == "use" && pending.is_none() && !in_test => {
                // Parse `use path::{a, b as c, d::e};` into aliases.
                let mut j = i + 1;
                let mut end = j;
                while let Some(n) = tokens.get(end) {
                    if n.is_punct(';') {
                        break;
                    }
                    end += 1;
                }
                parse_use_tree(tokens, &mut j, end, &mut Vec::new(), &mut out.uses);
                i = end + 1;
                continue;
            }
            Tok::Punct(';') => {
                // A pending header without a body (trait method decl,
                // `impl Trait for T;`) never opens.
                pending = None;
                if pending_test {
                    pending_test = false;
                }
                conc.pending_loop = None;
                conc.pending_recv = None;
                pstate.collecting = false;
                pstate.let_bind = false;
                pstate.pending_bound.clear();
            }
            Tok::Punct('{') => {
                if let Some(start_line) = conc.pending_loop.take() {
                    if fn_stack.last().is_some() {
                        conc.loops.push(OpenLoop {
                            depth,
                            start_line,
                            recv: conc.pending_recv.take(),
                            merge: None,
                        });
                        pstate.frames.push(P3Frame {
                            depth,
                            bound: std::mem::take(&mut pstate.pending_bound),
                            calls: Vec::new(),
                        });
                    }
                }
                pstate.collecting = false;
                pstate.let_bind = false;
                match pending.take() {
                    Some(Pending::Mod { name, is_pub }) => {
                        if !in_test {
                            out.mods.push(ModDecl {
                                parent: current_module(&mod_stack),
                                name: name.clone(),
                                is_pub,
                            });
                        }
                        mod_stack.push((depth, name));
                    }
                    Some(Pending::Impl { self_ty, trait_name }) => {
                        impl_stack.push((depth, self_ty, trait_name));
                    }
                    Some(Pending::Fn(info)) => {
                        out.fns.push(info);
                        fn_stack.push((depth, out.fns.len() - 1));
                    }
                    None => {}
                }
                if pending_test {
                    test_stack.push(depth);
                    pending_test = false;
                }
                depth += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                // Close loops first, while the owning fn is still open.
                while conc.loops.last().is_some_and(|l| l.depth == depth) {
                    if let (Some(l), Some(&(_, fi))) = (conc.loops.pop(), fn_stack.last()) {
                        if let Some((what, rl, rc)) = l.recv {
                            out.fns[fi].recv_loops.push(RecvLoop {
                                recv_what: what,
                                recv_line: rl,
                                recv_col: rc,
                                start_line: l.start_line,
                                end_line: t.line,
                                merge: l.merge,
                            });
                        }
                    }
                }
                // p3 frames close with their loop. A call that never
                // mentioned a name bound by this loop is invariant *here*;
                // it escalates to the parent frame (a nested loop may still
                // vary it) and becomes a fact at the outermost close.
                while pstate.frames.last().is_some_and(|f| f.depth == depth) {
                    let Some(frame) = pstate.frames.pop() else { break };
                    for call in frame.calls {
                        if call.args.iter().any(|a| frame.bound.contains(a)) {
                            continue; // varying: recomputed for a reason
                        }
                        if let Some(parent) = pstate.frames.last_mut() {
                            parent.calls.push(call);
                        } else if let Some(&(_, fi)) = fn_stack.last() {
                            if dirs.allows_on(RuleId::P3, call.line) {
                                out.used_allows.push((call.line, RuleId::P3));
                            } else {
                                out.fns[fi].pfacts.push(PFact {
                                    rule: RuleId::P3,
                                    label: format!(
                                        "loop-invariant {}(..) recomputed per iteration",
                                        call.helper
                                    ),
                                    line: call.line,
                                    col: call.col,
                                });
                            }
                        }
                    }
                }
                // Guards die with the block they were acquired in.
                conc.guards.retain(|(d, _, _)| *d <= depth);
                while mod_stack.last().is_some_and(|(d, _)| *d == depth) {
                    mod_stack.pop();
                }
                while impl_stack.last().is_some_and(|(d, _, _)| *d == depth) {
                    impl_stack.pop();
                }
                while fn_stack.last().is_some_and(|(d, _)| *d == depth) {
                    fn_stack.pop();
                }
                while test_stack.last().is_some_and(|d| *d == depth) {
                    test_stack.pop();
                }
            }
            _ => {}
        }

        // Body-level extraction: calls, sinks, sources, concurrency facts
        // — attributed to the innermost open fn, outside test scope.
        if !in_test {
            // Receiver-type ascriptions feed the p-rule tables even outside
            // fn bodies (struct fields type the receivers methods use).
            collect_ascription(tokens, i, &mut pstate);
            if let Some(&(_, fi)) = fn_stack.last() {
                extract_at(
                    tokens, i, &impl_stack, dirs, &mut out, fi, &mut conc, &mut pstate, depth,
                );
            }
        }

        i += 1;
    }

    // Deferred p-fact resolution: the witness and receiver-type tables are
    // file-level and only complete now.
    for (fi, recv, label, line, col) in std::mem::take(&mut pstate.deferred_p1) {
        if pstate.witnessed.contains(&recv) {
            continue;
        }
        push_pfact(&mut out, fi, dirs, RuleId::P1, label, line, col);
    }
    for (fi, recv, method, line, col) in std::mem::take(&mut pstate.lookups) {
        if pstate.collections.get(&recv).map(String::as_str) != Some("BTreeMap") {
            continue;
        }
        push_pfact(
            &mut out,
            fi,
            dirs,
            RuleId::P2,
            format!("{recv}.{method}() on a BTreeMap (dense BlockIndex/column exists)"),
            line,
            col,
        );
    }
    for (fi, recv, line, col) in std::mem::take(&mut pstate.clones) {
        // `Bytes` is exempt: post-refactor it is a zero-copy view and its
        // clone is a refcount bump, not an allocation.
        let Some(ty) = pstate.collections.get(&recv) else { continue };
        if ty == "Bytes" {
            continue;
        }
        push_pfact(
            &mut out,
            fi,
            dirs,
            RuleId::P1,
            format!("{recv}.clone() of {ty}"),
            line,
            col,
        );
    }

    out
}

/// Records a p-rule fact on fn `fi`, or consumes a line allow for it.
fn push_pfact(
    out: &mut FileIndex,
    fi: usize,
    dirs: &Directives,
    rule: RuleId,
    label: String,
    line: usize,
    col: usize,
) {
    if dirs.allows_on(rule, line) {
        out.used_allows.push((line, rule));
        return;
    }
    out.fns[fi].pfacts.push(PFact { rule, label, line, col });
}

/// Inspects the token at `i` inside a fn body and records any call, sink,
/// source or concurrency fact that *starts* there.
#[allow(clippy::too_many_arguments)]
fn extract_at(
    tokens: &[Token],
    i: usize,
    impl_stack: &[(usize, Option<String>, Option<String>)],
    dirs: &Directives,
    out: &mut FileIndex,
    fi: usize,
    conc: &mut ConcState,
    pstate: &mut PState,
    depth: usize,
) {
    let t = &tokens[i];

    match &t.tok {
        // `=` / `:` / `;` end a `let`'s pattern; bindings stop there.
        Tok::Punct('=') | Tok::Punct(':') | Tok::Punct(';') => {
            pstate.let_bind = false;
        }
        Tok::Ident(name) => {
            // Loop headers: the next `{` opens this loop's body (rule c4).
            if matches!(name.as_str(), "for" | "while" | "loop") {
                conc.pending_loop = Some(t.line);
                // A `for` pattern binds fresh names every iteration (p3).
                pstate.collecting = name == "for";
                pstate.pending_bound.clear();
                return;
            }
            // Collect `for`-pattern idents until the `in` keyword.
            if pstate.collecting {
                if name == "in" {
                    pstate.collecting = false;
                } else if !is_keyword(name) {
                    pstate.pending_bound.push(name.clone());
                }
                return;
            }
            // `dyn` in a body: boxed closure / trait object — p4.
            if name == "dyn" {
                push_pfact(
                    out,
                    fi,
                    dirs,
                    RuleId::P4,
                    "dyn (dynamic dispatch)".into(),
                    t.line,
                    t.col,
                );
                return;
            }
            // p3 binding bookkeeping inside open loop frames: `let`
            // patterns and assignment targets vary per iteration.
            if name == "let" {
                if !pstate.frames.is_empty() {
                    pstate.let_bind = true;
                }
                return;
            }
            if !pstate.frames.is_empty() && !is_keyword(name) {
                if pstate.let_bind {
                    pstate.bind(name);
                } else if is_assignment_target(tokens, i) {
                    pstate.bind(name);
                }
            }
            // Interior-mutability types named in a body — constructors
            // (`RefCell::new`) and ascriptions (`let x: Cell<u64>`) — are
            // c1 hazards (rule c1; shared state must not reach the
            // parallel region unaudited).
            if INTERIOR_MUT_TYPES.contains(&name.as_str())
                && tokens
                    .get(i + 1)
                    .is_some_and(|n| n.is_punct(':') || n.is_punct('<'))
            {
                if dirs.allows_on(RuleId::C1, t.line) {
                    out.used_allows.push((t.line, RuleId::C1));
                } else {
                    out.fns[fi].hazards.push(Hazard {
                        what: name.clone(),
                        line: t.line,
                        col: t.col,
                    });
                }
                // Fall through: `RefCell::new(` is also a path call.
            }
            // Sink macros: `panic!`, `unreachable!`, ...
            if SINK_MACROS.contains(&name.as_str())
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                // p5: a formatted message — the lexer masks string
                // literals, so `panic!("{}", x)` tokenizes as `panic ! ( ,
                // x )`: any surviving token before `)` means per-call
                // message construction.
                if tokens.get(i + 2).is_some_and(|n| n.is_punct('('))
                    && tokens.get(i + 3).is_some_and(|n| !n.is_punct(')'))
                {
                    push_pfact(
                        out,
                        fi,
                        dirs,
                        RuleId::P5,
                        format!("formatted {name}! message"),
                        t.line,
                        t.col,
                    );
                }
                push_sink(out, fi, dirs, SinkKind::Macro(name.clone()), t.line, t.col);
                return;
            }
            // Allocation macros: `vec![..]` always heap-allocates; a bare
            // `format!` is a fresh String per call. `Err(format!(..))` is
            // the p5 shape (per-probe error construction) instead.
            if name == "vec" && tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                push_pfact(out, fi, dirs, RuleId::P1, "vec![..]".into(), t.line, t.col);
                return;
            }
            if name == "format" && tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                let in_err = i >= 2
                    && tokens[i - 1].is_punct('(')
                    && tokens[i - 2].ident() == Some("Err");
                let (rule, label) = if in_err {
                    (RuleId::P5, "Err(format!(..))".to_string())
                } else {
                    (RuleId::P1, "format!".to_string())
                };
                push_pfact(out, fi, dirs, rule, label, t.line, t.col);
                return;
            }
            // Collection constructors: `X::with_capacity`/`.reserve` are
            // capacity *witnesses*; `X::new`/`X::default` defer their
            // verdict to the witness table; `X::from` and
            // `Bytes::copy_from_slice` always allocate a fresh buffer.
            if (COLLECTION_TYPES.contains(&name.as_str()) || name == "Box")
                && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && tokens.get(i + 4).is_some_and(|n| n.is_punct('('))
            {
                if let Some(ctor) = tokens.get(i + 3).and_then(Token::ident) {
                    let recv = binding_receiver(tokens, i);
                    match ctor {
                        "with_capacity" => {
                            if let Some(r) = recv {
                                pstate.collections.insert(r.clone(), name.clone());
                                pstate.witnessed.push(r);
                            }
                        }
                        "new" | "default" if name != "Box" => {
                            if let Some(r) = recv {
                                pstate.collections.insert(r.clone(), name.clone());
                                pstate.deferred_p1.push((
                                    fi,
                                    r.clone(),
                                    format!(
                                        "{name}::{ctor} on `{r}` (no capacity witness \
                                         in this file)"
                                    ),
                                    t.line,
                                    t.col,
                                ));
                            } else {
                                push_pfact(
                                    out,
                                    fi,
                                    dirs,
                                    RuleId::P1,
                                    format!("{name}::{ctor}"),
                                    t.line,
                                    t.col,
                                );
                            }
                        }
                        "new" | "from" | "copy_from_slice" => {
                            if let Some(r) = recv {
                                pstate.collections.insert(r, name.clone());
                            }
                            push_pfact(
                                out,
                                fi,
                                dirs,
                                RuleId::P1,
                                format!("{name}::{ctor}"),
                                t.line,
                                t.col,
                            );
                        }
                        _ => {}
                    }
                }
                // Fall through: `X::ctor(` is also a path call.
            }
            // Nondeterminism sources (mirrors token rule d2).
            if name == "thread_rng" {
                push_source(out, fi, dirs, "thread_rng", t.line, t.col);
                return;
            }
            let path2 = |a: &str, b: &str| {
                t.ident() == Some(a)
                    && tokens.get(i + 1).is_some_and(|x| x.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|x| x.is_punct(':'))
                    && tokens.get(i + 3).and_then(Token::ident) == Some(b)
            };
            if path2("SystemTime", "now") {
                push_source(out, fi, dirs, "SystemTime::now", t.line, t.col);
                return;
            }
            if path2("Instant", "now") {
                push_source(out, fi, dirs, "Instant::now", t.line, t.col);
                return;
            }
            if path2("std", "env") {
                push_source(out, fi, dirs, "std::env", t.line, t.col);
                return;
            }
        }
        // Method sinks & method calls both hang off the `.`.
        Tok::Punct('.') => {
            if let Some(m) = tokens.get(i + 1).and_then(Token::ident) {
                // `x.m(` directly, or `x.m::<T>(` through a turbofish.
                let mut call_paren = i + 2;
                if tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(i + 4).is_some_and(|n| n.is_punct('<'))
                {
                    let mut k = i + 5;
                    let mut angle = 1usize;
                    while let Some(n) = tokens.get(k) {
                        if n.is_punct('<') {
                            angle += 1;
                        } else if n.is_punct('>') {
                            angle -= 1;
                            if angle == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    call_paren = k + 1;
                }
                if tokens.get(call_paren).is_some_and(|n| n.is_punct('(')) {
                    let mt = &tokens[i + 1];
                    if SINK_METHODS.contains(&m) {
                        // An audited unwrap carries allow(h2) (the token
                        // rule) or allow(g1); either kills the sink.
                        let audited = dirs.allows_on(RuleId::G1, mt.line)
                            || dirs.allows_on(RuleId::H2, mt.line);
                        if dirs.allows_on(RuleId::G1, mt.line) {
                            out.used_allows.push((mt.line, RuleId::G1));
                        }
                        if !audited {
                            out.fns[fi].sinks.push(Sink {
                                kind: SinkKind::Method(m.to_string()),
                                line: mt.line,
                                col: mt.col,
                            });
                        }
                    } else {
                        out.fns[fi].calls.push(Call {
                            path: vec![m.to_string()],
                            method: true,
                            line: mt.line,
                            col: mt.col,
                        });
                        // Concurrency facts hang off the same method call.
                        // The receiver is the identifier before the `.`;
                        // an unnameable receiver (`make_lock().lock()`)
                        // degrades to `<expr>`.
                        let receiver = (i > 0)
                            .then(|| tokens[i - 1].ident())
                            .flatten()
                            .filter(|r| !is_keyword(r));
                        // c3: any blocking call while a `let`-bound guard
                        // is live — including a second `.lock()`, since a
                        // std Mutex is not reentrant.
                        if BLOCKING_METHODS.contains(&m) {
                            if let Some((_, guard_lock, guard_line)) = conc.guards.first() {
                                if dirs.allows_on(RuleId::C3, mt.line) {
                                    out.used_allows.push((mt.line, RuleId::C3));
                                } else {
                                    out.fns[fi].blocked_guards.push(BlockingUnderGuard {
                                        what: format!("{m}()"),
                                        guard_lock: guard_lock.clone(),
                                        guard_line: *guard_line,
                                        line: mt.line,
                                        col: mt.col,
                                    });
                                }
                            }
                        }
                        if m == "lock" {
                            let lock = receiver.unwrap_or("<expr>").to_string();
                            // c2: record the acquisition for the lock-order
                            // graph; allow(c2) on the line excludes it.
                            if dirs.allows_on(RuleId::C2, mt.line) {
                                out.used_allows.push((mt.line, RuleId::C2));
                            } else {
                                out.fns[fi].locks.push(LockAcq {
                                    lock: lock.clone(),
                                    line: mt.line,
                                    col: mt.col,
                                });
                            }
                            // A `let`-bound guard stays live to the end of
                            // its block; a temporary dies at the `;` and
                            // is not tracked.
                            if stmt_has_let(tokens, i) {
                                conc.guards.push((depth, lock, mt.line));
                            }
                        }
                        // c4: an unindexed receive inside a loop observes
                        // channel-arrival order. `rx[k].recv()` (receiver
                        // ends in `]`) is the blessed shard-indexed shape.
                        if RECV_METHODS.contains(&m) {
                            let indexed = i > 0 && tokens[i - 1].is_punct(']');
                            let in_loop =
                                conc.loops.last().is_some() || conc.pending_loop.is_some();
                            if !indexed && in_loop {
                                if dirs.allows_on(RuleId::C4, mt.line) {
                                    out.used_allows.push((mt.line, RuleId::C4));
                                } else {
                                    let site = (format!("{m}()"), mt.line, mt.col);
                                    match conc.loops.last_mut() {
                                        Some(l) if conc.pending_loop.is_none() => {
                                            if l.recv.is_none() {
                                                l.recv = Some(site);
                                            }
                                        }
                                        // Loop header: attach when `{` opens.
                                        _ => {
                                            if conc.pending_recv.is_none() {
                                                conc.pending_recv = Some(site);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        if m == "merge" {
                            if let Some(l) = conc.loops.last_mut() {
                                if l.merge.is_none() {
                                    l.merge = Some((mt.line, mt.col));
                                }
                            }
                        }
                        // p-rule method facts. Deferred ones resolve at end
                        // of file against the witness / receiver-type
                        // tables; immediate ones always allocate.
                        match m {
                            "reserve" | "with_capacity" => {
                                if let Some(r) = receiver {
                                    pstate.witnessed.push(r.to_string());
                                }
                            }
                            "push" | "push_back" | "insert" | "extend_from_slice" => {
                                if let Some(r) = receiver {
                                    pstate.deferred_p1.push((
                                        fi,
                                        r.to_string(),
                                        format!(
                                            "{r}.{m} (no capacity witness in this file)"
                                        ),
                                        mt.line,
                                        mt.col,
                                    ));
                                }
                            }
                            "to_string" | "to_vec" | "collect" => {
                                push_pfact(
                                    out,
                                    fi,
                                    dirs,
                                    RuleId::P1,
                                    format!("{m}()"),
                                    mt.line,
                                    mt.col,
                                );
                            }
                            "clone" => {
                                if let Some(r) = receiver {
                                    pstate.clones.push((fi, r.to_string(), mt.line, mt.col));
                                }
                            }
                            "get" | "contains_key" => {
                                if let Some(r) = receiver {
                                    pstate.lookups.push((
                                        fi,
                                        r.to_string(),
                                        m.to_string(),
                                        mt.line,
                                        mt.col,
                                    ));
                                }
                            }
                            // p3 method-form helpers: the receiver counts
                            // as an argument for invariance.
                            "emit" | "encode_payload" => {
                                if let Some(frame) = pstate.frames.last_mut() {
                                    let mut args = call_arg_idents(tokens, call_paren);
                                    if let Some(r) = receiver {
                                        args.push(r.to_string());
                                    }
                                    frame.calls.push(P3Call {
                                        helper: m.to_string(),
                                        line: mt.line,
                                        col: mt.col,
                                        args,
                                    });
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            return;
        }
        // Indexing: `[` directly after a value-ish token.
        Tok::Punct('[') => {
            let indexed = i > 0
                && match &tokens[i - 1].tok {
                    Tok::Ident(s) => !is_keyword(s),
                    Tok::Punct(')') | Tok::Punct(']') => true,
                    _ => false,
                };
            // Full-range `x[..]` cannot panic; `x[..n]`/`x[a..b]` can.
            let full_range = tokens.get(i + 1).is_some_and(|a| a.is_punct('.'))
                && tokens.get(i + 2).is_some_and(|a| a.is_punct('.'))
                && tokens.get(i + 3).is_some_and(|a| a.is_punct(']'));
            if indexed && !full_range {
                push_sink(out, fi, dirs, SinkKind::Index, t.line, t.col);
            }
            return;
        }
        _ => return,
    }

    // Free-function / path calls: an ident directly followed by `(`.
    // Detection fires at the *last* path segment (`a::b::f(` fires at
    // `f`), and the whole path is collected in one bounded backward walk.
    if tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        let Some(name) = t.ident() else { return };
        if is_keyword(name) {
            return;
        }
        // Method calls were handled at the `.`; a `.`-preceded ident here
        // would double count.
        if i > 0 && tokens[i - 1].is_punct('.') {
            return;
        }
        // Walk back through `seg ::` pairs to collect the full path.
        let mut segs = vec![name.to_string()];
        let mut j = i;
        while j >= 2
            && tokens[j - 1].is_punct(':')
            && tokens[j - 2].is_punct(':')
        {
            // `Vec::<u8>::new` style turbofish segments would put a `>`
            // here; stop at anything that is not a plain ident.
            if j >= 3 {
                if let Some(seg) = tokens[j - 3].ident() {
                    segs.push(seg.to_string());
                    j -= 3;
                    continue;
                }
            }
            break;
        }
        segs.reverse();
        // Substitute a leading `Self` with the enclosing impl type.
        if segs.first().is_some_and(|s| s == "Self") {
            if let Some((_, Some(ty), _)) = impl_stack.last() {
                segs[0] = ty.clone();
            }
        }
        // p3 path-form helpers (`checksum::internet_checksum(..)` etc.)
        // inside an open loop frame: held until the loop closes.
        if P3_HELPERS.contains(&name) {
            if let Some(frame) = pstate.frames.last_mut() {
                frame.calls.push(P3Call {
                    helper: name.to_string(),
                    line: t.line,
                    col: t.col,
                    args: call_arg_idents(tokens, i + 1),
                });
            }
        }
        out.fns[fi].calls.push(Call {
            path: segs,
            method: false,
            line: t.line,
            col: t.col,
        });
    }
}

/// Looks backward from the `.` of a `.lock()` call to the start of the
/// statement (`;`, `{` or `}`) for a `let`: decides whether the call
/// binds a live guard or produces a same-statement temporary. The scan is
/// bounded; a pathological 256-token statement degrades to "no guard",
/// i.e. c3 under-approximates rather than scanning the whole file.
fn stmt_has_let(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    let floor = i.saturating_sub(256);
    while j > floor {
        j -= 1;
        match &tokens[j].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => return false,
            Tok::Ident(s) if s == "let" => return true,
            _ => {}
        }
    }
    false
}

fn push_sink(
    out: &mut FileIndex,
    fi: usize,
    dirs: &Directives,
    kind: SinkKind,
    line: usize,
    col: usize,
) {
    if dirs.allows_on(RuleId::G1, line) {
        out.used_allows.push((line, RuleId::G1));
        return;
    }
    out.fns[fi].sinks.push(Sink { kind, line, col });
}

fn push_source(
    out: &mut FileIndex,
    fi: usize,
    dirs: &Directives,
    what: &str,
    line: usize,
    col: usize,
) {
    if dirs.allows_on(RuleId::G2, line) {
        out.used_allows.push((line, RuleId::G2));
        return;
    }
    out.fns[fi].sources.push(NondetSource {
        what: what.to_string(),
        line,
        col,
    });
}

/// Recursive-descent parse of a `use` tree between `j` and `end`
/// (exclusive), accumulating aliases into `uses`.
fn parse_use_tree(
    tokens: &[Token],
    j: &mut usize,
    end: usize,
    prefix: &mut Vec<String>,
    uses: &mut BTreeMap<String, Vec<String>>,
) {
    let base_len = prefix.len();
    let mut last_seg: Option<String> = None;
    while *j < end {
        let t = &tokens[*j];
        match &t.tok {
            Tok::Ident(s) if s == "as" => {
                // `path as alias`
                *j += 1;
                if let Some(alias) = tokens.get(*j).and_then(Token::ident) {
                    let mut full = prefix.clone();
                    if let Some(seg) = last_seg.take() {
                        full.push(seg);
                    }
                    uses.insert(alias.to_string(), full);
                    *j += 1;
                }
            }
            Tok::Ident(s) => {
                if let Some(seg) = last_seg.take() {
                    prefix.push(seg);
                }
                last_seg = Some(s.clone());
                *j += 1;
            }
            Tok::Punct(':') => {
                *j += 1;
            }
            Tok::Punct('{') => {
                if let Some(seg) = last_seg.take() {
                    prefix.push(seg);
                }
                *j += 1;
                // Each `,`-separated branch restarts from this prefix.
                loop {
                    parse_use_tree(tokens, j, end, prefix, uses);
                    if tokens.get(*j).is_some_and(|t| t.is_punct(',')) && *j < end {
                        *j += 1;
                        continue;
                    }
                    break;
                }
                if tokens.get(*j).is_some_and(|t| t.is_punct('}')) {
                    *j += 1;
                }
                prefix.truncate(base_len);
                return;
            }
            Tok::Punct('}') | Tok::Punct(',') => break,
            _ => {
                *j += 1;
            }
        }
    }
    // A trailing plain segment is itself an importable name.
    if let Some(seg) = last_seg {
        if seg != "*" {
            let mut full = prefix.clone();
            full.push(seg.clone());
            uses.insert(seg, full);
        }
    }
    prefix.truncate(base_len);
}
