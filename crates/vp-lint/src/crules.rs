//! The concurrency rules: layer four of the graph engine.
//!
//! | id | rule |
//! |----|------|
//! | c1 | no fn in the parallel region may transitively reach shared mutable state: `static mut`, a non-`Sync` static, or a `Cell` / `RefCell` / `UnsafeCell` construction |
//! | c2 | the lock-acquisition order over the parallel region must be acyclic — any cycle is a deadlock witness |
//! | c3 | no fn in the parallel region may block (`recv` / `join` / `lock`) while a `let`-bound lock guard is live |
//! | c4 | cross-thread results must be folded in shard-id order, not channel-arrival order: a non-indexed `recv` loop that merges is a nondeterministic fold |
//! | c5 | `thread::spawn` / `thread::scope` only inside the blessed executor ([`crate::rules::BLESSED_EXECUTOR_FILE`]) — a token rule, evaluated in [`crate::rules`] |
//!
//! ## The parallel region
//!
//! The region is computed from the call graph, not annotated. The
//! **blessed nodes** are every fn defined in the blessed executor file.
//! An **entry** is any non-blessed fn with a call edge into a blessed
//! node — lexically, that is a fn that invokes `run_sharded` (or any
//! executor API), so the closure it passes runs on worker threads and
//! its body's calls are attributed to the entry itself. The region is
//! the forward closure of the entries, *excluding* the blessed nodes
//! (the executor's own internals are the vouched-for trusted base —
//! that is what "blessed" buys).
//!
//! c1 is reported at region entries with a g1-style witness path; c2 is
//! a cycle over the interprocedural lock-acquisition graph of the
//! region; c3 is resolved intraprocedurally at index time and filtered
//! to the region here; c4 combines an intraprocedural form (a `.merge(`
//! in the recv loop itself) with an interprocedural one (a loop-body
//! call that reaches a fn named `merge`).
//!
//! Suppression model (mirrors g1/g2):
//! * line allows are consumed at **index time**: `allow(c1)` on the
//!   hazard or static line, `allow(c2)` on the acquisition, `allow(c3)`
//!   on the blocking call, `allow(c4)` on the receive;
//! * on a **fn definition line**: `allow(c1)` marks the fn's state
//!   thread-confined (taint does not propagate out), `allow(c2)`
//!   excludes the fn's acquisitions from the lock-order graph. The
//!   fn-level allow is live (for g3) only if the fn is in the region
//!   and the audit actually removed something.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::Graph;
use crate::grules::{propagate, witness_path, Witness};
use crate::index::FileIndex;
use crate::rules::{Finding, RuleId, BLESSED_EXECUTOR_FILE};

/// The parallel region: entries (fns that hand a closure to the blessed
/// executor) and everything reachable from them, minus the executor
/// itself.
pub struct Region {
    /// Node indices with a call edge into the blessed file.
    pub entries: Vec<usize>,
    /// Forward closure of the entries (includes them), blessed excluded.
    pub members: BTreeSet<usize>,
}

/// Computes the parallel region from the call graph.
pub fn parallel_region(g: &Graph) -> Region {
    let blessed: BTreeSet<usize> = (0..g.nodes.len())
        .filter(|&i| g.nodes[i].file == BLESSED_EXECUTOR_FILE)
        .collect();
    let mut entries: Vec<usize> = Vec::new();
    for i in 0..g.nodes.len() {
        if blessed.contains(&i) {
            continue;
        }
        if g.edges[i].iter().any(|e| blessed.contains(&e.callee)) {
            entries.push(i);
        }
    }
    let mut members: BTreeSet<usize> = BTreeSet::new();
    let mut stack: Vec<usize> = entries.clone();
    while let Some(i) = stack.pop() {
        if blessed.contains(&i) || !members.insert(i) {
            continue;
        }
        for e in &g.edges[i] {
            if !members.contains(&e.callee) {
                stack.push(e.callee);
            }
        }
    }
    Region { entries, members }
}

/// Transitive lock names acquired at or below each node. Audited (c2)
/// nodes contribute nothing and do not propagate — their subtree is
/// vouched cycle-free, exactly like an audited node in g1 taint.
fn transitive_locks(g: &Graph) -> Vec<BTreeSet<String>> {
    let n = g.nodes.len();
    let mut locks: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for i in 0..n {
        if g.nodes[i].info.audited_c2 {
            continue;
        }
        for l in &g.nodes[i].info.locks {
            locks[i].insert(l.lock.clone());
        }
    }
    loop {
        let mut changed = false;
        for i in 0..n {
            if g.nodes[i].info.audited_c2 {
                continue;
            }
            for k in 0..g.edges[i].len() {
                let callee = g.edges[i][k].callee;
                if callee == i {
                    continue;
                }
                let add: Vec<String> = locks[callee]
                    .iter()
                    .filter(|l| !locks[i].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    locks[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    locks
}

/// Finds a cycle through `start` in the lock-order graph, if any.
/// Deterministic: neighbours are visited in `BTreeSet` order.
fn cycle_from(
    order: &BTreeMap<String, BTreeSet<String>>,
    start: &str,
    cur: &str,
    path: &mut Vec<String>,
    seen: &mut BTreeSet<String>,
) -> bool {
    let Some(nexts) = order.get(cur) else { return false };
    for next in nexts {
        if next == start {
            path.push(next.clone());
            return true;
        }
        if seen.insert(next.clone()) {
            path.push(next.clone());
            if cycle_from(order, start, next, path, seen) {
                return true;
            }
            path.pop();
        }
    }
    false
}

/// Evaluates c1–c4 over the graph and per-file indexes. Returns findings
/// plus the `(file, line, rule)` fn-level allow usages (feeds rule g3).
pub fn evaluate(g: &Graph, indexes: &[FileIndex]) -> (Vec<Finding>, Vec<(String, usize, RuleId)>) {
    let mut findings = Vec::new();
    let mut used: Vec<(String, usize, RuleId)> = Vec::new();

    let region = parallel_region(g);
    if region.entries.is_empty() {
        return (findings, used);
    }

    // ---- c1: shared mutable state reachable from the region ----------
    let t1 = propagate(
        g,
        |i| g.nodes[i].info.audited_c1,
        |i| {
            g.nodes[i]
                .info
                .hazards
                .iter()
                .min_by_key(|h| (h.line, h.col))
                .map(|h| Witness::Local(h.what.clone(), h.line, h.col))
        },
    );
    for &i in &region.members {
        let n = &g.nodes[i];
        if n.info.audited_c1 && t1.would_reach[i].is_some() {
            used.push((n.file.clone(), n.info.line, RuleId::C1));
        }
    }
    for &i in &region.entries {
        let n = &g.nodes[i];
        if !n.info.audited_c1 {
            if t1.reach[i].is_some() {
                let witness = witness_path(g, &t1, i);
                findings.push(Finding {
                    file: n.file.clone(),
                    line: n.info.line,
                    col: n.info.col,
                    rule: RuleId::C1,
                    message: format!(
                        "parallel region entered at `{}` reaches shared mutable state: {}",
                        n.id,
                        witness.join(" -> ")
                    ),
                    witness,
                });
            }
        }
    }
    // File-scoped statics: a `static mut` / non-`Sync` static is reachable
    // by every fn in its file, so it fires when any of them is in the
    // region (the static itself carries no call edges).
    let region_files: BTreeSet<&str> = region
        .members
        .iter()
        .map(|&i| g.nodes[i].file.as_str())
        .collect();
    for fx in indexes {
        if !region_files.contains(fx.file.as_str()) {
            continue;
        }
        for h in &fx.statics {
            findings.push(Finding {
                file: fx.file.clone(),
                line: h.line,
                col: h.col,
                rule: RuleId::C1,
                message: format!(
                    "`{}` is shared mutable state in a file whose fns run in the parallel region",
                    h.what
                ),
                witness: vec![format!("{} ({}:{})", h.what, fx.file, h.line)],
            });
        }
    }

    // ---- c2: lock-order cycles over the region -----------------------
    let trans = transitive_locks(g);
    // lock -> locks acquired while it is (lexically) already acquired.
    let mut order: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    // lock -> its first acquisition site in the region, for anchoring.
    let mut first_acq: BTreeMap<String, (String, usize, usize, String)> = BTreeMap::new();
    for &i in &region.members {
        let n = &g.nodes[i];
        if n.info.audited_c2 {
            if !n.info.locks.is_empty() {
                used.push((n.file.clone(), n.info.line, RuleId::C2));
            }
            continue;
        }
        let mut acqs: Vec<_> = n.info.locks.clone();
        acqs.sort_by_key(|l| (l.line, l.col));
        for l in &acqs {
            let key = (n.file.clone(), l.line, l.col, n.id.clone());
            let e = first_acq.entry(l.lock.clone()).or_insert_with(|| key.clone());
            if key < *e {
                *e = key;
            }
        }
        // Intra-fn: every later acquisition orders after every earlier one.
        for a in 0..acqs.len() {
            for b in (a + 1)..acqs.len() {
                if acqs[a].lock != acqs[b].lock {
                    order
                        .entry(acqs[a].lock.clone())
                        .or_default()
                        .insert(acqs[b].lock.clone());
                }
            }
        }
        // Interprocedural: a call positioned after an acquisition may
        // acquire the callee's transitive locks while ours is held.
        for a in &acqs {
            for e in &g.edges[i] {
                if (e.line, e.col) <= (a.line, a.col) {
                    continue;
                }
                for l in &trans[e.callee] {
                    if *l != a.lock {
                        order.entry(a.lock.clone()).or_default().insert(l.clone());
                    }
                }
            }
        }
    }
    let mut reported_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in order.keys() {
        let mut path = vec![start.clone()];
        let mut seen: BTreeSet<String> = BTreeSet::new();
        seen.insert(start.clone());
        if cycle_from(&order, start, start, &mut path, &mut seen) {
            let mut key: Vec<String> = path[..path.len() - 1].to_vec();
            key.sort();
            if !reported_cycles.insert(key) {
                continue;
            }
            // `start` is the smallest member of this cycle (keys iterate
            // in sorted order and every member reaches itself), so the
            // finding anchors at its first acquisition.
            if let Some((file, line, col, fn_id)) = first_acq.get(start) {
                let witness: Vec<String> = path
                    .iter()
                    .map(|l| match first_acq.get(l) {
                        Some((f, ln, _, id)) => format!("`{l}` in {id} ({f}:{ln})"),
                        None => format!("`{l}`"),
                    })
                    .collect();
                findings.push(Finding {
                    file: file.clone(),
                    line: *line,
                    col: *col,
                    rule: RuleId::C2,
                    message: format!(
                        "lock-order cycle in the parallel region — two shards can deadlock: {}",
                        path.iter().map(|l| format!("`{l}`")).collect::<Vec<_>>().join(" -> ")
                    ),
                    witness,
                });
                let _ = fn_id;
            }
        }
    }

    // ---- c3: blocking while a guard is live (region-filtered) --------
    for &i in &region.members {
        let n = &g.nodes[i];
        for b in &n.info.blocked_guards {
            findings.push(Finding {
                file: n.file.clone(),
                line: b.line,
                col: b.col,
                rule: RuleId::C3,
                message: format!(
                    "`{}` blocks while the `{}` guard (line {}) is live in the parallel \
                     region — drop the guard before blocking",
                    b.what, b.guard_lock, b.guard_line
                ),
                witness: vec![
                    format!("guard of `{}` taken ({}:{})", b.guard_lock, n.file, b.guard_line),
                    format!("{} blocks ({}:{})", b.what, n.file, b.line),
                ],
            });
        }
    }

    // ---- c4: arrival-order folds -------------------------------------
    // Interprocedural half: does a callee reach a fn named `merge`?
    let tm = propagate(
        g,
        |_| false,
        |i| {
            let inf = &g.nodes[i].info;
            (inf.name == "merge")
                .then(|| Witness::Local(format!("fn {}", g.nodes[i].id), inf.line, inf.col))
        },
    );
    for &i in &region.members {
        let n = &g.nodes[i];
        for rl in &n.info.recv_loops {
            if let Some((ml, _mc)) = rl.merge {
                findings.push(Finding {
                    file: n.file.clone(),
                    line: rl.recv_line,
                    col: rl.recv_col,
                    rule: RuleId::C4,
                    message: format!(
                        "`{}` loop folds results in channel-arrival order (`.merge(` on \
                         line {ml}) — receive per shard id (`rx[k].recv()`) so the fold \
                         order is deterministic",
                        rl.recv_what
                    ),
                    witness: vec![
                        format!("{} in loop ({}:{})", rl.recv_what, n.file, rl.recv_line),
                        format!("merge ({}:{ml})", n.file),
                    ],
                });
                continue;
            }
            let mut best: Option<usize> = None;
            for e in &g.edges[i] {
                if e.line < rl.start_line || e.line > rl.end_line {
                    continue;
                }
                if tm.reach[e.callee].is_some() {
                    let better = match best {
                        None => true,
                        Some(b) => g.nodes[e.callee].id < g.nodes[b].id,
                    };
                    if better {
                        best = Some(e.callee);
                    }
                }
            }
            if let Some(callee) = best {
                let mut witness = vec![format!(
                    "{} in loop ({}:{})",
                    rl.recv_what, n.file, rl.recv_line
                )];
                witness.extend(witness_path(g, &tm, callee));
                findings.push(Finding {
                    file: n.file.clone(),
                    line: rl.recv_line,
                    col: rl.recv_col,
                    rule: RuleId::C4,
                    message: format!(
                        "`{}` loop folds results in channel-arrival order: {} — receive \
                         per shard id so the fold order is deterministic",
                        rl.recv_what,
                        witness.join(" -> ")
                    ),
                    witness,
                });
            }
        }
    }

    (findings, used)
}
