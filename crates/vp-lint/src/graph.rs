//! The conservative call graph: layer two of the graph engine.
//!
//! Nodes are the `fn` definitions the indexer found in library code
//! (tests, benches, examples and binaries are out — they are not part of
//! any crate's public determinism surface). Edges come from name
//! resolution over the item index:
//!
//! * **path calls** (`a::b::f(..)`) resolve by *segment-suffix match*
//!   against every definition's qualified path, after expanding a leading
//!   segment through the file's `use` aliases and normalising
//!   `crate`/`self`/`super` heads;
//! * **method calls** (`x.f(..)`) resolve to every workspace definition
//!   named `f` — the receiver's type is unknown to a lexical analyzer;
//! * both are filtered by **crate visibility**: a call in crate `c` can
//!   only land in `c` itself or a (transitive) dependency of `c`, as
//!   declared in the workspace `Cargo.toml`s. Cargo enforces exactly this
//!   at build time, so the filter removes impossible edges only.
//!
//! Ambiguity is handled by over-approximation: if several definitions
//! match, the call gets an edge to each of them (`Edge::ambiguity` counts
//! the candidates). A call matching nothing is external (std or a
//! vendored stand-in) and contributes no edge — its panics are visible to
//! g1 only through the lexical sink tokens (`unwrap`, `panic!`, indexing)
//! at the call site itself. Function-pointer and closure indirection is
//! not tracked; that boundary is documented in DESIGN.md §8.

use std::collections::{BTreeMap, BTreeSet};

use crate::index::{FileIndex, FnInfo};

/// A node in the call graph: one `fn` definition.
#[derive(Debug, Clone)]
pub struct Node {
    /// Stable id: the qualified name, de-duplicated with `@file:line` when
    /// two definitions share one (e.g. `cfg`-gated twins).
    pub id: String,
    pub info: FnInfo,
    pub file: String,
    pub crate_name: String,
}

/// A resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Index of the callee node.
    pub callee: usize,
    /// How many candidates the call resolved to (1 = unambiguous).
    pub ambiguity: usize,
    pub line: usize,
    pub col: usize,
}

/// The workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    pub nodes: Vec<Node>,
    /// Outgoing edges per node (deduplicated, sorted by callee id).
    pub edges: Vec<Vec<Edge>>,
    /// Calls that resolved to nothing, per node (for `graph` diagnostics).
    pub unresolved: Vec<Vec<String>>,
}

/// Workspace crate dependency map: crate → its *direct* workspace deps.
/// The empty-string crate is the root umbrella package.
pub type CrateDeps = BTreeMap<String, Vec<String>>;

/// Transitive visibility: `c` plus everything reachable through deps.
/// Crates absent from the map (e.g. a fixture crate without a manifest)
/// conservatively see every crate.
fn visible_crates(deps: &CrateDeps, c: &str) -> Option<BTreeSet<String>> {
    deps.get(c)?;
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut stack = vec![c.to_string()];
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur.clone()) {
            continue;
        }
        if let Some(ds) = deps.get(&cur) {
            for d in ds {
                if !seen.contains(d) {
                    stack.push(d.clone());
                }
            }
        }
    }
    Some(seen)
}

/// Does `candidate` (a definition's full path) end with the call path?
fn suffix_match(candidate: &[String], call: &[String]) -> bool {
    if call.len() > candidate.len() {
        return false;
    }
    candidate[candidate.len() - call.len()..]
        .iter()
        .zip(call)
        .all(|(a, b)| a == b)
}

impl Graph {
    /// Builds the graph from per-file indexes and the crate dep map.
    pub fn build(indexes: &[FileIndex], deps: &CrateDeps) -> Graph {
        let mut g = Graph::default();

        // 1. Nodes, with stable de-duplicated ids.
        let mut id_counts: BTreeMap<String, usize> = BTreeMap::new();
        for fx in indexes {
            for f in &fx.fns {
                let q = f.qualified();
                let n = id_counts.entry(q.clone()).or_insert(0);
                *n += 1;
                let id = if *n == 1 {
                    q
                } else {
                    format!("{q}@{}:{}", fx.file, f.line)
                };
                g.nodes.push(Node {
                    id,
                    info: f.clone(),
                    file: fx.file.clone(),
                    crate_name: fx.crate_name.clone(),
                });
            }
        }

        // 2. Name index: last path segment → node indices (BTree order of
        // insertion is by file then token order — deterministic).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in g.nodes.iter().enumerate() {
            by_name.entry(n.info.name.as_str()).or_default().push(i);
        }

        // Per-file use-alias maps, keyed by file (nodes carry the file).
        let mut uses_of: BTreeMap<&str, &BTreeMap<String, Vec<String>>> = BTreeMap::new();
        for fx in indexes {
            uses_of.insert(fx.file.as_str(), &fx.uses);
        }

        // 3. Edges.
        let node_count = g.nodes.len();
        for ni in 0..node_count {
            let node = g.nodes[ni].clone();
            let visible = visible_crates(deps, &node.crate_name);
            let mut out_edges: BTreeMap<usize, Edge> = BTreeMap::new();
            let mut unresolved: Vec<String> = Vec::new();

            for call in &node.info.calls {
                // Normalise the call path.
                let mut path: Vec<String> = call.path.clone();
                if !call.method {
                    // `crate::x::f` → caller crate's name; `self::f` →
                    // caller module; `super::f` → parent module.
                    match path.first().map(String::as_str) {
                        Some("crate") => {
                            path.remove(0);
                            let mut head = node.info.module.first().cloned();
                            if node.crate_name.is_empty() {
                                head = None;
                            }
                            if let Some(h) = head {
                                path.insert(0, h);
                            }
                        }
                        Some("self") => {
                            path.remove(0);
                            let mut m = node.info.module.clone();
                            m.extend(path);
                            path = m;
                        }
                        Some("super") => {
                            path.remove(0);
                            let mut m = node.info.module.clone();
                            m.pop();
                            m.extend(path);
                            path = m;
                        }
                        _ => {}
                    }
                    // Expand the head segment through this file's aliases.
                    if let Some(first) = path.first().cloned() {
                        if let Some(full) = uses_of.get(node.file.as_str()).and_then(|u| u.get(&first)) {
                            let mut p = full.clone();
                            p.extend(path.into_iter().skip(1));
                            path = p;
                        }
                    }
                    // Drop leading `std`/`core`/`alloc`: always external.
                    if matches!(
                        path.first().map(String::as_str),
                        Some("std") | Some("core") | Some("alloc")
                    ) {
                        continue;
                    }
                }

                let Some(last) = path.last() else { continue };
                // `vp_obs::Tracer::new` reaches `vp_obs::trace::Tracer::new`
                // through a crate-root `pub use`; the written path is then
                // not a segment suffix of the definition's. When the head
                // names a workspace crate, retry the match inside that
                // crate with the head stripped.
                let head_crate: Option<&str> = path
                    .first()
                    .map(String::as_str)
                    .filter(|_| !call.method && path.len() > 1)
                    .and_then(|h| {
                        g.nodes
                            .iter()
                            .map(|n| n.crate_name.as_str())
                            .find(|c| c.replace('-', "_") == h)
                    });
                let mut candidates: Vec<usize> = Vec::new();
                if let Some(cands) = by_name.get(last.as_str()) {
                    for &ci in cands {
                        let cand = &g.nodes[ci];
                        if let Some(vis) = &visible {
                            if !vis.contains(&cand.crate_name) {
                                continue;
                            }
                        }
                        if call.method || path.len() == 1 {
                            candidates.push(ci);
                        } else if suffix_match(&cand.info.path_segments(), &path) {
                            candidates.push(ci);
                        } else if head_crate == Some(cand.crate_name.as_str())
                            && suffix_match(&cand.info.path_segments(), &path[1..])
                        {
                            candidates.push(ci);
                        }
                    }
                }
                if candidates.is_empty() {
                    // Multi-segment paths that matched nothing by suffix
                    // are *not* retried by bare name: a fully-qualified
                    // path to a non-workspace item is external, and a
                    // misspelt one would not compile in the first place.
                    if path.len() == 1 || call.method {
                        unresolved.push(path.join("::"));
                    }
                    continue;
                }
                let ambiguity = candidates.len();
                for ci in candidates {
                    out_edges.entry(ci).or_insert(Edge {
                        callee: ci,
                        ambiguity,
                        line: call.line,
                        col: call.col,
                    });
                }
            }

            g.edges.push(out_edges.into_values().collect());
            g.unresolved.push(unresolved);
        }

        g
    }

    /// Node index by id.
    pub fn node_by_id(&self, id: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.id == id)
    }

    /// Renders the graph in Graphviz DOT form, clustered by crate.
    /// Deterministic: nodes and edges come out in node order.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph vp_calls {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        // Cluster nodes by crate.
        let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            by_crate.entry(n.crate_name.as_str()).or_default().push(i);
        }
        for (ci, (crate_name, nodes)) in by_crate.iter().enumerate() {
            let label = if crate_name.is_empty() { "(root)" } else { crate_name };
            out.push_str(&format!(
                "  subgraph cluster_{ci} {{\n    label=\"{label}\";\n"
            ));
            for &i in nodes {
                let n = &self.nodes[i];
                let mut attrs = String::new();
                if !n.info.sinks.is_empty() {
                    attrs.push_str(", color=red");
                }
                if !n.info.sources.is_empty() {
                    attrs.push_str(", color=orange");
                }
                if n.info.audited_g1 || n.info.audited_g2 {
                    attrs.push_str(", style=dashed");
                }
                out.push_str(&format!(
                    "    n{i} [label=\"{}\"{attrs}];\n",
                    n.id.replace('"', "'")
                ));
            }
            out.push_str("  }\n");
        }
        for (i, edges) in self.edges.iter().enumerate() {
            for e in edges {
                let style = if e.ambiguity > 1 {
                    format!(" [style=dotted, label=\"{}\"]", e.ambiguity)
                } else {
                    String::new()
                };
                out.push_str(&format!("  n{i} -> n{}{style};\n", e.callee));
            }
        }
        out.push_str("}\n");
        out
    }

    /// One-line per node summary (`graph` without `--dot`).
    pub fn to_summary(&self) -> String {
        let mut out = String::new();
        let total_edges: usize = self.edges.iter().map(Vec::len).sum();
        let unresolved: usize = self.unresolved.iter().map(Vec::len).sum();
        out.push_str(&format!(
            "call graph: {} nodes, {} edges, {} unresolved external calls\n",
            self.nodes.len(),
            total_edges,
            unresolved
        ));
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "{} [{}] calls={} sinks={} sources={}{}{}\n",
                n.id,
                n.file,
                self.edges[i].len(),
                n.info.sinks.len(),
                n.info.sources.len(),
                if n.info.audited_g1 { " audited-g1" } else { "" },
                if n.info.audited_g2 { " audited-g2" } else { "" },
            ));
        }
        out
    }
}
