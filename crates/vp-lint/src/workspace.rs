//! Workspace file discovery and the cross-file scan.
//!
//! This is the driver that ties the two analysis layers together. Every
//! file is lexed exactly once; the token stream feeds both the token
//! rules ([`crate::rules`]) and the graph engine
//! ([`crate::index`] → [`crate::graph`] → [`crate::grules`]). After both
//! layers run, rule g3 cross-checks every `allow(...)` directive against
//! the set of suppressions that actually fired.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::crules;
use crate::directives::{self, Allow};
use crate::graph::{CrateDeps, Graph};
use crate::grules::{self, Visibility};
use crate::index::{self, FileIndex};
use crate::lexer;
use crate::prules;
use crate::rules::{self, FileContext, Finding, RuleId};

/// Wall-time per analysis pass, in milliseconds: `(pass name, ms)`. The
/// clock is injected by the caller (the CLI uses a real one behind an
/// `allow(d2)`; the library default is a null clock reporting zeros) so
/// the library itself stays deterministic.
pub type PassTimes = Vec<(&'static str, u128)>;

/// Directory names never scanned: third-party stand-ins (`vendor` mirrors
/// upstream crates, not our determinism surface), build products, data, and
/// the analyzer's own violation fixtures.
const SKIP_DIRS: [&str; 6] = ["target", "vendor", ".git", "results", "fixtures", "node_modules"];

/// Recursively collects `.rs` files under `root`, sorted by relative path
/// so reports (and the tier-1 gate) are byte-stable across filesystems.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// The workspace-relative path of `path`, with `/` separators.
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// The crate dependency map declared by the workspace `Cargo.toml`s:
/// crate name → its direct workspace dependencies. The root umbrella
/// package is the empty-string crate. Crates without a manifest under
/// `root` (fixture trees) simply stay absent, which the graph layer
/// treats as "sees everything" — conservative, never under-approximate.
pub fn crate_deps(root: &Path) -> CrateDeps {
    let mut names: BTreeSet<String> = BTreeSet::new();
    if let Ok(rd) = fs::read_dir(root.join("crates")) {
        for entry in rd.flatten() {
            let p = entry.path();
            if p.join("Cargo.toml").is_file() {
                names.insert(entry.file_name().to_string_lossy().into_owned());
            }
        }
    }
    let mut deps = CrateDeps::new();
    for name in &names {
        if let Ok(text) = fs::read_to_string(root.join("crates").join(name).join("Cargo.toml")) {
            deps.insert(name.clone(), dep_names(&text, &names));
        }
    }
    if let Ok(text) = fs::read_to_string(root.join("Cargo.toml")) {
        if text.contains("[package]") {
            deps.insert(String::new(), dep_names(&text, &names));
        }
    }
    deps
}

/// Extracts the `[dependencies]` keys of one manifest, filtered to
/// workspace crate names (vendored and external deps are invisible to the
/// call graph anyway). Line-oriented on purpose: the manifests this
/// workspace writes are flat `name = { path = ".." }` tables.
fn dep_names(manifest: &str, workspace: &BTreeSet<String>) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let l = line.trim();
        if l.starts_with('[') {
            in_deps = l == "[dependencies]";
            if let Some(rest) = l.strip_prefix("[dependencies.") {
                let key = rest.trim_end_matches(']').trim().trim_matches('"');
                if workspace.contains(key) && !out.contains(&key.to_string()) {
                    out.push(key.to_string());
                }
            }
            continue;
        }
        if !in_deps || l.is_empty() || l.starts_with('#') {
            continue;
        }
        let key = l
            .split(['=', '.'])
            .next()
            .map(str::trim)
            .unwrap_or("")
            .trim_matches('"');
        if workspace.contains(key) && !out.contains(&key.to_string()) {
            out.push(key.to_string());
        }
    }
    out
}

/// Builds the visibility tables g1/g2 need from the per-file indexes.
pub fn visibility_of(indexes: &[FileIndex]) -> Visibility {
    let mut mod_pub: BTreeMap<(String, String), bool> = BTreeMap::new();
    let mut type_pub: BTreeMap<(String, String), bool> = BTreeMap::new();
    for fx in indexes {
        for m in &fx.mods {
            let parent = m.parent.join("::");
            let full = if parent.is_empty() {
                m.name.clone()
            } else {
                format!("{parent}::{}", m.name)
            };
            let e = mod_pub.entry((fx.crate_name.clone(), full)).or_insert(false);
            *e = *e || m.is_pub;
        }
        for t in &fx.types {
            let e = type_pub
                .entry((fx.crate_name.clone(), t.name.clone()))
                .or_insert(false);
            *e = *e || t.is_pub;
        }
    }
    Visibility { mod_pub, type_pub }
}

/// Indexes one set of files (library scope only — tests, benches,
/// examples and binaries are not part of any crate's API surface).
fn index_files(root: &Path, files: &[PathBuf]) -> io::Result<Vec<FileIndex>> {
    let mut indexes = Vec::new();
    for path in files {
        let bytes = fs::read(path)?;
        let source = String::from_utf8_lossy(&bytes);
        let ctx = FileContext::from_rel_path(&rel_path(root, path));
        if ctx.is_test || ctx.is_bin {
            continue;
        }
        let masked = lexer::mask(&source);
        let tokens = lexer::tokenize(&masked);
        let dirs = directives::parse(&masked.comments);
        indexes.push(index::index_file(&ctx, &tokens, &dirs));
    }
    Ok(indexes)
}

/// Builds the workspace call graph (the `vp-lint graph` subcommand).
pub fn build_graph(root: &Path) -> io::Result<Graph> {
    let files = collect_rs_files(root)?;
    let indexes = index_files(root, &files)?;
    Ok(Graph::build(&indexes, &crate_deps(root)))
}

/// Scans a set of files as one workspace rooted at `root`: token rules
/// per file, d3 across files, g1/g2, c1–c4 and p1–p5 over the call
/// graph, then g3 over the allow directives. Findings come back sorted.
pub fn scan_files(root: &Path, files: &[PathBuf]) -> io::Result<Vec<Finding>> {
    scan_files_timed(root, files, &|| 0).map(|(findings, _)| findings)
}

/// [`scan_files`] with an injected millisecond clock: also returns the
/// wall time each analysis pass took, so the bench budget gate can
/// attribute a blowup to a rule instead of to "the lint".
pub fn scan_files_timed(
    root: &Path,
    files: &[PathBuf],
    clock: &dyn Fn() -> u128,
) -> io::Result<(Vec<Finding>, PassTimes)> {
    let mut times: PassTimes = Vec::new();
    let t0 = clock();
    let mut findings = Vec::new();
    let mut merge_defs = Vec::new();
    let mut markers: Vec<rules::MarkerSite> = Vec::new();
    let mut test_fn_keys = Vec::new();
    let mut scanned_files: Vec<String> = Vec::new();
    let mut indexes: Vec<FileIndex> = Vec::new();
    // Every allow directive in the scanned set, and the (file, line, rule)
    // suppressions that actually fired — rule g3 is their difference.
    let mut allow_sites: Vec<(String, Allow)> = Vec::new();
    let mut used: BTreeSet<(String, usize, RuleId)> = BTreeSet::new();

    for path in files {
        let bytes = fs::read(path)?;
        let source = String::from_utf8_lossy(&bytes);
        let ctx = FileContext::from_rel_path(&rel_path(root, path));
        let masked = lexer::mask(&source);
        let tokens = lexer::tokenize(&masked);
        let dirs = directives::parse(&masked.comments);

        let mut scan = rules::scan_tokens(&ctx, &tokens, &dirs);
        for (line, rule) in scan.used_allows.drain(..) {
            used.insert((ctx.rel_path.clone(), line, rule));
        }
        findings.append(&mut scan.findings);
        merge_defs.append(&mut scan.merge_defs);
        for marker in scan.merge_markers.drain(..) {
            markers.push(rules::MarkerSite {
                file: ctx.rel_path.clone(),
                marker,
            });
        }
        test_fn_keys.append(&mut scan.test_fn_keys);
        scanned_files.push(ctx.rel_path.clone());

        if !ctx.is_test && !ctx.is_bin {
            let mut fx = index::index_file(&ctx, &tokens, &dirs);
            for (line, rule) in fx.used_allows.drain(..) {
                used.insert((ctx.rel_path.clone(), line, rule));
            }
            indexes.push(fx);
        }
        for a in &dirs.allows {
            allow_sites.push((ctx.rel_path.clone(), a.clone()));
        }
    }

    let (d3_findings, d3_used) =
        rules::resolve_merge_rule(&merge_defs, &markers, &test_fn_keys, &scanned_files);
    findings.extend(d3_findings);
    for (file, line) in d3_used {
        used.insert((file, line, RuleId::D3));
    }
    let t1 = clock();
    times.push(("token", t1 - t0));

    let graph = Graph::build(&indexes, &crate_deps(root));
    let t2 = clock();
    times.push(("graph", t2 - t1));

    let vis = visibility_of(&indexes);
    let (g_findings, g_used) = grules::evaluate(&graph, &vis);
    findings.extend(g_findings);
    for (file, line, rule) in g_used {
        used.insert((file, line, rule));
    }
    let t3 = clock();
    times.push(("grules", t3 - t2));

    let (c_findings, c_used) = crules::evaluate(&graph, &indexes);
    findings.extend(c_findings);
    for (file, line, rule) in c_used {
        used.insert((file, line, rule));
    }
    let t4 = clock();
    times.push(("crules", t4 - t3));

    let (p_findings, p_used) = prules::evaluate(&graph);
    findings.extend(p_findings);
    for (file, line, rule) in p_used {
        used.insert((file, line, rule));
    }
    let t5 = clock();
    times.push(("prules", t5 - t4));

    // g3 — a directive is live iff at least one of its rules suppressed
    // something on its target line. Stale allows are unsuppressible
    // findings (an allow(g3) would be a suppression that suppresses its
    // own removal notice).
    for (file, a) in &allow_sites {
        let live = a
            .rules
            .iter()
            .any(|r| used.contains(&(file.clone(), a.applies_to, *r)));
        if !live {
            let names: Vec<&str> = a.rules.iter().map(|r| r.name()).collect();
            findings.push(Finding {
                file: file.clone(),
                line: a.line,
                col: 1,
                rule: RuleId::G3,
                message: format!(
                    "stale suppression: allow({}) no longer suppresses any finding on \
                     line {} — remove it or narrow it to the rules still firing",
                    names.join(", "),
                    a.applies_to
                ),
                witness: Vec::new(),
            });
        }
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    times.push(("g3", clock() - t5));
    Ok((findings, times))
}

/// Scans every `.rs` file of the workspace at `root`.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let files = collect_rs_files(root)?;
    scan_files(root, &files)
}

/// Walks up from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
