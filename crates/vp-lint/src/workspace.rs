//! Workspace file discovery and the cross-file scan.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{self, FileContext, Finding};

/// Directory names never scanned: third-party stand-ins (`vendor` mirrors
/// upstream crates, not our determinism surface), build products, data, and
/// the analyzer's own violation fixtures.
const SKIP_DIRS: [&str; 6] = ["target", "vendor", ".git", "results", "fixtures", "node_modules"];

/// Recursively collects `.rs` files under `root`, sorted by relative path
/// so reports (and the tier-1 gate) are byte-stable across filesystems.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// The workspace-relative path of `path`, with `/` separators.
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scans a set of files as one workspace rooted at `root` (rule D3 is
/// resolved across all of them). Findings come back sorted.
pub fn scan_files(root: &Path, files: &[PathBuf]) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut merge_defs = Vec::new();
    let mut markers = Vec::new();
    let mut test_fn_keys = Vec::new();

    for path in files {
        let bytes = fs::read(path)?;
        let source = String::from_utf8_lossy(&bytes);
        let ctx = FileContext::from_rel_path(&rel_path(root, path));
        let mut scan = rules::scan_file(&ctx, &source);
        findings.append(&mut scan.findings);
        merge_defs.append(&mut scan.merge_defs);
        markers.append(&mut scan.merge_markers);
        test_fn_keys.append(&mut scan.test_fn_keys);
    }

    findings.extend(rules::resolve_merge_rule(&merge_defs, &markers, &test_fn_keys));
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    Ok(findings)
}

/// Scans every `.rs` file of the workspace at `root`.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let files = collect_rs_files(root)?;
    scan_files(root, &files)
}

/// Walks up from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
