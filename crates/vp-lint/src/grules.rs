//! The interprocedural rules: layer three of the graph engine.
//!
//! | id | rule |
//! |----|------|
//! | g1 | no public API of a policed crate (`vp-sim`, `verfploeter`, `vp-net`, `vp-bgp`, `vp-monitor`) may transitively reach a panic sink: `panic!` / `unreachable!` / `todo!` / `unimplemented!`, `.unwrap()` / `.expect()`, or slice indexing |
//! | g2 | no public API of a policed crate may transitively read ambient nondeterminism (`thread_rng`, `Instant::now`, `SystemTime::now`, `std::env`) — rule d2's sources, propagated through every callee |
//! | g3 | every `vp-lint: allow(...)` directive must still suppress something: a dead allow is itself a finding |
//!
//! g1/g2 are evaluated by round-based fixpoint propagation over the call
//! graph. Each finding carries a **witness path**: the call chain from
//! the public entry point down to the sink/source token. Witness choice
//! is deterministic: a node's own (lowest-position) sink beats
//! propagation, and among tainted callees the lexicographically smallest
//! node id wins in the round where taint first arrives.
//!
//! Suppression model (all line-scoped `vp-lint: allow(...)`):
//! * at a **sink site**: `allow(g1)` (or `allow(h2)` for unwrap/expect —
//!   the token rule's justification doubles as the audit) removes the
//!   sink;
//! * at a **source site**: `allow(g2)` removes the source. `allow(d2)`
//!   does **not**: d2's justification covers the local read, g2 asks the
//!   global question of whether any public API can observe it;
//! * on a **fn definition line**: `allow(g1)`/`allow(g2)` marks the fn
//!   audited — its body and callees are vouched for, and taint does not
//!   propagate out of it.

use std::collections::BTreeMap;

use crate::graph::Graph;
use crate::rules::{Finding, RuleId};

/// Crates whose public API g1/g2 police.
pub const POLICED_CRATES: [&str; 5] =
    ["vp-sim", "verfploeter", "vp-net", "vp-bgp", "vp-monitor"];

/// How a node first reaches a sink/source (g1 and g2 share the machinery).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Witness {
    /// The node's own token: (label, line, col).
    Local(String, usize, usize),
    /// Through a call to the node at this index.
    Via(usize),
}

/// The result of one taint pass.
pub(crate) struct Taint {
    /// Propagating witness per node index (None = clean or audited).
    pub(crate) reach: Vec<Option<Witness>>,
    /// Nodes that would be tainted ignoring their own audit — used both
    /// for findings (an audited entry is not a finding) and for marking
    /// the audit directive as live (g3).
    pub(crate) would_reach: Vec<Option<Witness>>,
}

/// Fixpoint taint propagation. `local` yields a node's own lowest
/// sink/source as a witness, if any.
pub(crate) fn propagate(g: &Graph, audited: impl Fn(usize) -> bool, local: impl Fn(usize) -> Option<Witness>) -> Taint {
    let n = g.nodes.len();
    let mut reach: Vec<Option<Witness>> = Vec::with_capacity(n);
    let mut would: Vec<Option<Witness>> = vec![None; n];

    // Round 0: local tokens.
    for i in 0..n {
        reach.push(local(i));
    }
    for i in 0..n {
        if reach[i].is_some() {
            would[i] = reach[i].clone();
        }
        if audited(i) {
            // Audited nodes never propagate.
            reach[i] = None;
        }
    }

    // Rounds: pull taint from callees until nothing changes. Among newly
    // available tainted callees the smallest node id wins, which makes
    // the chosen witness independent of iteration order.
    loop {
        let mut changed = false;
        for i in 0..n {
            if would[i].is_some() {
                continue;
            }
            let mut best: Option<usize> = None;
            for e in &g.edges[i] {
                if reach[e.callee].is_some() {
                    let better = match best {
                        None => true,
                        Some(b) => g.nodes[e.callee].id < g.nodes[b].id,
                    };
                    if better {
                        best = Some(e.callee);
                    }
                }
            }
            if let Some(b) = best {
                would[i] = Some(Witness::Via(b));
                if !audited(i) {
                    reach[i] = Some(Witness::Via(b));
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    Taint { reach, would_reach: would }
}

/// Reconstructs the witness path for node `i`: each step is
/// `qualified (file:line)`, ending at the sink/source token.
pub(crate) fn witness_path(g: &Graph, taint: &Taint, i: usize) -> Vec<String> {
    let mut path = Vec::new();
    let mut cur = i;
    // The entry step itself.
    path.push(format!(
        "{} ({}:{})",
        g.nodes[cur].id, g.nodes[cur].file, g.nodes[cur].info.line
    ));
    loop {
        // Follow `would_reach` at the start (the entry may be audited in
        // which case reach is cleared), `reach` below.
        let w = if cur == i {
            taint.would_reach[cur].as_ref()
        } else {
            taint.reach[cur].as_ref()
        };
        match w {
            Some(Witness::Local(label, line, _col)) => {
                path.push(format!("{label} ({}:{line})", g.nodes[cur].file));
                break;
            }
            Some(Witness::Via(next)) => {
                cur = *next;
                path.push(format!(
                    "{} ({}:{})",
                    g.nodes[cur].id, g.nodes[cur].file, g.nodes[cur].info.line
                ));
            }
            None => break,
        }
    }
    path
}

/// Is this node part of a policed crate's public API surface?
///
/// Requires: a policed crate, a `pub fn` (or any fn in an `impl Trait
/// for Type` block — trait methods are public through the trait), every
/// enclosing module `pub`, and a `pub` impl self type where one exists.
/// Unknown visibility (a type or module the index did not see) counts as
/// public — over-approximate, never under-approximate.
fn is_entry(
    g: &Graph,
    i: usize,
    mod_pub: &BTreeMap<(String, String), bool>,
    type_pub: &BTreeMap<(String, String), bool>,
) -> bool {
    let n = &g.nodes[i];
    if !POLICED_CRATES.contains(&n.crate_name.as_str()) {
        return false;
    }
    let via_trait = n.info.trait_impl.is_some();
    if !n.info.is_pub && !via_trait {
        return false;
    }
    // Every module segment below the crate root must be pub.
    let segs = &n.info.module;
    for k in 1..segs.len() {
        let parent = segs[..k].join("::");
        let key = (n.crate_name.clone(), format!("{parent}::{}", segs[k]));
        if let Some(p) = mod_pub.get(&key) {
            if !p {
                return false;
            }
        }
    }
    // The impl self type must be pub where we know it.
    if let Some(ty) = &n.info.impl_type {
        if let Some(p) = type_pub.get(&(n.crate_name.clone(), ty.clone())) {
            if !p {
                return false;
            }
        }
    }
    true
}

/// Visibility tables, built by the caller from the file indexes.
pub struct Visibility {
    /// (crate, full module path joined with `::`) → declared pub.
    pub mod_pub: BTreeMap<(String, String), bool>,
    /// (crate, type name) → any pub declaration of that name in the crate.
    pub type_pub: BTreeMap<(String, String), bool>,
}

/// Evaluates g1 and g2 over the graph. Returns findings plus the
/// `(file, line, rule)` allow-usages consumed by fn-level audits.
pub fn evaluate(g: &Graph, vis: &Visibility) -> (Vec<Finding>, Vec<(String, usize, RuleId)>) {
    let mut findings = Vec::new();
    let mut used: Vec<(String, usize, RuleId)> = Vec::new();

    // g1: panic reachability.
    let t1 = propagate(
        g,
        |i| g.nodes[i].info.audited_g1,
        |i| {
            g.nodes[i]
                .info
                .sinks
                .iter()
                .min_by_key(|s| (s.line, s.col))
                .map(|s| Witness::Local(s.kind.label(), s.line, s.col))
        },
    );
    // g2: nondeterminism taint.
    let t2 = propagate(
        g,
        |i| g.nodes[i].info.audited_g2,
        |i| {
            g.nodes[i]
                .info
                .sources
                .iter()
                .min_by_key(|s| (s.line, s.col))
                .map(|s| Witness::Local(s.what.clone(), s.line, s.col))
        },
    );

    for i in 0..g.nodes.len() {
        let n = &g.nodes[i];
        // Fn-level audit usage: the allow on the def line is live iff it
        // actually stops something (the fn would otherwise carry taint).
        if n.info.audited_g1 && t1.would_reach[i].is_some() {
            used.push((n.file.clone(), n.info.line, RuleId::G1));
        }
        if n.info.audited_g2 && t2.would_reach[i].is_some() {
            used.push((n.file.clone(), n.info.line, RuleId::G2));
        }

        if !is_entry(g, i, &vis.mod_pub, &vis.type_pub) {
            continue;
        }
        if !n.info.audited_g1 {
            if t1.reach[i].is_some() {
                let witness = witness_path(g, &t1, i);
                findings.push(Finding {
                    file: n.file.clone(),
                    line: n.info.line,
                    col: n.info.col,
                    rule: RuleId::G1,
                    message: format!(
                        "public API `{}` can reach a panic: {}",
                        n.id,
                        witness.join(" -> ")
                    ),
                    witness,
                });
            }
        }
        if !n.info.audited_g2 {
            if t2.reach[i].is_some() {
                let witness = witness_path(g, &t2, i);
                findings.push(Finding {
                    file: n.file.clone(),
                    line: n.info.line,
                    col: n.info.col,
                    rule: RuleId::G2,
                    message: format!(
                        "public API `{}` transitively reads ambient nondeterminism: {}",
                        n.id,
                        witness.join(" -> ")
                    ),
                    witness,
                });
            }
        }
    }

    (findings, used)
}
