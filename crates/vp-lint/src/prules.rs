//! The hot-path cost rules: layer five of the graph engine.
//!
//! | id | rule |
//! |----|------|
//! | p1 | no heap allocation in the per-probe region: `Vec::new`/`push` without a capacity witness, `Box::new`, `String`/`format!`/`to_string`, `collect`, `to_vec`, `clone` of a columnar collection |
//! | p2 | no per-probe `BTreeMap::get`/`contains_key` where a dense `BlockIndex`/column lookup exists |
//! | p3 | no loop-invariant checksum/encode helper call inside a probe loop — hoist it or use the incremental/batched API |
//! | p4 | no dynamic dispatch (`dyn`, `Box<dyn ..>`) in the hot region |
//! | p5 | no per-probe error/string construction: formatted panic messages, `Err(format!(..))` |
//!
//! ## The hot region
//!
//! The region is the forward closure of the scan inner loops over the
//! PR 7 call graph:
//!
//! * the prober walk (`Prober::walk_schedule` / `build_probe` /
//!   `build_probes`),
//! * the six engine phases (`NetworkSim::send_at` / `transmit` /
//!   `resolve` / `run` / `arrive_at_site` / `arrive_at_host`),
//! * every parallel-region entry (the closure handed to the blessed
//!   shard executor — [`crate::crules`]'s region entries).
//!
//! The closure does **not** traverse into:
//!
//! * fns annotated `vp-lint: cold(fn)` — setup/teardown that runs once
//!   per scan, not once per probe;
//! * the blessed executor file itself (its spawn/join plumbing runs once
//!   per shard);
//! * crates outside [`P_CRATES`] — observability and tooling crates are
//!   not on the per-probe path even when the engine calls into them.
//!
//! ## Suppression model (mirrors c1–c4)
//!
//! * line allows are consumed at **index time**: `allow(p1)` on the
//!   allocation, `allow(p2)` on the lookup, `allow(p3)` on the call,
//!   `allow(p4)` on the `dyn`, `allow(p5)` on the construction;
//! * on a **fn definition line**: `allow(pN)` audits the whole fn for
//!   that rule — its facts are vouched amortized/intentional. The
//!   fn-level allow is live (for g3) only if the fn actually has facts
//!   for the audited rule.
//!
//! Facts themselves are extracted intraprocedurally at index time
//! ([`crate::index`]); this module only decides *which fns' facts become
//! findings* — membership in the hot region — and renders the g1-style
//! witness path from a root to the fact.

use std::collections::BTreeSet;

use crate::crules::parallel_region;
use crate::graph::Graph;
use crate::rules::{Finding, RuleId, BLESSED_EXECUTOR_FILE};

/// Crates whose fns can be hot-region members. Everything else (lint,
/// observability, CLI frontends) is off the per-probe path by
/// construction.
pub const P_CRATES: [&str; 5] = ["vp-packet", "vp-net", "vp-hitlist", "vp-sim", "verfploeter"];

/// The scan inner loops: (impl type, fn name) pairs that root the hot
/// region even when no executor entry reaches them (the serial path).
const HOT_ROOTS: [(&str, &str); 9] = [
    ("Prober", "walk_schedule"),
    ("Prober", "build_probe"),
    ("Prober", "build_probes"),
    ("NetworkSim", "send_at"),
    ("NetworkSim", "transmit"),
    ("NetworkSim", "resolve"),
    ("NetworkSim", "run"),
    ("NetworkSim", "arrive_at_site"),
    ("NetworkSim", "arrive_at_host"),
];

/// The hot region: roots (scan inner loops + parallel-region entries)
/// and their forward closure.
pub struct HotRegion {
    /// Root node indices, sorted.
    pub roots: Vec<usize>,
    /// Forward closure of the roots (includes them), cold fns, the
    /// blessed executor and non-[`P_CRATES`] crates excluded.
    pub members: BTreeSet<usize>,
}

/// Whether node `i` is traversable by the hot-region closure.
fn traversable(g: &Graph, i: usize) -> bool {
    let n = &g.nodes[i];
    !n.info.is_cold
        && n.file != BLESSED_EXECUTOR_FILE
        && P_CRATES.contains(&n.crate_name.as_str())
}

/// Computes the hot region from the call graph.
pub fn hot_region(g: &Graph) -> HotRegion {
    let mut roots: Vec<usize> = Vec::new();
    for i in 0..g.nodes.len() {
        let n = &g.nodes[i];
        if HOT_ROOTS
            .iter()
            .any(|(ty, f)| n.info.impl_type.as_deref() == Some(*ty) && n.info.name == *f)
            && traversable(g, i)
        {
            roots.push(i);
        }
    }
    for e in parallel_region(g).entries {
        if traversable(g, e) && !roots.contains(&e) {
            roots.push(e);
        }
    }
    roots.sort_unstable();
    let mut members: BTreeSet<usize> = BTreeSet::new();
    let mut stack: Vec<usize> = roots.clone();
    while let Some(i) = stack.pop() {
        if !traversable(g, i) || !members.insert(i) {
            continue;
        }
        for e in &g.edges[i] {
            if !members.contains(&e.callee) {
                stack.push(e.callee);
            }
        }
    }
    HotRegion { roots, members }
}

/// BFS parents from the roots, for witness paths. Deterministic: the
/// frontier is expanded in sorted order and a node keeps its first
/// (smallest-id-root, shortest) parent.
fn bfs_parents(g: &Graph, region: &HotRegion) -> Vec<Option<usize>> {
    let mut parent: Vec<Option<usize>> = vec![None; g.nodes.len()];
    let mut seen: BTreeSet<usize> = region.roots.iter().copied().collect();
    let mut frontier: Vec<usize> = region.roots.clone();
    while !frontier.is_empty() {
        let mut next: Vec<usize> = Vec::new();
        for &i in &frontier {
            for e in &g.edges[i] {
                if region.members.contains(&e.callee) && seen.insert(e.callee) {
                    parent[e.callee] = Some(i);
                    next.push(e.callee);
                }
            }
        }
        next.sort_unstable();
        frontier = next;
    }
    parent
}

/// The call path from a root to node `i`, rendered g1-style.
fn root_path(g: &Graph, parent: &[Option<usize>], i: usize) -> Vec<String> {
    let mut rev = vec![i];
    let mut cur = i;
    while let Some(p) = parent[cur] {
        rev.push(p);
        cur = p;
    }
    rev.reverse();
    rev.iter()
        .map(|&k| {
            let n = &g.nodes[k];
            format!("{} ({}:{})", n.id, n.file, n.info.line)
        })
        .collect()
}

/// Evaluates p1–p5 over the hot region. Returns findings plus the
/// `(file, line, rule)` fn-level allow usages (feeds rule g3).
pub fn evaluate(g: &Graph) -> (Vec<Finding>, Vec<(String, usize, RuleId)>) {
    let mut findings = Vec::new();
    let mut used: Vec<(String, usize, RuleId)> = Vec::new();

    // Fn-level p-audits are live wherever the fn has facts for the rule
    // — region membership does not gate liveness, so an audit stays
    // honest documentation even while the region shifts around it.
    for n in &g.nodes {
        for (k, rule) in P_RULES.iter().enumerate() {
            if n.info.audited_p[k] && n.info.pfacts.iter().any(|f| f.rule == *rule) {
                used.push((n.file.clone(), n.info.line, *rule));
            }
        }
    }

    let region = hot_region(g);
    if region.roots.is_empty() {
        return (findings, used);
    }
    let parent = bfs_parents(g, &region);

    for &i in &region.members {
        let n = &g.nodes[i];
        if n.info.pfacts.is_empty() {
            continue;
        }
        let path = root_path(g, &parent, i);
        for f in &n.info.pfacts {
            let k = P_RULES.iter().position(|r| *r == f.rule).unwrap_or(0);
            if n.info.audited_p[k] {
                continue;
            }
            let mut witness = path.clone();
            witness.push(format!("{} ({}:{})", f.label, n.file, f.line));
            findings.push(Finding {
                file: n.file.clone(),
                line: f.line,
                col: f.col,
                rule: f.rule,
                message: format!(
                    "{} in the hot region: {}",
                    describe(f.rule),
                    witness.join(" -> ")
                ),
                witness,
            });
        }
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule.name()).cmp(&(&b.file, b.line, b.col, b.rule.name()))
    });
    (findings, used)
}

const P_RULES: [RuleId; 5] = [RuleId::P1, RuleId::P2, RuleId::P3, RuleId::P4, RuleId::P5];

/// The `vp-lint hotpath --report` body: the region roster (roots marked)
/// and a per-fn table of facts — findings *and* audited facts, so an
/// audit is visible instead of silently swallowing its sites.
pub fn report(g: &Graph) -> String {
    let region = hot_region(g);
    let mut out = String::new();
    out.push_str(&format!(
        "hot region: {} fns ({} roots)\n",
        region.members.len(),
        region.roots.len()
    ));
    for &i in &region.members {
        let n = &g.nodes[i];
        let mark = if region.roots.contains(&i) { "*" } else { " " };
        let audits: Vec<&str> = P_RULES
            .iter()
            .enumerate()
            .filter(|(k, _)| n.info.audited_p[*k])
            .map(|(_, r)| r.name())
            .collect();
        let audit_note = if audits.is_empty() {
            String::new()
        } else {
            format!("  [audited: {}]", audits.join(", "))
        };
        out.push_str(&format!(
            "{mark} {} ({}:{}){}\n",
            n.id, n.file, n.info.line, audit_note
        ));
        for f in &n.info.pfacts {
            out.push_str(&format!(
                "    {} {} (line {})\n",
                f.rule.name(),
                f.label,
                f.line
            ));
        }
    }
    out
}

/// The hot subgraph in Graphviz dot form (`vp-lint hotpath --dot`):
/// region members only, roots drawn as boxes, cold neighbours omitted —
/// the picture of exactly what the p-rules police.
pub fn to_dot(g: &Graph) -> String {
    let region = hot_region(g);
    let mut out = String::from("digraph hotpath {\n  rankdir=LR;\n");
    for &i in &region.members {
        let n = &g.nodes[i];
        let shape = if region.roots.contains(&i) { "box" } else { "ellipse" };
        out.push_str(&format!(
            "  \"{}\" [shape={shape},label=\"{}\\n{}:{}\"];\n",
            n.id, n.id, n.file, n.info.line
        ));
    }
    for &i in &region.members {
        for e in &g.edges[i] {
            if region.members.contains(&e.callee) {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    g.nodes[i].id, g.nodes[e.callee].id
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

fn describe(rule: RuleId) -> &'static str {
    match rule {
        RuleId::P1 => "per-probe heap allocation",
        RuleId::P2 => "per-probe ordered-map lookup",
        RuleId::P3 => "loop-invariant encode/checksum call",
        RuleId::P4 => "dynamic dispatch",
        _ => "per-probe error/string construction",
    }
}
