//! `vp-lint` — the workspace determinism-and-hygiene analyzer.
//!
//! PR 1 made bit-identical determinism the scan engine's contract; this
//! crate turns that contract from "tested on one path" into "machine-checked
//! on every path". It is a dependency-free static analyzer (hand-rolled
//! lexer — the vendor-only environment has no `syn`) that walks the
//! workspace's `.rs` files and enforces the rule set documented in
//! [`rules`]: hash-order nondeterminism (d1), ambient entropy (d2),
//! untested merge algebra (d3), narrowing casts in hot crates (h1) and
//! panicking unwraps in library code (h2).
//!
//! Ships three ways: the `cargo run -p vp-lint` CLI, the tier-1
//! `tests/lint_gate.rs` integration test that fails the build on any
//! unsuppressed finding, and `scripts/check.sh`.
//!
//! Suppression: `// vp-lint: allow(<rule>): <justification>` on (or
//! directly above) the offending line. The justification is mandatory.

pub mod directives;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use rules::{FileContext, Finding, RuleId};
pub use workspace::{find_workspace_root, scan_files, scan_workspace};

/// Renders findings as `file:line:col: rule: message` lines.
pub fn to_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: {}: {}\n",
            f.file,
            f.line,
            f.col,
            f.rule.name(),
            f.message
        ));
    }
    out.push_str(&format!(
        "vp-lint: {} finding{}\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    ));
    out
}

/// Renders findings as a JSON array (hand-rolled: the analyzer stays
/// dependency-free so it can never be broken by the crates it checks).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_string(&f.file),
            f.line,
            f.col,
            json_string(f.rule.name()),
            json_string(&f.message)
        ));
    }
    out.push_str("]\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
