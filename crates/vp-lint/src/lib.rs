//! `vp-lint` — the workspace determinism-and-hygiene analyzer.
//!
//! PR 1 made bit-identical determinism the scan engine's contract; this
//! crate turns that contract from "tested on one path" into "machine-checked
//! on every path". It is a dependency-free static analyzer (hand-rolled
//! lexer — the vendor-only environment has no `syn`) with two layers:
//!
//! * **token rules** ([`rules`]): hash-order nondeterminism (d1), ambient
//!   entropy (d2), untested merge algebra (d3), wall-time Clock impls
//!   (d4), narrowing casts in hot crates (h1) and panicking unwraps in
//!   library code (h2);
//! * **graph rules** ([`index`] → [`graph`] → [`grules`]): an item index
//!   and conservative call graph drive interprocedural panic-reachability
//!   (g1) and nondeterminism-taint (g2) analyses over every policed
//!   crate's public API, each finding carrying a witness call path; and
//!   g3 flags every `allow(...)` that no longer suppresses anything;
//! * **concurrency rules** ([`crules`]): the *parallel region* — every fn
//!   reachable from a closure handed to the blessed shard executor — is
//!   computed from the same call graph, then checked for shared mutable
//!   state (c1), lock-order cycles (c2), blocking under a live guard
//!   (c3) and arrival-order result folds (c4); c5 (a token rule) confines
//!   `thread::spawn`/`scope` to the blessed executor module itself;
//! * **hot-path cost rules** ([`prules`]): the *hot region* — every fn
//!   reachable from the scan inner loops (prober walk, engine phases,
//!   executor entries), minus `cold(fn)`-annotated setup/teardown — must
//!   be free of per-probe heap allocation (p1), ordered-map lookups
//!   where a dense column exists (p2), loop-invariant encode/checksum
//!   recomputation (p3), dynamic dispatch (p4) and per-probe
//!   error-message construction (p5).
//!
//! Ships three ways: the `cargo run -p vp-lint` CLI, the tier-1
//! `tests/lint_gate.rs` integration test that fails the build on any
//! unsuppressed finding, and `scripts/check.sh`.
//!
//! Suppression: `// vp-lint: allow(<rule>): <justification>` on (or
//! directly above) the offending line. The justification is mandatory.

pub mod crules;
pub mod directives;
pub mod graph;
pub mod grules;
pub mod index;
pub mod lexer;
pub mod prules;
pub mod rules;
pub mod workspace;

pub use rules::{FileContext, Finding, RuleId};
pub use workspace::{
    build_graph, find_workspace_root, scan_files, scan_files_timed, scan_workspace, PassTimes,
};

/// Renders findings as `file:line:col: rule: message` lines.
pub fn to_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: {}: {}\n",
            f.file,
            f.line,
            f.col,
            f.rule.name(),
            f.message
        ));
    }
    out.push_str(&format!(
        "vp-lint: {} finding{}\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    ));
    out
}

/// Renders findings as a JSON array (hand-rolled: the analyzer stays
/// dependency-free so it can never be broken by the crates it checks).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}",
            json_string(&f.file),
            f.line,
            f.col,
            json_string(f.rule.name()),
            json_string(&f.message)
        ));
        if !f.witness.is_empty() {
            out.push_str(",\"witness\":[");
            for (j, step) in f.witness.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(step));
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push_str("]\n");
    out
}

/// Renders findings plus per-rule wall time as one JSON object:
/// `{"findings": [...], "rule_times_ms": [{"rule","pass","ms"}, ...]}`.
/// Rules are attributed the wall time of the analysis pass that evaluates
/// them, so a budget blowup in `scripts/check.sh` names a rule (family)
/// instead of "the lint got slow".
pub fn to_json_timed(findings: &[Finding], times: &PassTimes) -> String {
    let mut out = String::from("{\"findings\":");
    let body = to_json(findings);
    out.push_str(body.trim_end());
    out.push_str(",\"rule_times_ms\":[");
    let ms_of = |pass: &str| -> u128 {
        times
            .iter()
            .find(|(p, _)| *p == pass)
            .map(|(_, ms)| *ms)
            .unwrap_or(0)
    };
    for (i, rule) in RuleId::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let pass = pass_of(*rule);
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"pass\":\"{}\",\"ms\":{}}}",
            rule.name(),
            pass,
            ms_of(pass)
        ));
    }
    out.push_str("]}\n");
    out
}

/// The analysis pass that evaluates each rule (see
/// [`workspace::scan_files_timed`]'s pass names).
fn pass_of(rule: RuleId) -> &'static str {
    match rule {
        RuleId::G1 | RuleId::G2 => "grules",
        RuleId::G3 => "g3",
        RuleId::C1 | RuleId::C2 | RuleId::C3 | RuleId::C4 => "crules",
        RuleId::P1 | RuleId::P2 | RuleId::P3 | RuleId::P4 | RuleId::P5 => "prules",
        // Token rules (d*, h*, c5, o1, directive) are all evaluated in the
        // per-file token pass.
        _ => "token",
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
