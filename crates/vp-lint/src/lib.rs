//! `vp-lint` — the workspace determinism-and-hygiene analyzer.
//!
//! PR 1 made bit-identical determinism the scan engine's contract; this
//! crate turns that contract from "tested on one path" into "machine-checked
//! on every path". It is a dependency-free static analyzer (hand-rolled
//! lexer — the vendor-only environment has no `syn`) with two layers:
//!
//! * **token rules** ([`rules`]): hash-order nondeterminism (d1), ambient
//!   entropy (d2), untested merge algebra (d3), wall-time Clock impls
//!   (d4), narrowing casts in hot crates (h1) and panicking unwraps in
//!   library code (h2);
//! * **graph rules** ([`index`] → [`graph`] → [`grules`]): an item index
//!   and conservative call graph drive interprocedural panic-reachability
//!   (g1) and nondeterminism-taint (g2) analyses over every policed
//!   crate's public API, each finding carrying a witness call path; and
//!   g3 flags every `allow(...)` that no longer suppresses anything;
//! * **concurrency rules** ([`crules`]): the *parallel region* — every fn
//!   reachable from a closure handed to the blessed shard executor — is
//!   computed from the same call graph, then checked for shared mutable
//!   state (c1), lock-order cycles (c2), blocking under a live guard
//!   (c3) and arrival-order result folds (c4); c5 (a token rule) confines
//!   `thread::spawn`/`scope` to the blessed executor module itself.
//!
//! Ships three ways: the `cargo run -p vp-lint` CLI, the tier-1
//! `tests/lint_gate.rs` integration test that fails the build on any
//! unsuppressed finding, and `scripts/check.sh`.
//!
//! Suppression: `// vp-lint: allow(<rule>): <justification>` on (or
//! directly above) the offending line. The justification is mandatory.

pub mod crules;
pub mod directives;
pub mod graph;
pub mod grules;
pub mod index;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use rules::{FileContext, Finding, RuleId};
pub use workspace::{build_graph, find_workspace_root, scan_files, scan_workspace};

/// Renders findings as `file:line:col: rule: message` lines.
pub fn to_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: {}: {}\n",
            f.file,
            f.line,
            f.col,
            f.rule.name(),
            f.message
        ));
    }
    out.push_str(&format!(
        "vp-lint: {} finding{}\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    ));
    out
}

/// Renders findings as a JSON array (hand-rolled: the analyzer stays
/// dependency-free so it can never be broken by the crates it checks).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}",
            json_string(&f.file),
            f.line,
            f.col,
            json_string(f.rule.name()),
            json_string(&f.message)
        ));
        if !f.witness.is_empty() {
            out.push_str(",\"witness\":[");
            for (j, step) in f.witness.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(step));
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push_str("]\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
