//! The `vp-lint` CLI.
//!
//! ```text
//! cargo run -p vp-lint -- --workspace [--format text|json]
//! cargo run -p vp-lint -- [--root DIR] [--format text|json] PATH...
//! cargo run -p vp-lint -- graph [--dot] [--root DIR]
//! cargo run -p vp-lint -- hotpath [--report] [--dot] [--root DIR]
//! cargo run -p vp-lint -- bench [--reps N] [--budget-ms M | --budget-per-rule-ms M] [--root DIR]
//! ```
//!
//! Exit status: 0 clean, 1 findings (or bench over budget), 2 usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

// vp-lint: allow(d2): the CLI reads its own argv; no measurement-path entropy.
use std::env;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("graph") => run_graph(&args[1..]),
        Some("hotpath") => run_hotpath(&args[1..]),
        Some("bench") => run_bench(&args[1..]),
        _ => run(&args),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("vp-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Resolves `--root` (or walks up to the workspace root).
fn resolve_root(root: Option<PathBuf>) -> Result<PathBuf, String> {
    match root {
        Some(r) => Ok(r),
        None => {
            let cwd = env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            vp_lint::find_workspace_root(&cwd)
                .ok_or_else(|| "no workspace root found (pass --root)".to_string())
        }
    }
}

/// `vp-lint graph [--dot] [--root DIR]` — dump the call graph.
fn run_graph(args: &[String]) -> Result<ExitCode, String> {
    let mut dot = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dot" => dot = true,
            "--root" => root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?)),
            other => return Err(format!("unknown graph flag `{other}`")),
        }
    }
    let root = resolve_root(root)?;
    let g = vp_lint::build_graph(&root).map_err(|e| format!("graph: {e}"))?;
    let out = if dot { g.to_dot() } else { g.to_summary() };
    // Ignore EPIPE: `vp-lint graph --dot | head` closing the pipe early
    // is normal use of a dump, not an error.
    use std::io::Write;
    let _ = std::io::stdout().write_all(out.as_bytes());
    Ok(ExitCode::SUCCESS)
}

/// `vp-lint hotpath [--report] [--dot] [--root DIR]` — the hot-region
/// analysis on its own: p1–p5 findings (exit 1 when any fire), with
/// `--report` the region roster + per-fn fact table, with `--dot` the
/// hot subgraph in Graphviz form.
fn run_hotpath(args: &[String]) -> Result<ExitCode, String> {
    let mut report = false;
    let mut dot = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--report" => report = true,
            "--dot" => dot = true,
            "--root" => root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?)),
            other => return Err(format!("unknown hotpath flag `{other}`")),
        }
    }
    let root = resolve_root(root)?;
    let g = vp_lint::build_graph(&root).map_err(|e| format!("hotpath: {e}"))?;
    use std::io::Write;
    if dot {
        // Ignore EPIPE, exactly like `graph --dot | head`.
        let _ = std::io::stdout().write_all(vp_lint::prules::to_dot(&g).as_bytes());
        return Ok(ExitCode::SUCCESS);
    }
    if report {
        let _ = std::io::stdout().write_all(vp_lint::prules::report(&g).as_bytes());
    }
    let (findings, _) = vp_lint::prules::evaluate(&g);
    print!("{}", vp_lint::to_text(&findings));
    Ok(if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `vp-lint bench [--reps N] [--budget-ms M | --budget-per-rule-ms M]
/// [--root DIR]` — time the full workspace scan (min of N reps, the
/// same estimator `vp-bench` uses) and fail when it exceeds the budget.
/// `--budget-per-rule-ms` scales the budget with [`RuleId::ALL`], so
/// adding a rule grows the allowance instead of silently eating the
/// remaining headroom of a hard constant. Keeps the analyzer fast
/// enough to stay inside tier-1.
fn run_bench(args: &[String]) -> Result<ExitCode, String> {
    let mut reps: u32 = 5;
    let mut budget_ms: u128 = 2000;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reps" => {
                reps = it
                    .next()
                    .ok_or("--reps needs a count")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--budget-ms" => {
                budget_ms = it
                    .next()
                    .ok_or("--budget-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("--budget-ms: {e}"))?;
            }
            "--budget-per-rule-ms" => {
                let per: u128 = it
                    .next()
                    .ok_or("--budget-per-rule-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("--budget-per-rule-ms: {e}"))?;
                budget_ms = per * vp_lint::RuleId::ALL.len() as u128;
            }
            "--root" => root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?)),
            other => return Err(format!("unknown bench flag `{other}`")),
        }
    }
    if reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    let root = resolve_root(root)?;
    let mut best_ms = u128::MAX;
    let mut findings = 0usize;
    for _ in 0..reps {
        // vp-lint: allow(d2): bench measures the analyzer's own wall time; results never feed it back.
        let started = Instant::now();
        let fs = vp_lint::scan_workspace(&root).map_err(|e| format!("scan: {e}"))?;
        let elapsed = started.elapsed().as_millis();
        best_ms = best_ms.min(elapsed);
        findings = fs.len();
    }
    println!(
        "vp-lint bench: min-of-{reps} full scan = {best_ms} ms \
         ({findings} findings), budget {budget_ms} ms"
    );
    Ok(if best_ms <= budget_ms {
        ExitCode::SUCCESS
    } else {
        eprintln!("vp-lint bench: over budget");
        ExitCode::FAILURE
    })
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--format" => {
                let v = it.next().ok_or("--format needs a value (text|json)")?;
                if v != "text" && v != "json" {
                    return Err(format!("unknown format `{v}` (expected text|json)"));
                }
                format = v.clone();
            }
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                root = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "vp-lint: workspace determinism-and-hygiene analyzer\n\n\
                     USAGE:\n  vp-lint --workspace [--root DIR] [--format text|json]\n  \
                     vp-lint [--root DIR] [--format text|json] PATH...\n  \
                     vp-lint graph [--dot] [--root DIR]\n  \
                     vp-lint hotpath [--report] [--dot] [--root DIR]\n  \
                     vp-lint bench [--reps N] [--budget-ms M | --budget-per-rule-ms M] [--root DIR]\n\n\
                     Token rules: d1 hash-order, d2 ambient entropy, d3 merge-tested,\n\
                     d4 wall-time Clock impls outside binaries/vp-bench,\n\
                     h1 narrowing casts (hot crates), h2 unwrap/expect in libraries,\n\
                     c5 thread::spawn/scope outside the blessed executor.\n\
                     Graph rules: g1 panic-reachability and g2 nondeterminism taint\n\
                     over the public API of policed crates (with witness paths),\n\
                     g3 stale allow directives.\n\
                     Concurrency rules (over the parallel region rooted at the\n\
                     blessed executor): c1 shared mutable state, c2 lock-order\n\
                     cycles, c3 blocking under a live guard, c4 arrival-order\n\
                     result folds.\n\
                     Hot-path rules (over the hot region rooted at the scan inner\n\
                     loops, minus cold(fn) setup/teardown): p1 per-probe heap\n\
                     allocation, p2 ordered-map lookups, p3 loop-invariant\n\
                     encode/checksum calls, p4 dynamic dispatch, p5 per-probe\n\
                     error construction.\n\
                     Suppress with `// vp-lint: allow(<rule>): <justification>`;\n\
                     mark setup/teardown with `// vp-lint: cold(fn): <why>`."
                );
                return Ok(ExitCode::SUCCESS);
            }
            p if !p.starts_with('-') => paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }

    let root = resolve_root(root)?;

    let files = if workspace || paths.is_empty() {
        vp_lint::workspace::collect_rs_files(&root)
    } else {
        let mut files = Vec::new();
        for p in &paths {
            let p = if p.is_absolute() { p.clone() } else { root.join(p) };
            if p.is_dir() {
                files.extend(
                    vp_lint::workspace::collect_rs_files(&p)
                        .map_err(|e| format!("{}: {e}", p.display()))?,
                );
            } else {
                files.push(p);
            }
        }
        files.sort();
        Ok(files)
    }
    .map_err(|e| format!("walking {}: {e}", root.display()))?;

    // vp-lint: allow(d2): the clock only annotates JSON pass timings; findings never depend on it.
    let started = Instant::now();
    let clock = move || started.elapsed().as_millis();
    let (findings, times) =
        vp_lint::scan_files_timed(&root, &files, &clock).map_err(|e| format!("scan: {e}"))?;

    match format.as_str() {
        "json" => print!("{}", vp_lint::to_json_timed(&findings, &times)),
        _ => print!("{}", vp_lint::to_text(&findings)),
    }

    Ok(if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
