//! The `vp-lint` CLI.
//!
//! ```text
//! cargo run -p vp-lint -- --workspace [--format text|json]
//! cargo run -p vp-lint -- [--root DIR] [--format text|json] PATH...
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

// vp-lint: allow(d2): the CLI reads its own argv; no measurement-path entropy.
use std::env;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("vp-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--format" => {
                let v = it.next().ok_or("--format needs a value (text|json)")?;
                if v != "text" && v != "json" {
                    return Err(format!("unknown format `{v}` (expected text|json)"));
                }
                format = v.clone();
            }
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                root = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "vp-lint: workspace determinism-and-hygiene analyzer\n\n\
                     USAGE:\n  vp-lint --workspace [--root DIR] [--format text|json]\n  \
                     vp-lint [--root DIR] [--format text|json] PATH...\n\n\
                     Rules: d1 hash-order, d2 ambient entropy, d3 merge-tested,\n\
                     d4 wall-time Clock impls outside binaries/vp-bench,\n\
                     h1 narrowing casts (hot crates), h2 unwrap/expect in libraries.\n\
                     Suppress with `// vp-lint: allow(<rule>): <justification>`."
                );
                return Ok(ExitCode::SUCCESS);
            }
            p if !p.starts_with('-') => paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }

    let cwd = env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = match root {
        Some(r) => r,
        None => vp_lint::find_workspace_root(&cwd)
            .ok_or("no workspace root found (pass --root)")?,
    };

    let files = if workspace || paths.is_empty() {
        vp_lint::workspace::collect_rs_files(&root)
    } else {
        let mut files = Vec::new();
        for p in &paths {
            let p = if p.is_absolute() { p.clone() } else { root.join(p) };
            if p.is_dir() {
                files.extend(
                    vp_lint::workspace::collect_rs_files(&p)
                        .map_err(|e| format!("{}: {e}", p.display()))?,
                );
            } else {
                files.push(p);
            }
        }
        files.sort();
        Ok(files)
    }
    .map_err(|e| format!("walking {}: {e}", root.display()))?;

    let findings = vp_lint::scan_files(&root, &files).map_err(|e| format!("scan: {e}"))?;

    match format.as_str() {
        "json" => print!("{}", vp_lint::to_json(&findings)),
        _ => print!("{}", vp_lint::to_text(&findings)),
    }

    Ok(if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
