//! Zero findings must come from this file: every violation is either
//! suppressed with a justified allow, inside a literal or comment (the
//! lexer must mask those), in test scope, or covered by rule D3's marker
//! and test-name escapes.

use std::collections::BTreeMap;

// A HashMap mention in a comment must not fire, nor in the strings below.
pub fn masked_literals() -> Vec<String> {
    vec![
        "HashMap::new() and HashSet::from([1])".to_string(),
        r#"raw: thread_rng() SystemTime::now() std::env!"#.to_string(),
        r##"double-hash raw: x.unwrap() y as u32"##.to_string(),
        "escaped \" then .expect(\"x\")".to_string(),
        'H'.to_string(),
        '\''.to_string(),
        '"'.to_string(),
    ]
}

/// Lifetimes must not confuse the char-literal path.
pub fn lifetimes<'a>(x: &'a BTreeMap<u32, u32>) -> Option<&'a u32> {
    x.get(&1)
}

// vp-lint: allow(d1): fixture exercising the standalone-line allow form.
pub fn allowed_hash(map: std::collections::HashMap<u32, u32>) -> usize {
    map.len() // the map is only counted, never iterated
}

pub fn allowed_trailing(x: u64) -> u32 {
    x as u32 // vp-lint: allow(h1): fixture exercising the trailing allow form.
}

pub fn allowed_multi(v: Option<u32>) -> u32 {
    // vp-lint: allow(d2, g2, h1): fixture exercising a multi-rule allow.
    v.unwrap_or_else(|| thread_rng() as u32)
}

/// A sim-time clock impl never fires d4, even though this file (below)
/// also reads wall time: only the wall-time read sites are findings.
pub struct FixtureSimClock(pub u64);

impl Clock for FixtureSimClock {
    fn now_nanos(&self) -> u64 {
        self.0
    }
}

pub struct AllowedWallClock;

impl Clock for AllowedWallClock {
    fn now_nanos(&self) -> u64 {
        // vp-lint: allow(d2, d4, g2): fixture exercising a justified wall-time clock in a library.
        std::time::Instant::now().elapsed().as_nanos() as u64
    }
}

pub struct Gauges {
    pub g: u64,
}

impl Gauges {
    /// Covered by the merge-tested marker in ../tests/fixture_tests.rs.
    pub fn merge(&mut self, other: &Gauges) {
        self.g += other.g;
    }
}

pub struct Totals {
    pub t: u64,
}

impl Totals {
    /// Covered by the `totals_merge_accumulates` test name.
    pub fn merge(&mut self, other: &Totals) {
        self.t += other.t;
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_scope_is_exempt() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.get(&1).copied().unwrap(), (2u64 as u32));
        let _ = std::env::var("UNCHECKED");
    }
}
