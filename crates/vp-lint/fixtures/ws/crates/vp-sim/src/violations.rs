//! Seeded violations: every rule must fire on this file (20 findings:
//! 4×d1, 4×d2, 1×d3, 2×d4, 5×h1, 2×h2, 2×o1). Note d4 is file-scoped:
//! once `LeakyWallClock` makes this a Clock-implementing file, *every*
//! wall-time read in it fires d4 — including `entropy()`'s SystemTime.
//! This file is fixture input for the lint gate; it is never compiled.

use std::collections::HashMap; // d1
use std::collections::HashSet; // d1

pub struct Counters {
    pub a: u64,
}

impl Counters {
    // No merge-tested marker and no matching test name anywhere: d3.
    pub fn merge(&mut self, other: &Counters) {
        self.a += other.a;
    }
}

pub fn narrowing(x: u64, y: usize) -> u32 {
    let a = x as u32; // h1
    let b = y as u16; // h1
    let c = x as f32; // h1
    (a + b as u32) + c as u32 // h1 twice
}

pub fn entropy(map: &HashMap<u32, u32>) -> u64 {
    // d1 fired on the signature above; three d2 findings below.
    let _ = std::time::SystemTime::now(); // d2 (+ d4, see module doc)
    let _ = std::env::var("SEED"); // d2
    let r = thread_rng(); // d2
    let _ = map.len();
    r
}

pub fn panics(v: Option<u32>, s: &HashSet<u32>) -> u32 {
    // d1 fired on the signature; two h2 findings below.
    let a = v.unwrap(); // h2
    let b = s.get(&a).copied().expect("present"); // h2
    a + b
}

pub struct DynTracer;

pub fn dynamic_span_names(t: &DynTracer, which: usize) {
    let name = format!("probe-{which}");
    t.span(name); // o1
    t.record_interval(&name, "phase", None, 0, 1); // o1
    // Literal names never fire, and an audited dynamic one is suppressed.
    t.event("scan.round");
    // vp-lint: allow(o1): fixture of an audited dynamic name from a closed set.
    t.record_span(name, 7);
}

pub struct LeakyWallClock;

impl Clock for LeakyWallClock {
    // A wall-time read in a library file that implements Clock fires both
    // d2 (ambient time) and d4 (wall-backed clocks belong in binaries).
    fn now_nanos(&self) -> u64 {
        std::time::Instant::now().elapsed().as_nanos() as u64 // d2 + d4
    }
}
