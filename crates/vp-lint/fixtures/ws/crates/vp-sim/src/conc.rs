//! Seeded concurrency violations (10 findings: 2×c1, 2×c2, 2×c3, 2×c4,
//! 2×c5) plus one suppressed instance of each rule. The `shard_*`
//! entries call `exec::run_sharded`, which roots the parallel region in
//! this file. Fixture input for the lint gate; never compiled.

// c1 (second finding): a file-scoped `static mut` is reachable by every
// fn in a file whose fns run in the parallel region.
static mut POOL_TOTAL: u64 = 0;

// c1 (first finding): the entry reaches a RefCell construction through
// `cell_worker` — the witness path names the chain.
pub fn shard_cell_counts() -> u64 {
    crate::exec::run_sharded(8);
    confined_cell_worker();
    cell_worker()
}

fn cell_worker() -> u64 {
    let slot: std::cell::RefCell<u64> = std::cell::RefCell::new(0);
    drop(slot);
    0
}

// Suppressed c1, line form: the allow at the hazard site is consumed at
// index time, so this helper contributes no taint.
fn confined_cell_worker() -> u64 {
    // vp-lint: allow(c1): fixture of a vouched thread-confined Cell.
    let slot = std::cell::Cell::new(7);
    drop(slot);
    7
}

// Suppressed c1, fn form: the entry is audited, so taint from
// `audited_cell_worker` stops here (and the allow counts as used).
// vp-lint: allow(c1): fixture of an audited entry — state below is vouched thread-confined.
pub fn shard_audited_counts() -> u64 {
    crate::exec::run_sharded(4);
    audited_cell_worker()
}

fn audited_cell_worker() -> u64 {
    let slot = std::cell::Cell::new(9);
    drop(slot);
    9
}

// c2: two lock-order cycles in the region — one intra-fn (alpha/beta
// acquired in both orders), one interprocedural (gamma/delta nested
// through helper calls).
pub fn shard_lock_pairs(work: u64) -> u64 {
    crate::exec::run_sharded(2);
    ab_order(work);
    ba_order(work);
    outer_gamma(work);
    outer_delta(work);
    order_eps(work);
    order_zeta(work);
    order_iota(work);
    order_kappa(work);
    work
}

fn ab_order(work: u64) -> u64 {
    let a = alpha_m.lock();
    // vp-lint: allow(c3): fixture isolating c2 — the nested acquisition is the cycle seed.
    let b = beta_m.lock();
    work
}

fn ba_order(work: u64) -> u64 {
    let b = beta_m.lock();
    // vp-lint: allow(c3): fixture isolating c2 — the nested acquisition is the cycle seed.
    let a = alpha_m.lock();
    work
}

fn outer_gamma(work: u64) -> u64 {
    let g = gamma_m.lock();
    lock_delta_side(work)
}

fn outer_delta(work: u64) -> u64 {
    let d = delta_m.lock();
    lock_gamma_side(work)
}

fn lock_delta_side(work: u64) -> u64 {
    let d = delta_m.lock();
    work
}

fn lock_gamma_side(work: u64) -> u64 {
    let g = gamma_m.lock();
    work
}

// Suppressed c2, line form: the eps/zeta cycle never closes because the
// zeta acquisition is allowed out of the lock-order graph.
fn order_eps(work: u64) -> u64 {
    let e = eps_m.lock();
    lock_zeta_side(work)
}

fn order_zeta(work: u64) -> u64 {
    // vp-lint: allow(c2): fixture — this acquisition is vouched to never nest.
    let z = zeta_m.lock();
    lock_eps_side(work)
}

fn lock_zeta_side(work: u64) -> u64 {
    let z = zeta_m.lock();
    work
}

fn lock_eps_side(work: u64) -> u64 {
    let e = eps_m.lock();
    work
}

// Suppressed c2, fn form: the audited fn's acquisitions are excluded,
// so the iota/kappa cycle never closes either.
// vp-lint: allow(c2): fixture of an audited fn — its lock order is vouched cycle-free.
fn order_iota(work: u64) -> u64 {
    let i = iota_m.lock();
    lock_kappa_side(work)
}

fn order_kappa(work: u64) -> u64 {
    let k = kappa_m.lock();
    lock_iota_side(work)
}

fn lock_kappa_side(work: u64) -> u64 {
    let k = kappa_m.lock();
    work
}

fn lock_iota_side(work: u64) -> u64 {
    let i = iota_m.lock();
    work
}

// c3: blocking calls while a `let`-bound guard is live.
pub fn shard_guarded_waits(work: u64) -> u64 {
    crate::exec::run_sharded(3);
    hold_and_recv(work);
    hold_and_join(work);
    hold_briefly(work);
    work
}

fn hold_and_recv(work: u64) -> u64 {
    let guard = mu_one.lock();
    let got = chan_one.recv();
    work
}

fn hold_and_join(work: u64) -> u64 {
    let guard = mu_two.lock();
    let done = worker_two.join();
    work
}

// Suppressed c3: the allow on the blocking line is consumed at index time.
fn hold_briefly(work: u64) -> u64 {
    let guard = mu_three.lock();
    // vp-lint: allow(c3): fixture — the sender is vouched to have already queued a value.
    let got = chan_three.recv();
    work
}

// c4: results folded in channel-arrival order — once directly (`.merge(`
// in the recv loop) and once through a helper chain that reaches a fn
// named `merge`.
pub fn shard_fold_results(work: u64) -> u64 {
    crate::exec::run_sharded(5);
    arrival_fold(work);
    arrival_fold_deep(work);
    allowed_fold(work);
    work
}

fn arrival_fold(work: u64) -> u64 {
    let mut more = true;
    while more {
        let got = chan_fold.recv();
        acc_fold.merge(got);
        more = false;
    }
    work
}

fn arrival_fold_deep(work: u64) -> u64 {
    loop {
        let got = chan_deep.recv();
        apply_result(got);
    }
}

fn apply_result(got: u64) -> u64 {
    merge(got, 1)
}

fn merge(a: u64, b: u64) -> u64 {
    a + b
}

// Suppressed c4: the allow on the receive is consumed at index time, so
// the loop is never recorded as an arrival-order fold.
fn allowed_fold(work: u64) -> u64 {
    let mut more = true;
    while more {
        // vp-lint: allow(c4): fixture — this channel carries shard-id-tagged results refolded later.
        let got = chan_ok.recv();
        acc_ok.merge(got);
        more = false;
    }
    work
}

// c5: thread primitives outside the blessed executor file (these fire
// independently of the parallel region).
fn rogue_spawn(work: u64) -> u64 {
    let h = std::thread::spawn(move || work);
    drop(h);
    work
}

fn rogue_scope(work: u64) -> u64 {
    std::thread::scope(|s| drop(s));
    work
}

// Suppressed c5.
fn sanctioned_probe(work: u64) -> u64 {
    // vp-lint: allow(c5): fixture — a vouched one-off probe thread.
    let h = std::thread::spawn(move || work);
    drop(h);
    work
}
