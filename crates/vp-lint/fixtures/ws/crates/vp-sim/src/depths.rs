//! The deep end of the fixture g1 chain (see graphs.rs): a private
//! helper whose slice indexing is the panic the public API reaches.

fn deep_index(values: &[u64]) -> u64 {
    values[0]
}
