//! Seeded graph-rule violations: interprocedural chains the token rules
//! cannot see (3 findings: 1×g1, 1×g2, 1×g3). This file is fixture
//! input for the lint gate; it is never compiled.

// g1: the public entry reaches a panic two private hops away, in
// another file (depths.rs) — the witness path must cross both files.
pub fn api_entry(values: &[u64]) -> u64 {
    mid_hop(values)
}

fn mid_hop(values: &[u64]) -> u64 {
    crate::depths::deep_index(values)
}

// g2: the wall-time read in the helper below is d2-allowed, but the
// taint still propagates to this public wrapper — allow(d2) silences
// the token rule at the read site, not the graph rule at the API.
pub fn wrapped_now() -> std::time::SystemTime {
    now_helper()
}

fn now_helper() -> std::time::SystemTime {
    // vp-lint: allow(d2): fixture proving allow(d2) does not stop g2 taint.
    std::time::SystemTime::now()
}

// vp-lint: allow(h2): fixture of a stale suppression — nothing on the next line can fire h2.
pub fn tidy(x: u64) -> u64 {
    x + 1
}
