//! Fixture stand-in for the blessed shard executor. Its path matches
//! `rules::BLESSED_EXECUTOR_FILE`, so (a) the `thread::spawn` below is
//! exempt from rule c5, and (b) every fn in conc.rs that calls
//! `run_sharded` becomes a parallel-region entry for rules c1–c4. This
//! file is fixture input for the lint gate; it is never compiled.

pub fn run_sharded(shards: usize) -> usize {
    let worker = std::thread::spawn(move || shards);
    drop(worker);
    shards
}
