//! Seeded hot-path violations (10 findings: 2 per p-rule) plus one
//! audited fn per rule, a capacity-witnessed negative, a `cold(fn)`
//! boundary, and a p3 invariant-vs-varying pair. The `shard_*` entry
//! calls `exec::run_sharded`, so the hot region is rooted in this file.
//! Fixture input for the lint gate; never compiled.

// Entry: every fn below is reached from here, so the hot region covers
// the whole file except the cold(fn) boundary.
pub fn shard_hot_probes(work: u64) -> u64 {
    crate::exec::run_sharded(6);
    alloc_per_probe(work);
    audited_batcher(work);
    witnessed_batcher(work);
    cold_setup(work);
    lookup_tree(work);
    audited_tree_reader(work);
    probe_loop_invariant(work, work);
    emit_loop_invariant(work, work);
    audited_recompute(work, work);
    dispatch_probe(work);
    dispatch_signature(work);
    audited_dispatch(work);
    fail_formatted(work);
    reject_probe(work);
    audited_reject(work);
    work
}

// p1 (two findings): unwitnessed growth per probe — the constructor and
// the push are each a fact.
fn alloc_per_probe(work: u64) -> u64 {
    let mut tags = Vec::new();
    tags.push(work);
    work
}

// Suppressed p1, fn form: the audit vouches the growth as amortized;
// the facts stay visible in `hotpath --report`.
// vp-lint: allow(p1): fixture of an audited amortized allocation.
fn audited_batcher(work: u64) -> u64 {
    let mut keep = Vec::new();
    keep.push(work);
    work
}

// No finding: the capacity witness turns the push into amortized growth.
fn witnessed_batcher(work: u64) -> u64 {
    let mut acc = Vec::with_capacity(8);
    acc.push(work);
    work
}

// cold(fn) boundary: reached from the entry but excluded from the
// region, so its allocations never become findings.
// vp-lint: cold(fn): fixture boundary — one-time setup behind the marker.
fn cold_setup(work: u64) -> u64 {
    let mut warmup = Vec::new();
    warmup.push(work);
    work
}

// p2 (two findings): ordered-map lookups on a BTreeMap-typed receiver.
fn lookup_tree(work: u64) -> u64 {
    let depths: BTreeMap<u64, u64> = BTreeMap::new(); // vp-lint: allow(p1): fixture isolating p2 — the construction is not under test.
    depths.get(&work);
    depths.contains_key(&work);
    work
}

// Suppressed p2, fn form.
// vp-lint: allow(p2): fixture of an audited ordered lookup — vouched cold, log-n map.
fn audited_tree_reader(work: u64) -> u64 {
    let sparse: BTreeMap<u64, u64> = BTreeMap::new(); // vp-lint: allow(p1): fixture isolating p2 — the construction is not under test.
    sparse.get(&work);
    work
}

// p3 (first finding) and the varying pair: `internet_checksum(seed)` is
// invariant in the loop (finding); `internet_checksum(cursor)` mentions
// the loop binding, so it varies (no finding).
fn probe_loop_invariant(seed: u64, probes: u64) -> u64 {
    for cursor in 0..probes {
        internet_checksum(seed);
        internet_checksum(cursor);
    }
    seed
}

// p3 (second finding): a helper-method recomputation under a while loop
// whose only binding is the counter.
fn emit_loop_invariant(seed: u64, probes: u64) -> u64 {
    let mut sent = 0;
    while sent < probes {
        header.emit(seed);
        sent = sent + 1;
    }
    seed
}

// Suppressed p3, fn form: the recomputation is vouched cheap.
// vp-lint: allow(p3): fixture of an audited recomputation — amortized by the part sizes on this path.
fn audited_recompute(seed: u64, probes: u64) -> u64 {
    for cursor in 0..probes {
        internet_checksum_parts(seed);
    }
    seed
}

// p4 (two findings): one `dyn` in a body type, one in a signature.
fn dispatch_probe(work: u64) -> u64 {
    let sink: Box<dyn Encode> = encoder_box(work);
    drop(sink);
    work
}

fn dispatch_signature(enc: &dyn Encode, work: u64) -> u64 {
    work
}

// Suppressed p4, fn form.
// vp-lint: allow(p4): fixture of an audited dispatch — one virtual call per shard, vouched.
fn audited_dispatch(work: u64) -> u64 {
    let gate: Box<dyn Encode> = encoder_box(work);
    drop(gate);
    work
}

// p5 (two findings): a formatted panic message and an `Err(format!(..))`.
fn fail_formatted(work: u64) -> u64 {
    if work == 0 {
        panic!("probe {} underflow", work); // vp-lint: allow(g1): fixture isolating p5 — panic reachability is not under test.
    }
    work
}

fn reject_probe(work: u64) -> u64 {
    if work == 0 {
        return Err(format!("probe {} rejected", work));
    }
    work
}

// Suppressed p5, fn form.
// vp-lint: allow(p5): fixture of an audited cold-error path — vouched never taken per probe.
fn audited_reject(work: u64) -> u64 {
    if work == 0 {
        return Err(format!("audited probe {} rejected", work));
    }
    work
}
