//! Malformed directives: each of the three lines below is a `directive`
//! finding, and none of them can be suppressed.

// vp-lint: allow(d1)
pub fn missing_justification() {}

// vp-lint: allow(bogus): not a rule.
pub fn unknown_rule() {}

// vp-lint: frobnicate(all the things)
pub fn unknown_directive() {}
