//! Fixture test file: everything here is test scope, so the unwraps and
//! hash maps below must not fire. Provides D3 coverage for the types in
//! suppressed.rs.

use std::collections::HashMap;

// vp-lint: merge-tested(Gauges::merge)

#[test]
fn totals_merge_accumulates() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 1);
    assert_eq!(m.get(&1).unwrap(), &1);
}
