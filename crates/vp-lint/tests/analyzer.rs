//! Analyzer self-tests: the lexer's masking edges, each rule firing and
//! being suppressed in isolation, and a byte-soup proptest proving the
//! whole pipeline is total (never panics) on arbitrary input.

use proptest::prelude::*;
use vp_lint::lexer::{self, Tok};
use vp_lint::rules::{self, FileContext, RuleId};

/// Scans `source` as if it were library code in a hot crate (every rule
/// active) and returns the rule ids that fired.
fn fired(source: &str) -> Vec<RuleId> {
    let ctx = FileContext::from_rel_path("crates/vp-sim/src/lib.rs");
    rules::scan_file(&ctx, source)
        .findings
        .iter()
        .map(|f| f.rule)
        .collect()
}

// ---------------------------------------------------------------------
// Lexer: masking.
// ---------------------------------------------------------------------

#[test]
fn mask_blanks_cooked_strings_and_preserves_layout() {
    let m = lexer::mask("let x = \"HashMap\";\nlet y = 1;");
    assert_eq!(m.code, "let x =          ;\nlet y = 1;");
}

#[test]
fn mask_handles_escaped_quotes() {
    let m = lexer::mask(r#"let s = "a\"b.unwrap()\"c"; done"#);
    assert!(!m.code.contains("unwrap"));
    assert!(m.code.contains("done"));
}

#[test]
fn mask_blanks_raw_strings_with_hashes() {
    let m = lexer::mask(r###"let s = r#"thread_rng() "quoted" inside"#; after"###);
    assert!(!m.code.contains("thread_rng"));
    assert!(m.code.contains("after"));
}

#[test]
fn mask_blanks_byte_and_c_strings() {
    let m = lexer::mask(r##"let a = b"HashMap"; let b = br#"HashSet"#; let c = c"env";"##);
    assert!(!m.code.contains("HashMap"));
    assert!(!m.code.contains("HashSet"));
    assert!(!m.code.contains("env"));
}

#[test]
fn mask_blanks_char_literals_but_keeps_lifetimes() {
    let m = lexer::mask("fn f<'a>(x: &'a str) -> char { 'H' }");
    assert!(m.code.contains("'a>"), "lifetime eaten: {}", m.code);
    assert!(!m.code.contains('H'));
    // Escaped char literal.
    let m = lexer::mask("let q = '\\''; let n = '\\n'; rest");
    assert!(m.code.contains("rest"));
}

#[test]
fn mask_collects_line_and_block_comments() {
    let m = lexer::mask("let a = 1; // trailing note\n// standalone note\n/* block\nspan */ let b;");
    assert!(!m.code.contains("note"));
    assert_eq!(m.comments.len(), 3);
    assert!(m.comments[0].trailing);
    assert_eq!(m.comments[0].text, "trailing note");
    assert!(!m.comments[1].trailing);
    assert_eq!(m.comments[2].line, 3);
    // Newlines inside block comments are preserved for line numbering.
    assert_eq!(m.code.lines().count(), 4);
}

#[test]
fn mask_handles_nested_block_comments() {
    let m = lexer::mask("/* outer /* inner */ still-comment */ code");
    assert!(!m.code.contains("still-comment"));
    assert!(m.code.contains("code"));
}

#[test]
fn mask_empty_prefixed_strings_do_not_swallow_following_code() {
    // Regression: the closing quote of an empty `b""`/`c""` used to be
    // re-read as an opening quote, masking everything after the literal
    // (so an `unwrap()` following `b""` escaped rule h2 entirely).
    for src in [
        "let a = b\"\"; x.unwrap(); tail",
        "let a = c\"\"; x.unwrap(); tail",
    ] {
        let m = lexer::mask(src);
        assert!(m.code.contains("unwrap"), "swallowed code after empty literal: {:?}", m.code);
        assert!(m.code.contains("tail"), "{:?}", m.code);
        assert_eq!(m.code.chars().count(), src.chars().count());
    }
    assert_eq!(fired("fn f(v: Option<u32>) -> u32 { let _ = b\"\"; v.unwrap() }\n"), [RuleId::H2]);
}

#[test]
fn mask_raw_string_hash_boundaries() {
    // The closing `"#...#` sequence must consume exactly hashes+1 chars:
    // a partial-hash candidate inside the body is content, an extra hash
    // after the real close is code, and an empty raw body closes at once.
    let m = lexer::mask(r####"let s = r##"Q"# Z"##; tail"####);
    assert!(!m.code.contains('Q') && !m.code.contains('Z'), "{:?}", m.code);
    assert!(m.code.contains("tail"));

    let m = lexer::mask(r###"let s = r#"a"##; tail"###);
    assert!(m.code.contains("#; tail"), "extra hash after close must stay code: {:?}", m.code);

    let m = lexer::mask(r###"let s = r#""#; tail"###);
    assert!(m.code.contains("tail"), "{:?}", m.code);

    // A raw string with no hashes containing a hash char.
    let m = lexer::mask("let s = r\"#\"; tail");
    assert!(!m.code.contains('#'), "{:?}", m.code);
    assert!(m.code.contains("tail"));
}

#[test]
fn mask_nested_block_comment_boundaries() {
    // `/*/` opens without closing; adjacent `*//*` closes then reopens;
    // the boundary byte after the outermost `*/` is code again.
    let m = lexer::mask("/*/ x */ tail");
    assert!(!m.code.contains('x'), "{:?}", m.code);
    assert!(m.code.contains("tail"));

    let m = lexer::mask("/* Q *//* Z */ tail");
    assert!(!m.code.contains('Q') && !m.code.contains('Z'), "{:?}", m.code);
    assert!(m.code.contains("tail"));
    assert_eq!(m.comments.len(), 2);

    let m = lexer::mask("/* a */* tail");
    assert!(m.code.contains("* tail"), "char after close is code: {:?}", m.code);

    let m = lexer::mask("/* /**/ */ tail");
    assert!(m.code.contains("tail"), "{:?}", m.code);
}

#[test]
fn mask_survives_unterminated_literals() {
    for src in ["let s = \"never closed", "let c = '", "let r = r#\"open", "/* open"] {
        let m = lexer::mask(src);
        assert_eq!(m.code.len(), src.chars().count());
    }
}

#[test]
fn doc_comment_markers_are_stripped_from_text() {
    let m = lexer::mask("/// outer doc\n//! inner doc\nfn f() {}");
    assert_eq!(m.comments[0].text, "outer doc");
    assert_eq!(m.comments[1].text, "inner doc");
}

// ---------------------------------------------------------------------
// Lexer: tokenization.
// ---------------------------------------------------------------------

#[test]
fn tokenize_splits_idents_numbers_and_punct() {
    let m = lexer::mask("x.unwrap() as u32");
    let toks = lexer::tokenize(&m);
    let idents: Vec<&str> = toks.iter().filter_map(|t| t.ident()).collect();
    assert_eq!(idents, ["x", "unwrap", "as", "u32"]);
    assert!(toks.iter().any(|t| t.is_punct('.')));
}

#[test]
fn tokenize_number_suffix_is_not_an_ident() {
    let m = lexer::mask("let x = 1u16 + 0xbad;");
    let toks = lexer::tokenize(&m);
    assert!(toks.iter().all(|t| t.ident() != Some("u16")));
    let numbers = toks.iter().filter(|t| t.tok == Tok::Number).count();
    assert_eq!(numbers, 2);
}

#[test]
fn tokenize_reports_one_based_positions() {
    let m = lexer::mask("a\n  bee");
    let toks = lexer::tokenize(&m);
    assert_eq!((toks[0].line, toks[0].col), (1, 1));
    assert_eq!((toks[1].line, toks[1].col), (2, 3));
}

// ---------------------------------------------------------------------
// Rules: each fires in isolation, and each suppression form works.
// ---------------------------------------------------------------------

#[test]
fn d1_fires_on_hash_collections() {
    assert_eq!(fired("use std::collections::HashMap;\n"), [RuleId::D1]);
    assert_eq!(fired("fn f(s: HashSet<u32>) {}\n"), [RuleId::D1]);
    assert_eq!(fired("use std::collections::hash_map::Entry;\n"), [RuleId::D1]);
    assert!(fired("use std::collections::BTreeMap;\n").is_empty());
}

#[test]
fn d2_fires_on_ambient_entropy() {
    assert_eq!(fired("fn f() { let r = thread_rng(); }\n"), [RuleId::D2]);
    assert_eq!(fired("fn f() { SystemTime::now(); }\n"), [RuleId::D2]);
    assert_eq!(fired("fn f() { Instant::now(); }\n"), [RuleId::D2]);
    assert_eq!(fired("fn f() { std::env::var(\"X\"); }\n"), [RuleId::D2]);
    // vp-bench measures wall-clock by design.
    let bench = FileContext::from_rel_path("crates/vp-bench/src/lib.rs");
    let scan = rules::scan_file(&bench, "fn f() { Instant::now(); }\n");
    assert!(scan.findings.is_empty());
}

#[test]
fn d3_records_merge_defs_and_markers() {
    let src = "impl Stats {\n    pub fn merge(&mut self, o: &Stats) {}\n}\n";
    let scan = rules::scan_file(&FileContext::from_rel_path("crates/vp-sim/src/s.rs"), src);
    assert_eq!(scan.merge_defs.len(), 1);
    assert_eq!(scan.merge_defs[0].qualified, "Stats::merge");
    assert!(!scan.merge_defs[0].suppressed);

    let marked = "// vp-lint: merge-tested(Stats::merge)\nfn t() {}\n";
    let scan = rules::scan_file(&FileContext::from_rel_path("tests/t.rs"), marked);
    assert_eq!(scan.merge_markers.len(), 1);
    assert_eq!(scan.merge_markers[0].name, "Stats::merge");
    assert_eq!(scan.merge_markers[0].suite, None);

    // Unresolved defs become findings; marked or name-matched ones do not.
    let defs = scan_defs(src);
    assert_eq!(
        rules::resolve_merge_rule(&defs, &[], &[], &[]).0.len(),
        1,
        "unmarked merge must be a finding"
    );
    assert!(rules::resolve_merge_rule(&defs, &markers(&["Stats::merge"]), &[], &[])
        .0
        .is_empty());
    assert!(
        rules::resolve_merge_rule(&defs, &[], &["stats_merge_is_commutative".into()], &[])
            .0
            .is_empty()
    );
}

fn scan_defs(src: &str) -> Vec<rules::MergeDef> {
    rules::scan_file(&FileContext::from_rel_path("crates/vp-sim/src/s.rs"), src).merge_defs
}

/// Suite-less marker sites for resolve_merge_rule tests.
fn markers(names: &[&str]) -> Vec<rules::MarkerSite> {
    names
        .iter()
        .map(|n| rules::MarkerSite {
            file: "tests/t.rs".into(),
            marker: vp_lint::directives::MergeMarker {
                line: 1,
                name: (*n).into(),
                suite: None,
            },
        })
        .collect()
}

/// A marker site claiming a proving suite.
fn suite_marker(name: &str, suite: &str) -> rules::MarkerSite {
    rules::MarkerSite {
        file: "crates/vp-net/src/bitset.rs".into(),
        marker: vp_lint::directives::MergeMarker {
            line: 7,
            name: name.into(),
            suite: Some(suite.into()),
        },
    }
}

#[test]
fn d3_suite_markers_parse_and_verify() {
    // Parsing: name + suite stem, rejecting typos and duplicates.
    let src = "// vp-lint: merge-tested(BitSet::merge, suite=columnar_equivalence)\nfn t() {}\n";
    let scan = rules::scan_file(&FileContext::from_rel_path("tests/t.rs"), src);
    assert_eq!(scan.merge_markers.len(), 1);
    assert_eq!(scan.merge_markers[0].name, "BitSet::merge");
    assert_eq!(
        scan.merge_markers[0].suite.as_deref(),
        Some("columnar_equivalence")
    );
    for bad in [
        "// vp-lint: merge-tested(X::merge, suit=typo)\n",
        "// vp-lint: merge-tested(X::merge, suite=)\n",
        "// vp-lint: merge-tested(X::merge, suite=a, suite=b)\n",
    ] {
        let scan = rules::scan_file(&FileContext::from_rel_path("tests/t.rs"), bad);
        assert!(scan.merge_markers.is_empty(), "{bad:?} must not parse");
        assert!(
            scan.findings.iter().any(|f| f.rule == RuleId::Directive),
            "{bad:?} must be a malformed-directive finding"
        );
    }

    // Resolution: the claim discharges D3 only when the suite file exists.
    let defs = scan_defs("impl Stats {\n    pub fn merge(&mut self, o: &Stats) {}\n}\n");
    let good = [suite_marker("Stats::merge", "columnar_equivalence")];
    let scanned = ["tests/columnar_equivalence.rs".to_string()];
    assert!(rules::resolve_merge_rule(&defs, &good, &[], &scanned).0.is_empty());

    // A broken claim fires both an unsuppressable directive finding at the
    // marker and the original D3 at the merge definition.
    let broken = [suite_marker("Stats::merge", "deleted_suite")];
    let (findings, _) = rules::resolve_merge_rule(&defs, &broken, &[], &scanned);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.rule == RuleId::Directive && f.message.contains("deleted_suite")));
    assert!(findings.iter().any(|f| f.rule == RuleId::D3));
}

#[test]
fn d3_marker_strict_crates_require_an_exact_marker() {
    let src = "impl DriftSummary {\n    pub fn merge(&mut self, o: &DriftSummary) {}\n}\n";
    let strict =
        rules::scan_file(&FileContext::from_rel_path("crates/vp-monitor/src/diff.rs"), src)
            .merge_defs;
    assert_eq!(strict.len(), 1);
    assert!(strict[0].marker_required);

    // A name-matched test satisfies ordinary crates but not strict ones.
    let named_test = ["driftsummary_merge_is_commutative".to_string()];
    assert_eq!(rules::resolve_merge_rule(&strict, &[], &named_test, &[]).0.len(), 1);
    // The bare `merge` wildcard marker is not enough either.
    assert_eq!(
        rules::resolve_merge_rule(&strict, &markers(&["merge"]), &[], &[]).0.len(),
        1
    );
    // Only the exact qualified marker discharges the obligation.
    assert!(rules::resolve_merge_rule(&strict, &markers(&["DriftSummary::merge"]), &[], &[])
        .0
        .is_empty());
    // The strict finding says so explicitly.
    let f = &rules::resolve_merge_rule(&strict, &[], &[], &[]).0[0];
    assert!(f.message.contains("marker-strict"), "{}", f.message);

    // The same source in a non-strict crate keeps the lenient paths.
    let lenient = scan_defs(src);
    assert!(!lenient[0].marker_required);
    assert!(rules::resolve_merge_rule(&lenient, &[], &named_test, &[]).0.is_empty());
    assert!(rules::resolve_merge_rule(&lenient, &markers(&["merge"]), &[], &[]).0.is_empty());
}

#[test]
fn d4_fires_on_wall_time_in_clock_impl_files() {
    let wall_clock = "impl Clock for WallClock {\n    fn now_nanos(&self) -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n}\n";
    // The Instant read fires d2 (ambient time) AND d4 (Clock impl file).
    let mut rules = fired(wall_clock);
    rules.sort();
    assert_eq!(rules, [RuleId::D2, RuleId::D4]);

    // Wall time without a Clock impl is only d2.
    assert_eq!(fired("fn f() { Instant::now(); }\n"), [RuleId::D2]);

    // A sim-backed Clock impl (no wall time anywhere) is clean.
    let sim = "impl Clock for SimClock {\n    fn now_nanos(&self) -> u64 { self.0 }\n}\n";
    assert!(fired(sim).is_empty());

    // A fully-qualified trait path still counts as a Clock impl.
    let pathed = "impl vp_obs::Clock for W {\n    fn now_nanos(&self) -> u64 { SystemTime::now().into() }\n}\n";
    let mut rules = fired(pathed);
    rules.sort();
    assert_eq!(rules, [RuleId::D2, RuleId::D4]);

    // Binaries may back a Clock with wall time (d2 still wants its allow).
    let bin = FileContext::from_rel_path("crates/vp-sim/src/bin/tool.rs");
    let bin_rules: Vec<RuleId> = rules::scan_file(&bin, wall_clock)
        .findings
        .iter()
        .map(|f| f.rule)
        .collect();
    assert_eq!(bin_rules, [RuleId::D2]);

    // vp-bench is exempt outright.
    let bench = FileContext::from_rel_path("crates/vp-bench/src/lib.rs");
    assert!(rules::scan_file(&bench, wall_clock).findings.is_empty());

    // Suppression covers the wall-time read site.
    let suppressed = "impl Clock for W {\n    fn now_nanos(&self) -> u64 {\n        // vp-lint: allow(d2, d4): operator display only; never reaches an artifact.\n        Instant::now().elapsed().as_nanos() as u64\n    }\n}\n";
    assert!(fired(suppressed).is_empty());
}

#[test]
fn h1_fires_only_in_hot_crates() {
    let narrowing = "fn f(x: u64) -> u32 { x as u32 }\n";
    assert_eq!(fired(narrowing), [RuleId::H1]);
    // Widening casts are fine even in hot crates.
    assert!(fired("fn f(x: u32) -> u64 { x as u64 }\n").is_empty());
    // Cold crates are exempt.
    let cold = FileContext::from_rel_path("crates/vp-geo/src/lib.rs");
    assert!(rules::scan_file(&cold, narrowing).findings.is_empty());
}

#[test]
fn h2_fires_in_libraries_but_not_bins_or_tests() {
    let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(fired(src), [RuleId::H2]);
    assert_eq!(fired("fn f(v: Option<u32>) -> u32 { v.expect(\"x\") }\n"), [RuleId::H2]);
    for path in ["crates/vp-sim/src/main.rs", "crates/vp-sim/src/bin/tool.rs", "crates/vp-sim/tests/t.rs"] {
        let ctx = FileContext::from_rel_path(path);
        assert!(rules::scan_file(&ctx, src).findings.is_empty(), "{path} not exempt");
    }
    // unwrap_or / unwrap_or_else are not panics.
    assert!(fired("fn f(v: Option<u32>) -> u32 { v.unwrap_or(0) }\n").is_empty());
}

#[test]
fn o1_fires_on_dynamic_span_names_everywhere() {
    // A literal first argument is blanked by the mask, leaving `,` or `)`
    // right after the paren: clean.
    assert!(fired("fn f(t: &T) { t.span(\"scan.round\", \"round\", None); }\n").is_empty());
    assert!(fired("fn f(t: &T) { t.event(\"mark\"); }\n").is_empty());
    // Any surviving token is a computed name: ident, reference, macro.
    assert_eq!(fired("fn f(t: &T, n: &str) { t.span(n); }\n"), [RuleId::O1]);
    assert_eq!(fired("fn f(t: &T, n: String) { t.record_span(&n, 1); }\n"), [RuleId::O1]);
    assert_eq!(
        fired("fn f(t: &T, k: u32) { t.event(format!(\"p-{k}\")); }\n"),
        [RuleId::O1]
    );
    assert_eq!(
        fired("fn f(t: &T, n: &str) { t.record_interval(n, \"p\", None, 0, 1); }\n"),
        [RuleId::O1]
    );
    // Unlike h2, binaries are not exempt: their names reach the artifacts.
    let bin = FileContext::from_rel_path("crates/vp-sim/src/bin/tool.rs");
    let src = "fn f(t: &T, n: &str) { t.span(n); }\n";
    assert_eq!(
        rules::scan_file(&bin, src)
            .findings
            .iter()
            .map(|f| f.rule)
            .collect::<Vec<_>>(),
        [RuleId::O1]
    );
    // Free functions named `span` are not policed (no leading dot), and
    // an allow suppresses the method form.
    assert!(fired("fn f(n: &str) { span(n); }\n").is_empty());
    let allowed = "fn f(t: &T, n: &str) {\n    // vp-lint: allow(o1): names come from a fixed table.\n    t.span(n);\n}\n";
    assert!(fired(allowed).is_empty());
}

#[test]
fn cfg_test_blocks_are_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f(v: Option<u32>) { v.unwrap(); }\n}\n";
    assert!(fired(src).is_empty());
}

#[test]
fn suppression_forms_standalone_trailing_and_multi_rule() {
    let standalone =
        "// vp-lint: allow(d1): justified here.\nuse std::collections::HashMap;\n";
    assert!(fired(standalone).is_empty());

    let trailing = "fn f(x: u64) -> u32 { x as u32 } // vp-lint: allow(h1): bounded by caller.\n";
    assert!(fired(trailing).is_empty());

    let multi = "// vp-lint: allow(d2, h1): justified twice.\nfn f(x: u64) -> u32 { (x ^ thread_rng()) as u32 }\n";
    assert!(fired(multi).is_empty());

    // A standalone allow covers only the next line.
    let too_far =
        "// vp-lint: allow(d1): too far away.\n\nuse std::collections::HashMap;\n";
    assert_eq!(fired(too_far), [RuleId::D1]);

    // An allow for one rule does not cover another.
    let wrong_rule = "// vp-lint: allow(h1): wrong rule.\nuse std::collections::HashMap;\n";
    assert_eq!(fired(wrong_rule), [RuleId::D1]);
}

#[test]
fn malformed_directives_are_findings_and_unsuppressable() {
    for src in [
        "// vp-lint: allow(d1)\nfn f() {}\n",
        "// vp-lint: allow(bogus): not a rule.\nfn f() {}\n",
        "// vp-lint: frobnicate(x)\nfn f() {}\n",
    ] {
        assert_eq!(fired(src), [RuleId::Directive], "on {src:?}");
    }
}

#[test]
fn literals_and_comments_never_fire() {
    let src = concat!(
        "// HashMap thread_rng() x.unwrap() y as u32\n",
        "fn f() -> String { \"HashMap::new().unwrap() as u32\".into() }\n",
    );
    assert!(fired(src).is_empty());
}

// ---------------------------------------------------------------------
// Totality: the pipeline never panics, for any input.
// ---------------------------------------------------------------------

/// Fragments that stress the literal/comment/directive edges when glued
/// together in arbitrary order.
const FRAGMENTS: [&str; 19] = [
    "\"", "'", "r#\"", "\"#", "/*", "*/", "//", "\\", "\n",
    "b'x'", "as u32", "unwrap()", "HashMap", "vp-lint: allow(d1):",
    "pub fn merge", "impl T {", "}", "#[cfg(test)]", "ident",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Byte soup in, findings (or nothing) out — never a panic, and the
    /// mask always preserves length and line structure. The character
    /// class covers every delimiter the lexer special-cases.
    #[test]
    fn pipeline_is_total_on_arbitrary_input(
        src in "[\"'/*\\\\a-z0-9 \n{}().:#!rbc_-]{0,120}",
    ) {
        let masked = lexer::mask(&src);
        prop_assert_eq!(masked.code.chars().count(), src.chars().count());
        prop_assert_eq!(
            masked.code.matches('\n').count(),
            src.matches('\n').count()
        );
        let _ = lexer::tokenize(&masked);
        let ctx = FileContext::from_rel_path("crates/vp-sim/src/fuzz.rs");
        let _ = rules::scan_file(&ctx, &src);
    }

    /// Rust-flavoured soup: token-level fragments in arbitrary order.
    #[test]
    fn pipeline_is_total_on_rusty_fragments(
        picks in collection::vec(0usize..FRAGMENTS.len(), 0..40),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let masked = lexer::mask(&src);
        let _ = lexer::tokenize(&masked);
        let ctx = FileContext::from_rel_path("crates/verfploeter/src/fuzz.rs");
        let _ = rules::scan_file(&ctx, &src);
    }
}

// ---------------------------------------------------------------------
// Graph layer: indexer, call graph, g-rules.
// ---------------------------------------------------------------------

use vp_lint::graph::{CrateDeps, Graph};
use vp_lint::{directives, grules, index, workspace};

/// Indexes one source string as if it lived at `rel`.
fn index_src(rel: &str, src: &str) -> index::FileIndex {
    let ctx = FileContext::from_rel_path(rel);
    let masked = lexer::mask(src);
    let tokens = lexer::tokenize(&masked);
    let dirs = directives::parse(&masked.comments);
    index::index_file(&ctx, &tokens, &dirs)
}

/// Runs the graph rules over a set of (rel_path, source) files with no
/// crate dependency information (every crate sees every crate).
fn g_eval(files: &[(&str, &str)]) -> Vec<vp_lint::Finding> {
    g_eval_deps(files, &CrateDeps::new())
}

fn g_eval_deps(files: &[(&str, &str)], deps: &CrateDeps) -> Vec<vp_lint::Finding> {
    let indexes: Vec<_> = files.iter().map(|(r, s)| index_src(r, s)).collect();
    let graph = Graph::build(&indexes, deps);
    let vis = workspace::visibility_of(&indexes);
    grules::evaluate(&graph, &vis).0
}

#[test]
fn g1_reports_cross_file_chain_with_witness() {
    let findings = g_eval(&[
        (
            "crates/vp-sim/src/a.rs",
            "pub fn api(v: &[u64]) -> u64 { helper(v) }\n",
        ),
        (
            "crates/vp-sim/src/b.rs",
            "fn helper(v: &[u64]) -> u64 { v[0] }\n",
        ),
    ]);
    assert_eq!(findings.len(), 1, "{}", vp_lint::to_text(&findings));
    let f = &findings[0];
    assert_eq!(f.rule, RuleId::G1);
    assert_eq!(f.file, "crates/vp-sim/src/a.rs");
    assert_eq!(f.witness.len(), 3, "witness: {:?}", f.witness);
    assert!(f.witness[1].contains("helper"));
    assert!(f.witness[2].contains("slice-indexing"));
}

#[test]
fn g1_audited_fn_stops_propagation() {
    let findings = g_eval(&[
        (
            "crates/vp-sim/src/a.rs",
            "pub fn api(v: &[u64]) -> u64 { helper(v) }\n",
        ),
        (
            "crates/vp-sim/src/b.rs",
            "// vp-lint: allow(g1): test audit — v is never empty here.\n\
             fn helper(v: &[u64]) -> u64 { v[0] }\n",
        ),
    ]);
    assert!(findings.is_empty(), "{}", vp_lint::to_text(&findings));
}

#[test]
fn g1_private_fns_are_not_entries() {
    let findings = g_eval(&[(
        "crates/vp-sim/src/a.rs",
        "fn internal(v: Option<u32>) -> u32 { v.unwrap() }\n",
    )]);
    assert!(findings.is_empty(), "{}", vp_lint::to_text(&findings));
}

#[test]
fn g1_ignores_unpoliced_crates() {
    // vp-experiments is not a policed crate: its public API may panic.
    let findings = g_eval(&[(
        "crates/vp-experiments/src/a.rs",
        "pub fn api(v: &[u64]) -> u64 { v[0] }\n",
    )]);
    assert!(findings.is_empty(), "{}", vp_lint::to_text(&findings));
}

#[test]
fn g2_propagates_taint_through_private_hops() {
    let findings = g_eval(&[(
        "crates/vp-sim/src/a.rs",
        "pub fn api() -> u64 { hop() }\n\
         fn hop() -> u64 { leaf() }\n\
         fn leaf() -> u64 { thread_rng() }\n",
    )]);
    let g2: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::G2).collect();
    assert_eq!(g2.len(), 1, "{}", vp_lint::to_text(&findings));
    assert!(g2[0].message.contains("api"));
    assert!(g2[0].witness.last().unwrap().contains("thread_rng"));
}

#[test]
fn crate_visibility_gates_cross_crate_edges() {
    let files = [
        (
            "crates/vp-sim/src/a.rs",
            "pub fn api(v: &[u64]) -> u64 { danger(v) }\n",
        ),
        (
            "crates/vp-net/src/b.rs",
            "pub fn danger(v: &[u64]) -> u64 { v[0] }\n",
        ),
    ];
    // vp-sim declares no dependency on vp-net: the call cannot resolve
    // into it, so only vp-net's own public API is flagged.
    let mut deps = CrateDeps::new();
    deps.insert("vp-sim".into(), vec![]);
    deps.insert("vp-net".into(), vec![]);
    let gated = g_eval_deps(&files, &deps);
    assert_eq!(gated.len(), 1, "{}", vp_lint::to_text(&gated));
    assert_eq!(gated[0].file, "crates/vp-net/src/b.rs");
    // With the dependency declared, the edge exists and both APIs reach
    // the panic.
    deps.insert("vp-sim".into(), vec!["vp-net".into()]);
    let linked = g_eval_deps(&files, &deps);
    assert_eq!(linked.len(), 2, "{}", vp_lint::to_text(&linked));
}

#[test]
fn graph_dumps_render() {
    let indexes = vec![index_src(
        "crates/vp-sim/src/a.rs",
        "pub fn api() -> u64 { hop() }\nfn hop() -> u64 { 7 }\n",
    )];
    let g = Graph::build(&indexes, &CrateDeps::new());
    let dot = g.to_dot();
    assert!(dot.starts_with("digraph"), "{dot}");
    assert!(dot.contains("api"));
    assert!(dot.contains("->"));
    assert!(g.to_summary().contains("api"));
}

#[test]
fn fixture_workspace_scan_is_byte_deterministic() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws");
    let a = vp_lint::scan_workspace(&root).expect("scan");
    let b = vp_lint::scan_workspace(&root).expect("scan");
    assert_eq!(vp_lint::to_json(&a), vp_lint::to_json(&b));
    assert_eq!(vp_lint::to_text(&a), vp_lint::to_text(&b));
}

/// Fragments that stress the indexer's item recognition when glued
/// together in arbitrary order.
const G_FRAGMENTS: [&str; 20] = [
    "pub fn ", "fn ", "f", "(", ")", "{", "}", "::", "use ", "mod ",
    ";", "panic!(", "[0]", ".unwrap()", "SystemTime::now()", ",",
    "impl T {", "self.", "\n", "v",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The graph layer is total and deterministic on arbitrary
    /// item-shaped soup: indexing, graph construction and rule
    /// evaluation never panic, and two runs agree byte for byte.
    #[test]
    fn graph_layer_is_total_and_deterministic(
        picks in collection::vec(0usize..G_FRAGMENTS.len(), 0..60),
    ) {
        let src: String = picks.iter().map(|&i| G_FRAGMENTS[i]).collect();
        let run = || {
            let fx = index_src("crates/vp-sim/src/soup.rs", &src);
            let indexes = vec![fx];
            let g = Graph::build(&indexes, &CrateDeps::new());
            let vis = workspace::visibility_of(&indexes);
            let (findings, used) = grules::evaluate(&g, &vis);
            (vp_lint::to_json(&findings), format!("{used:?}"), g.to_dot())
        };
        prop_assert_eq!(run(), run());
    }
}

// ---------------------------------------------------------------------
// Concurrency layer: the parallel region and rules c1–c5.
// ---------------------------------------------------------------------

/// The blessed-executor stand-in used to root a parallel region.
const BLESSED: (&str, &str) = (
    "crates/vp-sim/src/exec.rs",
    "pub fn run_sharded(n: usize) -> usize { n }\n",
);

/// Runs the c-rules over (rel_path, source) files with no dependency
/// information, returning findings plus fn-level allow usages.
fn c_eval(files: &[(&str, &str)]) -> (Vec<vp_lint::Finding>, Vec<(String, usize, RuleId)>) {
    let indexes: Vec<_> = files.iter().map(|(r, s)| index_src(r, s)).collect();
    let graph = Graph::build(&indexes, &CrateDeps::new());
    vp_lint::crules::evaluate(&graph, &indexes)
}

#[test]
fn c_rules_only_fire_inside_a_parallel_region() {
    // Hazard, locks and a recv loop — but nothing calls the executor,
    // so there is no region and nothing fires.
    let (findings, used) = c_eval(&[(
        "crates/vp-sim/src/scan.rs",
        "pub fn api() -> u64 { worker() }\n\
         fn worker() -> u64 { let c = std::cell::RefCell::new(0); drop(c); 0 }\n\
         fn guarded() { let g = mu.lock(); let r = rx.recv(); drop(r); }\n",
    )]);
    assert!(findings.is_empty(), "{}", vp_lint::to_text(&findings));
    assert!(used.is_empty());
}

#[test]
fn c1_reports_hazard_at_region_entry_with_witness() {
    let (findings, _) = c_eval(&[
        BLESSED,
        (
            "crates/vp-sim/src/scan.rs",
            "pub fn entry() -> u64 { crate::exec::run_sharded(4); worker() }\n\
             fn worker() -> u64 { let c = std::cell::RefCell::new(0); drop(c); 0 }\n",
        ),
    ]);
    assert_eq!(findings.len(), 1, "{}", vp_lint::to_text(&findings));
    let f = &findings[0];
    assert_eq!(f.rule, RuleId::C1);
    assert_eq!(f.file, "crates/vp-sim/src/scan.rs");
    assert!(f.witness[0].contains("entry"), "witness: {:?}", f.witness);
    assert!(f.witness.last().expect("witness").contains("RefCell"));
}

#[test]
fn c1_static_mut_fires_when_file_joins_the_region() {
    let (findings, _) = c_eval(&[
        BLESSED,
        (
            "crates/vp-sim/src/scan.rs",
            "static mut TOTAL: u64 = 0;\n\
             pub fn entry() -> usize { crate::exec::run_sharded(4) }\n",
        ),
    ]);
    assert_eq!(findings.len(), 1, "{}", vp_lint::to_text(&findings));
    assert_eq!(findings[0].rule, RuleId::C1);
    assert!(findings[0].message.contains("static mut TOTAL"));
}

#[test]
fn c1_line_allow_and_fn_audit_suppress() {
    // Line allow at the hazard site: consumed at index time.
    let (findings, _) = c_eval(&[
        BLESSED,
        (
            "crates/vp-sim/src/scan.rs",
            "pub fn entry() -> u64 { crate::exec::run_sharded(4); worker() }\n\
             fn worker() -> u64 {\n\
                 // vp-lint: allow(c1): thread-confined.\n\
                 let c = std::cell::RefCell::new(0);\n\
                 drop(c); 0\n\
             }\n",
        ),
    ]);
    assert!(findings.is_empty(), "{}", vp_lint::to_text(&findings));
    // Fn-level audit on the entry: suppressed, and the allow is used.
    let (findings, used) = c_eval(&[
        BLESSED,
        (
            "crates/vp-sim/src/scan.rs",
            "// vp-lint: allow(c1): state below is vouched thread-confined.\n\
             pub fn entry() -> u64 { crate::exec::run_sharded(4); worker() }\n\
             fn worker() -> u64 { let c = std::cell::RefCell::new(0); drop(c); 0 }\n",
        ),
    ]);
    assert!(findings.is_empty(), "{}", vp_lint::to_text(&findings));
    assert!(used.contains(&("crates/vp-sim/src/scan.rs".to_string(), 2, RuleId::C1)));
}

#[test]
fn c2_reports_lock_order_cycle_once() {
    let (findings, _) = c_eval(&[
        BLESSED,
        (
            "crates/vp-sim/src/scan.rs",
            "pub fn entry() { crate::exec::run_sharded(2); ab(); ba(); }\n\
             fn ab() { let a = ma.lock(); let b = mb.lock(); }\n\
             fn ba() { let b = mb.lock(); let a = ma.lock(); }\n",
        ),
    ]);
    let c2: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::C2).collect();
    assert_eq!(c2.len(), 1, "{}", vp_lint::to_text(&findings));
    assert!(c2[0].message.contains("ma") && c2[0].message.contains("mb"));
    // The nested acquisitions are also c3 blocking-under-guard sites.
    assert_eq!(findings.iter().filter(|f| f.rule == RuleId::C3).count(), 2);
}

#[test]
fn c2_interprocedural_cycle_and_fn_audit() {
    let files = |audit: &str| {
        [
            BLESSED,
            (
                "crates/vp-sim/src/scan.rs",
                Box::leak(
                    format!(
                        "pub fn entry() {{ crate::exec::run_sharded(2); og(); od(); }}\n\
                         {audit}fn og() {{\n    let g = mg.lock();\n    hd();\n}}\n\
                         fn od() {{ let d = md.lock(); hg(); }}\n\
                         fn hd() {{ let d = md.lock(); drop(d); }}\n\
                         fn hg() {{ let g = mg.lock(); drop(g); }}\n"
                    )
                    .into_boxed_str(),
                ) as &str,
            ),
        ]
    };
    // The gamma/delta cycle closes through the helpers' transitive locks.
    let (findings, _) = c_eval(&files(""));
    assert_eq!(
        findings.iter().filter(|f| f.rule == RuleId::C2).count(),
        1,
        "{}",
        vp_lint::to_text(&findings)
    );
    // Auditing one side removes its acquisitions and opens the cycle.
    let (findings, used) =
        c_eval(&files("// vp-lint: allow(c2): vouched cycle-free.\n"));
    assert!(
        !findings.iter().any(|f| f.rule == RuleId::C2),
        "{}",
        vp_lint::to_text(&findings)
    );
    assert!(used.iter().any(|(_, _, r)| *r == RuleId::C2));
}

#[test]
fn c3_blocking_under_live_guard_fires_in_region() {
    let (findings, _) = c_eval(&[
        BLESSED,
        (
            "crates/vp-sim/src/scan.rs",
            "pub fn entry() { crate::exec::run_sharded(2); waiter(); }\n\
             fn waiter() { let g = mu.lock(); let r = rx.recv(); drop(r); }\n",
        ),
    ]);
    assert_eq!(findings.len(), 1, "{}", vp_lint::to_text(&findings));
    assert_eq!(findings[0].rule, RuleId::C3);
    assert!(findings[0].message.contains("mu"));
}

#[test]
fn c4_arrival_order_folds_direct_and_through_calls() {
    let (findings, _) = c_eval(&[
        BLESSED,
        (
            "crates/vp-sim/src/scan.rs",
            "pub fn entry() { crate::exec::run_sharded(2); fold(); deep(); }\n\
             fn fold() { loop { let r = rx.recv(); acc.merge(r); } }\n\
             fn deep() { loop { let r = rx.recv(); apply(r); } }\n\
             fn apply(r: u64) -> u64 { merge(r, 1) }\n\
             fn merge(a: u64, b: u64) -> u64 { a + b }\n",
        ),
    ]);
    let c4: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::C4).collect();
    assert_eq!(c4.len(), 2, "{}", vp_lint::to_text(&findings));
    // The interprocedural finding's witness walks recv -> apply -> merge.
    let deep = c4.iter().find(|f| f.message.contains("apply")).expect("deep c4");
    assert!(deep.witness.iter().any(|w| w.contains("merge")));
}

#[test]
fn c5_thread_primitives_fire_outside_blessed_executor() {
    assert!(fired("fn f() { std::thread::spawn(|| ()); }").contains(&RuleId::C5));
    assert!(fired("fn f() { std::thread::scope(|s| drop(s)); }").contains(&RuleId::C5));
    // The blessed executor file itself is exempt.
    let blessed = FileContext::from_rel_path("crates/vp-sim/src/exec.rs");
    assert!(rules::scan_file(&blessed, "fn f() { std::thread::spawn(|| ()); }")
        .findings
        .is_empty());
    // allow(c5) suppresses and counts as used (g3 stays quiet).
    let scan = rules::scan_file(
        &FileContext::from_rel_path("crates/vp-sim/src/lib.rs"),
        "fn f() {\n    // vp-lint: allow(c5): test probe.\n    std::thread::spawn(|| ());\n}\n",
    );
    assert!(scan.findings.is_empty(), "{}", vp_lint::to_text(&scan.findings));
    assert!(scan.used_allows.iter().any(|(_, r)| *r == RuleId::C5));
}
