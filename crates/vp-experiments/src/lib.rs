//! Experiment harness for the Verfploeter reproduction.
//!
//! Every table and figure of the paper's evaluation has a regenerator here
//! (see DESIGN.md's experiment index). Each experiment is a library
//! function taking a shared [`Lab`] — which lazily builds and caches the
//! expensive artifacts (worlds, hitlists, scans, the 96-round stability
//! dataset) — and returning the rendered report; the `src/bin/*` binaries
//! are thin wrappers, and `run_all` executes everything in one process so
//! the cache is shared.
//!
//! Absolute numbers differ from the paper (the substrate is a generated
//! world, not the 2017 Internet); the *shapes* are the reproduction
//! targets: who wins, by what rough factor, where the crossovers fall.

pub mod context;
pub mod daemon;
pub mod experiments;
pub mod monitor;
pub mod obs;

pub use context::{Lab, Scale};
pub use daemon::{Daemon, DaemonConfig};
