//! Regenerates the paper's table6 over the simulated world.
//! Usage: table6_pct_lax [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::table6::run(&lab));
    lab.write_obs_report("table6_pct_lax");
}
