//! Regenerates the paper's fig9 over the simulated world.
//! Usage: fig9_stability [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full] [--snapshots &lt;dir&gt;]
//!
//! `--snapshots` additionally writes each round's catchment map (plus an
//! origins sidecar) for offline replay with `vp-monitor diff`/`watch`.

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::fig9::run(&lab));
    lab.write_obs_report("fig9_stability");
}
