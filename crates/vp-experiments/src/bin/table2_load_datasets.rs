//! Regenerates the paper's table2 over the simulated world.
//! Usage: table2_load_datasets [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::table2::run(&lab));
    lab.write_obs_report("table2_load_datasets");
}
