//! Regenerates the paper's fig3 over the simulated world.
//! Usage: fig3_tangled_maps [--scale tiny|small|default|paper] [--out &lt;dir&gt;]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::fig3::run(&lab));
}
