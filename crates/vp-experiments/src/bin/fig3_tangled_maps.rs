//! Regenerates the paper's fig3 over the simulated world.
//! Usage: fig3_tangled_maps [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::fig3::run(&lab));
    lab.write_obs_report("fig3_tangled_maps");
}
