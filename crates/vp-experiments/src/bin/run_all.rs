//! Runs every table/figure regenerator in one process so expensive
//! artifacts (worlds, scans, the 96-round stability dataset) are shared.
//! Usage: run_all [--scale tiny|small|default|paper] [--out <dir>]
//!                [--obs off|summary|full] [--flight <dir>]
//!
//! With `--obs summary` (the default) or `--obs full`, each experiment
//! writes a `vp-obs-report/v1` run report to
//! `<out dir or results>/obs/<experiment>.report.json` covering the fresh
//! work it triggered (cached artifacts are reported by the experiment
//! that built them). With `--flight <dir>` it additionally writes a
//! `vp-obs-flight/v1` flight document per experiment, with the wall-time
//! channel driven by this binary's [`WallClock`].

use vp_obs::{Clock, TraceLevel, Tracer, WallChannel};

/// Wall-clock for the operator-facing progress display. This is the one
/// place outside `vp-bench` where real time enters the workspace: it
/// feeds only the stdout timing table, never an artifact — reports carry
/// sim-time exclusively. Library crates must use injected sim clocks
/// instead (lint rule d4).
struct WallClock {
    epoch: std::time::Instant,
}

impl WallClock {
    fn new() -> WallClock {
        WallClock {
            // vp-lint: allow(d2): wall-clock progress display only; never reaches an artifact.
            epoch: std::time::Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

fn main() {
    let mut lab = vp_experiments::Lab::from_args();
    // Scans record wall-time flight intervals through this channel; the
    // timelines only reach disk when `--flight <dir>` is set, and the
    // deterministic artifacts never see them.
    lab.flight_wall = Some(WallChannel::new(std::sync::Arc::new(WallClock::new())));
    let tracer = Tracer::new(Box::new(WallClock::new()), TraceLevel::Summary, 16);
    for (name, run) in vp_experiments::experiments::all() {
        println!("==================== {name} ====================");
        // vp-lint: allow(o1): experiment names come from the fixed compile-time experiment table, not unbounded input.
        let span = tracer.span(name);
        print!("{}", run(&lab));
        span.end();
        lab.write_obs_report(name);
        let wall = tracer.summary().spans.get(name).map_or(0, |s| s.max_nanos);
        println!("[{name} completed in {:.1}s]", wall as f64 / 1e9);
        println!();
    }
    let total: u64 = tracer
        .drain()
        .spans
        .values()
        .map(|agg| agg.total_nanos)
        .sum();
    println!("[all experiments completed in {:.1}s]", total as f64 / 1e9);
}
