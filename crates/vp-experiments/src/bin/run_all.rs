//! Runs every table/figure regenerator in one process so expensive
//! artifacts (worlds, scans, the 96-round stability dataset) are shared.
//! Usage: run_all [--scale tiny|small|default|paper] [--out &lt;dir&gt;]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    for (name, run) in vp_experiments::experiments::all() {
        println!("==================== {name} ====================");
        // vp-lint: allow(d2): wall-clock progress display only; never reaches an artifact.
        let start = std::time::Instant::now();
        print!("{}", run(&lab));
        println!("[{name} completed in {:.1?}]", start.elapsed());
        println!();
    }
}
