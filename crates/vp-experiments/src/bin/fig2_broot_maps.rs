//! Regenerates the paper's fig2 over the simulated world.
//! Usage: fig2_broot_maps [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::fig2::run(&lab));
    lab.write_obs_report("fig2_broot_maps");
}
