//! Regenerates the paper's fig7 over the simulated world.
//! Usage: fig7_as_divisions [--scale tiny|small|default|paper] [--out &lt;dir&gt;]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::fig7::run(&lab));
}
