//! Regenerates the paper's fig7 over the simulated world.
//! Usage: fig7_as_divisions [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::fig7::run(&lab));
    lab.write_obs_report("fig7_as_divisions");
}
