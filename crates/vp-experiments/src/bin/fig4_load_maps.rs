//! Regenerates the paper's fig4 over the simulated world.
//! Usage: fig4_load_maps [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::fig4::run(&lab));
    lab.write_obs_report("fig4_load_maps");
}
