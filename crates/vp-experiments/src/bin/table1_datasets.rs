//! Regenerates the paper's table1 over the simulated world.
//! Usage: table1_datasets [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::table1::run(&lab));
    lab.write_obs_report("table1_datasets");
}
