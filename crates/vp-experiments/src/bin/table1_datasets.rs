//! Regenerates the paper's table1 over the simulated world.
//! Usage: table1_datasets [--scale tiny|small|default|paper] [--out &lt;dir&gt;]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::table1::run(&lab));
}
