//! The live telemetry daemon: scheduled Verfploeter scans, streamed drift.
//!
//! Usage: vp_daemon [--scale tiny|small|default|paper] [--shards N]
//! [--rounds N] [--window N] [--out <dir>] [--obs off|summary|full]
//! [--pace sim|wall] [--interval-secs N]
//!
//! Each round runs one sharded scan of the Tangled world, folds it into
//! the streaming drift tracker, and (with `--out`) republishes
//! `status.json` (canonical `vp-daemon-status/v1`) and `metrics.prom`
//! (Prometheus text) — the scrape surface. `--pace sim` (the default)
//! runs the rounds back to back entirely in sim time, so the run is
//! deterministic and its outputs are byte-comparable against the goldens
//! in `results/daemon/`; `--pace wall` sleeps `--interval-secs` between
//! rounds for a live deployment.

use std::path::PathBuf;

use vp_experiments::{Daemon, DaemonConfig, Scale};

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn parse_num(args: &[String], i: usize, flag: &str) -> u64 {
    match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
        Some(n) => n,
        None => die(&format!("{flag} needs a non-negative integer")),
    }
}

fn main() {
    // vp-lint: allow(d2): CLI entry point — args select scale/output dir, never a result.
    let args: Vec<String> = std::env::args().collect();
    let mut config = DaemonConfig::new(Scale::Default);
    let mut out: Option<PathBuf> = None;
    let mut wall_pace = false;
    let mut interval_secs = 900u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("unknown scale; use tiny|small|default|paper"));
                config = DaemonConfig {
                    scale,
                    rounds: scale.stability_rounds(),
                    ..config
                };
            }
            "--shards" => {
                i += 1;
                config.shards = parse_num(&args, i, "--shards").max(1) as usize;
            }
            "--rounds" => {
                i += 1;
                config.rounds = parse_num(&args, i, "--rounds") as u32;
            }
            "--window" => {
                i += 1;
                config.window = parse_num(&args, i, "--window").max(1) as usize;
            }
            "--obs" => {
                i += 1;
                config.obs = args
                    .get(i)
                    .and_then(|s| vp_obs::TraceLevel::parse(s))
                    .unwrap_or_else(|| die("unknown obs mode; use off|summary|full"));
            }
            "--out" => {
                i += 1;
                out = args.get(i).map(PathBuf::from);
            }
            "--pace" => {
                i += 1;
                wall_pace = match args.get(i).map(String::as_str) {
                    Some("sim") => false,
                    Some("wall") => true,
                    _ => die("unknown pace; use sim|wall"),
                };
            }
            "--interval-secs" => {
                i += 1;
                interval_secs = parse_num(&args, i, "--interval-secs");
            }
            other => die(&format!(
                "unknown argument {other:?} (supported: --scale, --shards, --rounds, \
                 --window, --obs, --out, --pace, --interval-secs)"
            )),
        }
        i += 1;
    }

    if let Some(dir) = &out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!("create {}: {e}", dir.display()));
        }
    }

    let mut daemon = Daemon::new(&config);
    publish(&daemon, out.as_deref());
    for r in 0..config.rounds {
        if wall_pace && r > 0 {
            std::thread::sleep(std::time::Duration::from_secs(interval_secs));
        }
        let step = daemon.run_round();
        publish(&daemon, out.as_deref());
        let flips = step.diff.as_ref().map_or(0, |d| d.flipped);
        let alerts = daemon
            .tracker()
            .alerts_snapshot()
            .iter()
            .filter(|a| a.cleared_round.is_none())
            .count();
        println!(
            "round {:>3}/{}: flips {flips:>5}, active alerts {alerts}",
            r + 1,
            config.rounds
        );
    }
}

/// Rewrites the two publication surfaces after every round, like a live
/// daemon republishing its scrape endpoint.
fn publish(daemon: &Daemon, out: Option<&std::path::Path>) {
    let Some(dir) = out else { return };
    let status = daemon.status_doc();
    let text = match serde_json::to_string_pretty(&status) {
        Ok(t) => t,
        Err(e) => die(&format!("serialize status doc: {e}")),
    };
    if let Err(e) = std::fs::write(dir.join("status.json"), text + "\n") {
        die(&format!("write status.json: {e}"));
    }
    if let Err(e) = std::fs::write(dir.join("metrics.prom"), daemon.scrape()) {
        die(&format!("write metrics.prom: {e}"));
    }
}
