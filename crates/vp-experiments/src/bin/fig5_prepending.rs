//! Regenerates the paper's fig5 over the simulated world.
//! Usage: fig5_prepending [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::fig5::run(&lab));
    lab.write_obs_report("fig5_prepending");
}
