//! Regenerates the paper's fig6 over the simulated world.
//! Usage: fig6_prepend_load [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::fig6::run(&lab));
    lab.write_obs_report("fig6_prepend_load");
}
