//! Regenerates the paper's table3 over the simulated world.
//! Usage: table3_sites [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::table3::run(&lab));
    lab.write_obs_report("table3_sites");
}
