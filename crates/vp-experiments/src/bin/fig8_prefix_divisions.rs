//! Regenerates the paper's fig8 over the simulated world.
//! Usage: fig8_prefix_divisions [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::fig8::run(&lab));
    lab.write_obs_report("fig8_prefix_divisions");
}
