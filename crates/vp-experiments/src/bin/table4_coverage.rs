//! Regenerates the paper's table4 over the simulated world.
//! Usage: table4_coverage [--scale tiny|small|default|paper] [--out &lt;dir&gt;]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::table4::run(&lab));
}
