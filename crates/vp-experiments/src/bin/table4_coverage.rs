//! Regenerates the paper's table4 over the simulated world.
//! Usage: table4_coverage [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::table4::run(&lab));
    lab.write_obs_report("table4_coverage");
}
