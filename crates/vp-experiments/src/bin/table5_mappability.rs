//! Regenerates the paper's table5 over the simulated world.
//! Usage: table5_mappability [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::table5::run(&lab));
    lab.write_obs_report("table5_mappability");
}
