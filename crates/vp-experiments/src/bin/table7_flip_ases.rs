//! Regenerates the paper's table7 over the simulated world.
//! Usage: table7_flip_ases [--scale tiny|small|default|paper] [--out &lt;dir&gt;]
//! [--obs off|summary|full]

fn main() {
    let lab = vp_experiments::Lab::from_args();
    print!("{}", vp_experiments::experiments::table7::run(&lab));
    lab.write_obs_report("table7_flip_ases");
}
