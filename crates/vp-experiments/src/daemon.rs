//! The live telemetry daemon core: scan on a schedule, stream the drift.
//!
//! [`Daemon`] turns the fig9 stability study into an *operational loop*:
//! each [`Daemon::run_round`] runs one sharded Verfploeter scan of the
//! Tangled world (the same STV-3-23 dataset `Lab::tangled_rounds`
//! produces — same seeds, same flipping oracle, same round names, so the
//! live stream and the offline batch are byte-comparable), feeds the
//! catchment map into a `vp_monitor::stream::DriftTracker`, folds the
//! round's scan metrics into a cumulative registry, and keeps the last
//! round's flight-recorder profile digest. After any round the daemon can
//! render its two publication surfaces:
//!
//! * [`Daemon::status_doc`] — the canonical `vp-daemon-status/v1` JSON.
//! * [`Daemon::scrape`] — the Prometheus text exposition.
//!
//! Everything here runs in sim time on injected clocks (lint rule d4):
//! the library never sleeps and never reads a wall clock. Pacing a live
//! deployment is the `vp_daemon` binary's job, which may sleep between
//! rounds; tests and golden runs call `run_round` back to back and get a
//! deterministic N-round run whose status/scrape bytes are pinned under
//! `results/daemon/`.

use std::collections::BTreeMap;

use serde_json::Value;
use verfploeter::scan::{run_scan_sharded, ScanConfig};
use verfploeter::ProbeConfig;
use vp_bgp::{FlipModel, RoutingTable};
use vp_hitlist::{Hitlist, HitlistConfig};
use vp_monitor::alert::AlertConfig;
use vp_monitor::diff::Origins;
use vp_monitor::profile::{profile_channel, ChannelProfile};
use vp_monitor::stream::{build_scrape, build_status_doc, DaemonMeta, DriftTracker, StreamStep};
use vp_net::{SimDuration, SimTime};
use vp_obs::{Registry, TraceLevel};
use vp_sim::{CatchmentOracle, FaultConfig, FlippingOracle, Scenario};

use crate::context::{Scale, FLIP_SEED, POLICY_SEED, TANGLED_TOPO_SEED};

/// Widest-span list length for the per-round profile digest.
const PROFILE_TOP_N: usize = 5;

/// Static configuration for a daemon run.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    pub scale: Scale,
    /// Scan shard count. Results are shard-count-invariant (§7), so this
    /// only affects wall-clock — and the `shards` field of the status doc.
    pub shards: usize,
    /// Rounds the run is sized for (published as `rounds_total`; the
    /// caller drives the actual loop).
    pub rounds: u32,
    /// Rolling-window width, in rounds.
    pub window: usize,
    /// Observability level for the scans (controls whether per-round
    /// flight profiles appear in the status doc).
    pub obs: TraceLevel,
    pub alert: AlertConfig,
}

impl DaemonConfig {
    pub fn new(scale: Scale) -> DaemonConfig {
        DaemonConfig {
            scale,
            shards: 1,
            rounds: scale.stability_rounds(),
            window: 8,
            obs: TraceLevel::Summary,
            alert: AlertConfig::default(),
        }
    }
}

/// The daemon state machine: call [`Daemon::run_round`] once per
/// scheduled round, then publish [`Daemon::status_doc`] and
/// [`Daemon::scrape`].
pub struct Daemon {
    scenario: Scenario,
    hitlist: Hitlist,
    table: RoutingTable,
    model: FlipModel,
    interval: SimDuration,
    shards: usize,
    obs: TraceLevel,
    meta: DaemonMeta,
    tracker: DriftTracker,
    scan_metrics: Registry,
    site_names: BTreeMap<u8, String>,
    last_profile: Option<ChannelProfile>,
    rounds_run: u32,
}

impl Daemon {
    /// Builds the world, routing table and flip model once; rounds then
    /// only pay for the scan itself.
    pub fn new(config: &DaemonConfig) -> Daemon {
        let scenario = Scenario::tangled(config.scale.topology(TANGLED_TOPO_SEED), POLICY_SEED);
        let hitlist = Hitlist::from_internet(&scenario.world, &HitlistConfig::default());
        let table = scenario.routing();
        let model = scenario.flip_model(FLIP_SEED, &table);
        let interval = SimDuration::from_mins(15);
        let origins: Origins = scenario
            .world
            .blocks
            .iter()
            .map(|b| (b.block, b.origin))
            .collect();
        let site_names: BTreeMap<u8, String> = scenario
            .announcement
            .sites
            .iter()
            .map(|s| (s.id.0, s.name.clone()))
            .collect();
        let meta = DaemonMeta {
            source: format!("vp-daemon/{}", config.scale.name()),
            scale: config.scale.name().to_owned(),
            shards: config.shards as u64,
            interval_ns: interval.0,
            rounds_total: u64::from(config.rounds),
        };
        Daemon {
            scenario,
            hitlist,
            table,
            model,
            interval,
            shards: config.shards.max(1),
            obs: config.obs,
            meta,
            tracker: DriftTracker::new(config.alert.clone(), config.window, Some(origins)),
            scan_metrics: Registry::new(),
            site_names,
            last_profile: None,
            rounds_run: 0,
        }
    }

    /// Runs the next scheduled scan round and streams it into the
    /// tracker. Round `r` starts at sim time `r * interval` with the same
    /// seeds and round name `Lab::tangled_rounds` uses, so a daemon run
    /// of N rounds reproduces the first N STV-3-23 maps exactly — for any
    /// shard count (§7).
    pub fn run_round(&mut self) -> StreamStep {
        let r = self.rounds_run;
        self.rounds_run += 1;
        let start = SimTime::ZERO + SimDuration(self.interval.0 * u64::from(r));
        let config = ScanConfig {
            name: format!("STV-3-23/r{r}"),
            probe: ProbeConfig {
                rate_per_sec: 10_000.0,
                ident: 100 + r as u16,
                order_seed: 0x57ab ^ u64::from(r),
            },
            cutoff: SimDuration::from_mins(15),
            trace: self.obs,
            wall: None,
        };
        let (table, model) = (&self.table, &self.model);
        let graph = &self.scenario.world.graph;
        let interval = self.interval;
        let result = run_scan_sharded(
            &self.scenario.world,
            &self.hitlist,
            &self.scenario.announcement,
            &|| {
                Box::new(FlippingOracle::new(
                    table.clone(),
                    graph.clone(),
                    model.clone(),
                    interval,
                )) as Box<dyn CatchmentOracle>
            },
            FaultConfig::default(),
            start,
            &config,
            0x0523 ^ u64::from(r),
            self.shards,
        );
        let duration = result
            .obs
            .sim_end
            .as_nanos()
            .saturating_sub(result.started.as_nanos());
        self.scan_metrics.merge(&result.obs.registry);
        self.last_profile = if result.obs.flight.spans.is_empty() {
            None
        } else {
            Some(profile_channel(&result.obs.flight, PROFILE_TOP_N))
        };
        self.tracker.observe_round(result.catchments, Some(duration))
    }

    /// Rounds completed so far.
    pub fn rounds_run(&self) -> u32 {
        self.rounds_run
    }

    pub fn meta(&self) -> &DaemonMeta {
        &self.meta
    }

    /// The streaming drift state (diffs, summary, windows, live alerts).
    pub fn tracker(&self) -> &DriftTracker {
        &self.tracker
    }

    /// The cumulative scan registry merged over every round so far.
    pub fn scan_metrics(&self) -> &Registry {
        &self.scan_metrics
    }

    /// The canonical `vp-daemon-status/v1` document for the current
    /// state. Deterministic: equal round counts yield identical bytes,
    /// for any shard count (only the `shards` config field differs).
    pub fn status_doc(&self) -> Value {
        build_status_doc(&self.meta, &self.tracker, self.last_profile.as_ref())
    }

    /// The Prometheus text scrape for the current state.
    pub fn scrape(&self) -> String {
        build_scrape(&self.meta, &self.tracker, &self.scan_metrics, &self.site_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_monitor::schema::validate_tagged;

    fn config() -> DaemonConfig {
        DaemonConfig {
            rounds: 3,
            window: 2,
            shards: 2,
            ..DaemonConfig::new(Scale::Tiny)
        }
    }

    #[test]
    fn daemon_rounds_match_the_offline_stability_dataset() {
        let lab = crate::Lab::new(Scale::Tiny);
        let offline = lab.tangled_rounds();
        let mut daemon = Daemon::new(&config());
        for _ in 0..3 {
            daemon.run_round();
        }
        // Live sharded rounds are the same maps the serial batch builds.
        let batch = vp_monitor::diff::diff_sequence(&offline[..3], None);
        let live: Vec<_> = daemon
            .tracker()
            .diffs()
            .iter()
            .map(|d| {
                let mut d = d.clone();
                d.flips_by_as.clear(); // batch above ran without origins
                d
            })
            .collect();
        assert_eq!(live, batch);
    }

    #[test]
    fn status_doc_validates_and_scrape_is_stable() {
        let mut daemon = Daemon::new(&config());
        let empty = daemon.status_doc();
        assert_eq!(validate_tagged(&empty), Vec::<String>::new());
        for _ in 0..2 {
            daemon.run_round();
        }
        let doc = daemon.status_doc();
        assert_eq!(validate_tagged(&doc), Vec::<String>::new());
        assert_eq!(
            doc.get("rounds_ingested").and_then(Value::as_u64),
            Some(2)
        );
        // Summary-level obs records the sim flight timeline, so the
        // status doc carries a profile digest.
        assert!(doc.get("profile").is_some_and(|p| p.get("root_ns").is_some()));
        let scrape = daemon.scrape();
        assert!(scrape.contains("daemon_rounds_ingested 2"), "{scrape}");
        assert!(scrape.contains("# TYPE scan_probes_sent"), "{scrape}");
        assert_eq!(scrape, daemon.scrape());
    }
}
