//! The shared experiment context: scales, seeds, caching, output.

use std::cell::{OnceCell, RefCell};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::rc::Rc;

use vp_atlas::{AtlasConfig, AtlasPanel, AtlasResult};
use vp_bgp::Announcement;
use vp_dns::{LoadModel, QueryLog};
use vp_hitlist::{Hitlist, HitlistConfig};
use vp_net::{SimDuration, SimTime};
use vp_obs::TraceLevel;
use vp_sim::{CatchmentOracle, FaultConfig, FlippingOracle, Scenario, StaticOracle};
use vp_topology::TopologyConfig;
use verfploeter::catchment::CatchmentMap;
use verfploeter::scan::{run_scan, run_scan_sharded, ScanConfig, ScanResult};
use verfploeter::ProbeConfig;

use crate::obs::{build_report, ObsState, ScanRecord};

/// World sizes. `Default` runs every experiment in minutes in release
/// mode; `Tiny` is for tests; `Paper` pushes block counts toward the
/// paper's scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Tiny,
    Small,
    Default,
    Paper,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The scale's name, as `--scale` spells it.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }

    pub(crate) fn topology(self, seed: u64) -> TopologyConfig {
        match self {
            Scale::Tiny => TopologyConfig::tiny(seed),
            Scale::Small => TopologyConfig {
                seed,
                num_ases: 1000,
                max_blocks: 30_000,
                ..TopologyConfig::default()
            },
            Scale::Default => TopologyConfig {
                seed,
                ..TopologyConfig::default()
            },
            Scale::Paper => TopologyConfig::paper_scale(seed),
        }
    }

    /// Atlas panel sized proportionally to the world, preserving the
    /// paper's VP-to-block ratio (9,807 VPs considered against 6.88M
    /// probed blocks ≈ 1:700). A fixed panel against a smaller world would
    /// flatten Table 4's headline coverage ratio.
    fn atlas(self, seed: u64, world_blocks: usize) -> AtlasConfig {
        let num_vps = (world_blocks / 700).clamp(60, 9807);
        AtlasConfig {
            num_vps,
            unavailable_prob: 455.0 / 9807.0,
            seed,
        }
    }

    /// Stability-study rounds (the paper runs 96 over 24 hours).
    pub fn stability_rounds(self) -> u32 {
        match self {
            Scale::Tiny => 12,
            _ => 96,
        }
    }
}

/// Shard count for the parallel scan path: one engine per available core.
/// Results are shard-count-invariant, so this only affects wall-clock.
fn scan_shards() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

const BROOT_TOPO_SEED: u64 = 0xB007;
pub(crate) const TANGLED_TOPO_SEED: u64 = 0x7A9;
pub(crate) const POLICY_SEED: u64 = 0x90;
pub(crate) const FLIP_SEED: u64 = 0xF11;

/// Lazily built, cached experiment artifacts.
pub struct Lab {
    pub scale: Scale,
    pub out_dir: Option<PathBuf>,
    /// Observability mode (`--obs off|summary|full`). `Off` disables all
    /// recording; `Summary` keeps metrics, span aggregates and run
    /// reports; `Full` additionally retains bounded event rings. The mode
    /// never changes any experiment output — only what gets observed.
    pub obs: TraceLevel,
    /// Where fig9 writes per-round catchment snapshots (`--snapshots
    /// <dir>`): one `r<NNN>.json` per round plus an `origins.json`
    /// sidecar, the replay input for `vp-monitor diff`/`watch`. `None`
    /// (the default) writes nothing — 96 default-scale rounds are too
    /// big to emit unasked.
    pub snapshot_dir: Option<PathBuf>,
    /// Where to write the round's `vp-obs-flight/v1` document (`--flight
    /// <dir>`): one `<experiment>.flight.json` per experiment. `None` (the
    /// default) writes nothing.
    pub flight_dir: Option<PathBuf>,
    /// Wall-time flight channel for scans, attached by binaries only
    /// (library code cannot construct wall clocks — lint rule d4). With
    /// `None`, scans still record the deterministic sim-time channel.
    pub flight_wall: Option<vp_obs::WallChannel>,
    obs_state: RefCell<ObsState>,
    broot: OnceCell<Scenario>,
    tangled: OnceCell<Scenario>,
    broot_hitlist: OnceCell<Hitlist>,
    tangled_hitlist: OnceCell<Hitlist>,
    atlas_broot: OnceCell<AtlasPanel>,
    atlas_tangled: OnceCell<AtlasPanel>,
    vp_scans: RefCell<BTreeMap<String, Rc<ScanResult>>>,
    atlas_scans: RefCell<BTreeMap<String, Rc<AtlasResult>>>,
    tangled_rounds: OnceCell<Rc<Vec<CatchmentMap>>>,
}

impl Lab {
    pub fn new(scale: Scale) -> Lab {
        Lab {
            scale,
            out_dir: None,
            obs: TraceLevel::Summary,
            snapshot_dir: None,
            flight_dir: None,
            flight_wall: None,
            obs_state: RefCell::new(ObsState::default()),
            broot: OnceCell::new(),
            tangled: OnceCell::new(),
            broot_hitlist: OnceCell::new(),
            tangled_hitlist: OnceCell::new(),
            atlas_broot: OnceCell::new(),
            atlas_tangled: OnceCell::new(),
            vp_scans: RefCell::new(BTreeMap::new()),
            atlas_scans: RefCell::new(BTreeMap::new()),
            tangled_rounds: OnceCell::new(),
        }
    }

    /// Builds a lab from process args: `--scale tiny|small|default|paper`,
    /// `--out <dir>` for JSON artifacts, `--obs off|summary|full` for the
    /// observability mode, and `--snapshots <dir>` for fig9's per-round
    /// catchment snapshots.
    pub fn from_args() -> Lab {
        // vp-lint: allow(d2): CLI entry point — args select scale/output dir, never a result.
        let args: Vec<String> = std::env::args().collect();
        let mut scale = Scale::Default;
        let mut out = None;
        let mut obs = TraceLevel::Summary;
        let mut snapshots = None;
        let mut flight = None;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    scale = args
                        .get(i)
                        .and_then(|s| Scale::parse(s))
                        .unwrap_or_else(|| {
                            eprintln!("unknown scale; use tiny|small|default|paper");
                            std::process::exit(2);
                        });
                }
                "--out" => {
                    i += 1;
                    out = args.get(i).map(PathBuf::from);
                }
                "--obs" => {
                    i += 1;
                    obs = args
                        .get(i)
                        .and_then(|s| TraceLevel::parse(s))
                        .unwrap_or_else(|| {
                            eprintln!("unknown obs mode; use off|summary|full");
                            std::process::exit(2);
                        });
                }
                "--snapshots" => {
                    i += 1;
                    snapshots = args.get(i).map(PathBuf::from);
                }
                "--flight" => {
                    i += 1;
                    flight = args.get(i).map(PathBuf::from);
                }
                other => {
                    eprintln!(
                        "unknown argument {other:?} (supported: --scale, --out, --obs, --snapshots, --flight)"
                    );
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        let mut lab = Lab::new(scale);
        lab.out_dir = out;
        lab.obs = obs;
        lab.snapshot_dir = snapshots;
        lab.flight_dir = flight;
        lab
    }

    /// The two-site B-Root world.
    pub fn broot(&self) -> &Scenario {
        self.broot
            .get_or_init(|| Scenario::broot(self.scale.topology(BROOT_TOPO_SEED), POLICY_SEED))
    }

    /// The nine-site Tangled world.
    pub fn tangled(&self) -> &Scenario {
        self.tangled
            .get_or_init(|| Scenario::tangled(self.scale.topology(TANGLED_TOPO_SEED), POLICY_SEED))
    }

    pub fn broot_hitlist(&self) -> &Hitlist {
        self.broot_hitlist
            .get_or_init(|| Hitlist::from_internet(&self.broot().world, &HitlistConfig::default()))
    }

    pub fn tangled_hitlist(&self) -> &Hitlist {
        self.tangled_hitlist.get_or_init(|| {
            Hitlist::from_internet(&self.tangled().world, &HitlistConfig::default())
        })
    }

    pub fn atlas_broot(&self) -> &AtlasPanel {
        self.atlas_broot.get_or_init(|| {
            let world = &self.broot().world;
            AtlasPanel::place(world, &self.scale.atlas(0xa1, world.blocks.len()))
        })
    }

    pub fn atlas_tangled(&self) -> &AtlasPanel {
        self.atlas_tangled.get_or_init(|| {
            let world = &self.tangled().world;
            AtlasPanel::place(world, &self.scale.atlas(0xa2, world.blocks.len()))
        })
    }

    /// The policy-drift seed of the "April" measurement date: same
    /// announcement, but inter-AS tie-breaks drifted the way a month of
    /// routing change does (the paper sees the blocks-to-LAX share move
    /// from 82.4% to 87.8% between its two dates).
    pub fn april_policy_seed(&self) -> u64 {
        POLICY_SEED ^ 0x0421
    }

    /// The DITL-style load log for B-Root on the April date (LB-4-12).
    pub fn load_april<'w>(&'w self) -> QueryLog<'w> {
        QueryLog::ditl(&self.broot().world, LoadModel::default(), "LB-4-12")
    }

    /// The B-Root load log on the May date (LB-5-15): April volumes with a
    /// month of per-block drift.
    pub fn load_may<'w>(&'w self) -> QueryLog<'w> {
        self.load_april().with_date(0x0515, "LB-5-15")
    }

    /// The `.nl`-style regional load log (LN-4-12).
    pub fn load_nl<'w>(&'w self) -> QueryLog<'w> {
        QueryLog::regional(&self.broot().world, LoadModel::default(), "LN-4-12", "NL")
    }

    /// Runs (or returns the cached) Verfploeter scan for an announcement
    /// variant. `key` names the dataset (e.g. "SBV-5-15"); `ident` is the
    /// measurement-round ICMP identifier.
    pub fn vp_scan(
        &self,
        key: &str,
        scenario: &Scenario,
        hitlist: &Hitlist,
        announcement: &Announcement,
        ident: u16,
    ) -> Rc<ScanResult> {
        self.vp_scan_seeded(key, scenario, hitlist, announcement, ident, scenario.policy_seed)
    }

    /// Like [`Lab::vp_scan`] but under a drifted routing-policy seed (used
    /// for the April measurement date).
    pub fn vp_scan_seeded(
        &self,
        key: &str,
        scenario: &Scenario,
        hitlist: &Hitlist,
        announcement: &Announcement,
        ident: u16,
        policy_seed: u64,
    ) -> Rc<ScanResult> {
        if let Some(r) = self.vp_scans.borrow().get(key) {
            return Rc::clone(r);
        }
        let (table, route_obs) = scenario.routing_with_seed_traced(announcement, policy_seed);
        let config = ScanConfig {
            name: key.to_owned(),
            probe: ProbeConfig {
                rate_per_sec: 10_000.0,
                ident,
                order_seed: 0x0bde ^ ident as u64,
            },
            cutoff: SimDuration::from_mins(15),
            trace: self.obs,
            wall: self.flight_wall.clone(),
        };
        // The sharded path is bit-identical to the serial one (see
        // `verfploeter::scan::run_scan_sharded`), so experiments get the
        // wall-clock win for free without changing any published number.
        let shards = scan_shards();
        let result = Rc::new(run_scan_sharded(
            &scenario.world,
            hitlist,
            announcement,
            &|| Box::new(StaticOracle::new(table.clone())) as Box<dyn CatchmentOracle>,
            FaultConfig::default(),
            SimTime::ZERO,
            &config,
            0x51ed ^ ident as u64,
            shards,
        ));
        self.record_scan_obs(key, shards, &result, Some(&route_obs));
        self.vp_scans
            .borrow_mut()
            .insert(key.to_owned(), Rc::clone(&result));
        result
    }

    /// Folds one fresh scan (and optionally the BGP propagation that
    /// produced its routing table) into the current experiment's
    /// observability state. No-op with `--obs off`. Cache hits never reach
    /// this, so cached work is not double-counted.
    fn record_scan_obs(
        &self,
        key: &str,
        shards: usize,
        result: &ScanResult,
        route_obs: Option<&vp_bgp::RouteObs>,
    ) {
        if self.obs == TraceLevel::Off {
            return;
        }
        let mut state = self.obs_state.borrow_mut();
        if let Some(route) = route_obs {
            state.record_route(route);
        }
        state.record_scan(
            ScanRecord {
                name: key.to_owned(),
                shards,
                probes_sent: result.probes_sent,
                blocks_mapped: result.catchments.len() as u64,
                started_ns: result.started.as_nanos(),
                last_probe_ns: result.last_probe.as_nanos(),
                sim_end_ns: result.obs.sim_end.as_nanos(),
                shard_probes: result.obs.shard_probes.clone(),
            },
            &result.obs,
        );
    }

    /// Runs (or returns the cached) Atlas scan for an announcement variant.
    pub fn atlas_scan(
        &self,
        key: &str,
        scenario: &Scenario,
        panel: &AtlasPanel,
        announcement: &Announcement,
    ) -> Rc<AtlasResult> {
        self.atlas_scan_seeded(key, scenario, panel, announcement, scenario.policy_seed)
    }

    /// Like [`Lab::atlas_scan`] but under a drifted routing-policy seed.
    pub fn atlas_scan_seeded(
        &self,
        key: &str,
        scenario: &Scenario,
        panel: &AtlasPanel,
        announcement: &Announcement,
        policy_seed: u64,
    ) -> Rc<AtlasResult> {
        if let Some(r) = self.atlas_scans.borrow().get(key) {
            return Rc::clone(r);
        }
        let table = scenario.routing_with_seed(announcement, policy_seed);
        let result = Rc::new(vp_atlas::run_scan(
            &scenario.world,
            panel,
            announcement,
            Box::new(StaticOracle::new(table)),
            FaultConfig::default(),
            SimTime::ZERO,
            SimDuration::from_mins(8),
            key,
            0xa7 ^ key.len() as u64,
        ));
        self.atlas_scans
            .borrow_mut()
            .insert(key.to_owned(), Rc::clone(&result));
        result
    }

    /// The STV-3-23 dataset: the Tangled catchment measured every 15
    /// minutes for 24 hours (96 rounds at default scale), with churn and
    /// route flips active.
    pub fn tangled_rounds(&self) -> Rc<Vec<CatchmentMap>> {
        Rc::clone(self.tangled_rounds.get_or_init(|| {
            let scenario = self.tangled();
            let hitlist = self.tangled_hitlist();
            let table = scenario.routing();
            let model = scenario.flip_model(FLIP_SEED, &table);
            let rounds = self.scale.stability_rounds();
            let interval = SimDuration::from_mins(15);
            let mut maps = Vec::with_capacity(rounds as usize);
            for r in 0..rounds {
                let oracle = FlippingOracle::new(
                    table.clone(),
                    scenario.world.graph.clone(),
                    model.clone(),
                    interval,
                );
                let start = SimTime::ZERO + SimDuration(interval.0 * r as u64);
                let config = ScanConfig {
                    name: format!("STV-3-23/r{r}"),
                    probe: ProbeConfig {
                        rate_per_sec: 10_000.0,
                        ident: 100 + r as u16,
                        order_seed: 0x57ab ^ r as u64,
                    },
                    cutoff: SimDuration::from_mins(15),
                    trace: self.obs,
                    wall: self.flight_wall.clone(),
                };
                let result = run_scan(
                    &scenario.world,
                    hitlist,
                    &scenario.announcement,
                    Box::new(oracle),
                    FaultConfig::default(),
                    start,
                    &config,
                    0x0523 ^ r as u64,
                );
                self.record_scan_obs(&config.name, 1, &result, None);
                maps.push(result.catchments);
            }
            Rc::new(maps)
        }))
    }

    /// Drains the observability state accumulated since the last call and
    /// returns it as a `vp-obs-report/v1` document for `experiment`.
    /// Returns `None` with `--obs off`.
    pub fn take_obs_report(&self, experiment: &str) -> Option<serde_json::Value> {
        if self.obs == TraceLevel::Off {
            return None;
        }
        let state = std::mem::take(&mut *self.obs_state.borrow_mut());
        Some(build_report(experiment, self.obs, &state))
    }

    /// Drains the flight timelines accumulated since the last report and
    /// writes them as `<flight_dir>/<experiment>.flight.json`
    /// (`vp-obs-flight/v1`, canonical JSON). No-op unless `--flight` was
    /// given and observability is on.
    fn write_flight_doc(&self, experiment: &str) {
        let Some(dir) = &self.flight_dir else { return };
        if self.obs == TraceLevel::Off {
            return;
        }
        let (sim, wall) = {
            let mut state = self.obs_state.borrow_mut();
            (
                std::mem::take(&mut state.flight),
                std::mem::take(&mut state.wall_flight),
            )
        };
        let doc = vp_obs::FlightDoc {
            source: experiment.to_owned(),
            sim,
            wall,
        };
        // vp-lint: allow(h2): an I/O failure must abort loudly, not silently drop flight docs.
        std::fs::create_dir_all(dir).expect("create flight output dir");
        let path = dir.join(format!("{experiment}.flight.json"));
        std::fs::write(&path, doc.to_canonical_json())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    }

    /// Drains the observability state and writes the run report to
    /// `<out_dir or "results">/obs/<experiment>.report.json` (plus the
    /// flight document, when `--flight` is set). No-op with `--obs off`.
    pub fn write_obs_report(&self, experiment: &str) {
        self.write_flight_doc(experiment);
        let Some(report) = self.take_obs_report(experiment) else {
            return;
        };
        let dir = self
            .out_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("results"))
            .join("obs");
        // vp-lint: allow(h2): an I/O failure must abort loudly, not silently drop reports.
        std::fs::create_dir_all(&dir).expect("create obs output dir");
        let path = dir.join(format!("{experiment}.report.json"));
        // vp-lint: allow(h2): serde_json on owned derived data cannot fail.
        std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serialize"))
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    }

    /// Writes a JSON artifact under the output directory, if one is set.
    pub fn write_json(&self, name: &str, value: &serde_json::Value) {
        let Some(dir) = &self.out_dir else { return };
        // vp-lint: allow(h2): an I/O failure must abort loudly, not silently drop artifacts.
        std::fs::create_dir_all(dir).expect("create output dir");
        let path = dir.join(format!("{name}.json"));
        // vp-lint: allow(h2): serde_json on owned derived data cannot fail.
        std::fs::write(&path, serde_json::to_string_pretty(value).expect("serialize"))
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn lab_caches_scans() {
        let lab = Lab::new(Scale::Tiny);
        let s = lab.broot();
        let hl = lab.broot_hitlist();
        let a = lab.vp_scan("SBV-X", s, hl, &s.announcement, 1);
        let b = lab.vp_scan("SBV-X", s, hl, &s.announcement, 1);
        assert!(Rc::ptr_eq(&a, &b), "scan not cached");
    }

    #[test]
    fn lab_builds_both_worlds() {
        let lab = Lab::new(Scale::Tiny);
        assert_eq!(lab.broot().announcement.sites.len(), 2);
        assert_eq!(lab.tangled().announcement.sites.len(), 9);
        assert_eq!(lab.broot_hitlist().len(), lab.broot().world.blocks.len());
    }

    #[test]
    fn april_seed_differs_and_drifts_routing_modestly() {
        let lab = Lab::new(Scale::Tiny);
        assert_ne!(lab.april_policy_seed(), POLICY_SEED);
        let s = lab.broot();
        let may = s.routing();
        let april = s.routing_with_seed(&s.announcement, lab.april_policy_seed());
        let moved = may
            .per_as
            .iter()
            .zip(&april.per_as)
            .filter(|(a, b)| {
                a.as_ref().map(|r| r.selected_site()) != b.as_ref().map(|r| r.selected_site())
            })
            .count();
        assert!(moved > 0, "no routing drift between dates");
        assert!(moved * 2 < may.per_as.len(), "drift too large: {moved}");
    }

    #[test]
    fn obs_records_fresh_scans_but_not_cache_hits() {
        let mut lab = Lab::new(Scale::Tiny);
        lab.obs = TraceLevel::Full;
        let s = lab.broot();
        let hl = lab.broot_hitlist();
        let _ = lab.vp_scan("SBV-OBS", s, hl, &s.announcement, 1);
        let _ = lab.vp_scan("SBV-OBS", s, hl, &s.announcement, 1); // cached

        let report = lab.take_obs_report("obs-test").expect("report");
        let serde_json::Value::Object(obj) = &report else {
            panic!("report not an object")
        };
        let scans = obj.get("scans").and_then(|v| v.as_array()).unwrap();
        assert_eq!(scans.len(), 1, "cache hit was double-recorded");
        assert!(!obj.get("metrics").and_then(|v| v.as_array()).unwrap().is_empty());

        // Draining resets the state: a second take sees no scans.
        let again = lab.take_obs_report("obs-test").expect("report");
        let serde_json::Value::Object(obj) = &again else {
            panic!("report not an object")
        };
        assert!(obj.get("scans").and_then(|v| v.as_array()).unwrap().is_empty());
    }

    #[test]
    fn obs_off_records_nothing() {
        let mut lab = Lab::new(Scale::Tiny);
        lab.obs = TraceLevel::Off;
        let s = lab.broot();
        let hl = lab.broot_hitlist();
        let _ = lab.vp_scan("SBV-OBS-OFF", s, hl, &s.announcement, 1);
        assert!(lab.take_obs_report("obs-test").is_none());
    }

    #[test]
    fn tangled_rounds_build_at_tiny_scale() {
        let lab = Lab::new(Scale::Tiny);
        let rounds = lab.tangled_rounds();
        assert_eq!(rounds.len(), 12);
        assert!(rounds.iter().all(|m| !m.is_empty()));
        // Cached.
        let again = lab.tangled_rounds();
        assert!(Rc::ptr_eq(&rounds, &again));
    }
}
