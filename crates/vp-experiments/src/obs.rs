//! Per-experiment run reports: the experiment harness's view of the
//! [`vp_obs`] layer.
//!
//! While an experiment runs, the [`Lab`](crate::Lab) folds every fresh
//! scan's [`ScanObs`] and every BGP propagation's [`RouteObs`] into one
//! [`ObsState`]. After the experiment finishes, [`build_report`] renders
//! the accumulated state as a JSON run report
//! (`results/obs/<experiment>.report.json`), whose shape is pinned by the
//! schema snapshot embedded in `vp_monitor::schema` (the checked-in
//! `crates/vp-monitor/schema/obs_report.schema.json`).
//!
//! Two determinism rules shape this module:
//!
//! * Everything in a report is **sim-time or a counter** — wall-clock
//!   never appears, so reports are byte-stable across machines and runs.
//! * The `Lab` caches scans across experiments within one `run_all`
//!   process; only *fresh* work is recorded, so an experiment that reuses
//!   a cached scan honestly reports an empty `scans` array rather than
//!   double-counting another experiment's work.

use std::collections::BTreeMap;

use serde_json::Value;
use vp_obs::{Registry, TraceLevel, TraceSummary};
use verfploeter::scan::ScanObs;

/// Cap on events embedded in a report. `--obs full` traces can exceed the
/// ring capacity of every engine combined; the report keeps the earliest
/// slice and says so via `events_truncated`.
const REPORT_EVENT_CAP: usize = 512;

/// One fresh scan executed while the current experiment was running.
#[derive(Debug, Clone)]
pub struct ScanRecord {
    /// Dataset name, e.g. `"SBV-5-15"` or `"STV-3-23/r17"`.
    pub name: String,
    /// Shard count the scan ran with (1 = serial path).
    pub shards: usize,
    pub probes_sent: u64,
    /// Blocks in the final catchment map.
    pub blocks_mapped: u64,
    /// Sim-time bounds of the probing phase.
    pub started_ns: u64,
    pub last_probe_ns: u64,
    /// Final event-loop clock (max over shards; shard-count-invariant).
    pub sim_end_ns: u64,
    /// Probes issued per shard, for the load-balance summary.
    pub shard_probes: Vec<u64>,
}

/// Observations accumulated across one experiment's fresh work.
#[derive(Debug, Default)]
pub struct ObsState {
    /// Merged metric registries of every fresh scan plus BGP counters.
    pub registry: Registry,
    /// Merged trace summaries (span aggregates + bounded event slices).
    pub trace: TraceSummary,
    /// Merged sim-time flight timelines (deterministic, DESIGN.md §15).
    pub flight: vp_obs::FlightTimeline,
    /// Merged wall-time flight timelines; empty unless the binary attached
    /// a wall channel. Outside the determinism contract.
    pub wall_flight: vp_obs::FlightTimeline,
    /// Per-scan records in execution order.
    pub scans: Vec<ScanRecord>,
}

impl ObsState {
    /// Folds one fresh scan's observability block into the state.
    pub fn record_scan(&mut self, record: ScanRecord, obs: &ScanObs) {
        self.registry.merge(&obs.registry);
        self.trace.merge(&obs.trace);
        self.flight.merge(&obs.flight);
        self.wall_flight.merge(&obs.wall_flight);
        self.scans.push(record);
    }

    /// Folds one BGP route-propagation's work counters into the state.
    pub fn record_route(&mut self, obs: &vp_bgp::RouteObs) {
        obs.record(&mut self.registry);
    }

    pub fn is_empty(&self) -> bool {
        self.scans.is_empty() && self.registry.is_empty() && self.trace.is_empty()
    }
}

/// Integer imbalance of a shard-probe split, in permille of the largest
/// shard: `(max - min) * 1000 / max`. 0 = perfectly balanced. Integer
/// arithmetic keeps the report byte-stable.
fn imbalance_permille(shard_probes: &[u64]) -> u64 {
    let max = shard_probes.iter().copied().max().unwrap_or(0);
    let min = shard_probes.iter().copied().min().unwrap_or(0);
    (max - min) * 1000 / max.max(1)
}

fn scan_value(rec: &ScanRecord) -> Value {
    let mut balance = BTreeMap::new();
    balance.insert("shards".to_owned(), Value::U64(rec.shards as u64));
    balance.insert(
        "min_probes".to_owned(),
        Value::U64(rec.shard_probes.iter().copied().min().unwrap_or(0)),
    );
    balance.insert(
        "max_probes".to_owned(),
        Value::U64(rec.shard_probes.iter().copied().max().unwrap_or(0)),
    );
    balance.insert(
        "imbalance_permille".to_owned(),
        Value::U64(imbalance_permille(&rec.shard_probes)),
    );

    let mut obj = BTreeMap::new();
    obj.insert("name".to_owned(), Value::Str(rec.name.clone()));
    obj.insert("probes_sent".to_owned(), Value::U64(rec.probes_sent));
    obj.insert("blocks_mapped".to_owned(), Value::U64(rec.blocks_mapped));
    obj.insert("started_ns".to_owned(), Value::U64(rec.started_ns));
    obj.insert("last_probe_ns".to_owned(), Value::U64(rec.last_probe_ns));
    obj.insert("sim_end_ns".to_owned(), Value::U64(rec.sim_end_ns));
    obj.insert("shard_balance".to_owned(), Value::Object(balance));
    Value::Object(obj)
}

/// Renders the accumulated state as the `vp-obs-report/v1` JSON document.
pub fn build_report(experiment: &str, mode: TraceLevel, state: &ObsState) -> Value {
    let scans: Vec<Value> = state.scans.iter().map(scan_value).collect();

    let phases: Vec<Value> = state
        .trace
        .spans
        .iter()
        .map(|(name, agg)| {
            let mut obj = BTreeMap::new();
            obj.insert("name".to_owned(), Value::Str(name.clone()));
            obj.insert("count".to_owned(), Value::U64(agg.count));
            obj.insert("total_nanos".to_owned(), Value::U64(agg.total_nanos));
            obj.insert("max_nanos".to_owned(), Value::U64(agg.max_nanos));
            Value::Object(obj)
        })
        .collect();

    // The registry already knows its canonical JSON form; round-trip it
    // through the parser instead of re-encoding metric-by-metric.
    let registry: Value =
        // vp-lint: allow(h2): parsing the registry's own canonical output cannot fail.
        serde_json::from_str(&state.registry.to_canonical_json()).expect("canonical registry json");
    let metrics = match registry {
        Value::Object(mut obj) => obj.remove("metrics").unwrap_or(Value::Array(Vec::new())),
        _ => Value::Array(Vec::new()),
    };

    let truncated = state.trace.events.len() > REPORT_EVENT_CAP;
    let events: Vec<Value> = state
        .trace
        .events
        .iter()
        .take(REPORT_EVENT_CAP)
        .map(|e| {
            let mut obj = BTreeMap::new();
            obj.insert("at_nanos".to_owned(), Value::U64(e.at_nanos));
            obj.insert("name".to_owned(), Value::Str(e.name.clone()));
            obj.insert("detail".to_owned(), Value::Str(e.detail.clone()));
            Value::Object(obj)
        })
        .collect();

    let mut report = BTreeMap::new();
    report.insert(
        "schema".to_owned(),
        Value::Str("vp-obs-report/v1".to_owned()),
    );
    report.insert("experiment".to_owned(), Value::Str(experiment.to_owned()));
    report.insert("mode".to_owned(), Value::Str(mode.name().to_owned()));
    report.insert("scans".to_owned(), Value::Array(scans));
    report.insert("phases".to_owned(), Value::Array(phases));
    report.insert("metrics".to_owned(), metrics);
    report.insert("events".to_owned(), Value::Array(events));
    report.insert("events_truncated".to_owned(), Value::Bool(truncated));
    report.insert(
        "dropped_events".to_owned(),
        Value::U64(state.trace.dropped_events),
    );
    Value::Object(report)
}

/// The mini JSON-schema validator the report snapshot test uses. It
/// moved to [`vp_monitor::schema`] (the monitor validates four document
/// families against embedded snapshots); this re-export keeps the
/// harness-side call sites working.
pub use vp_monitor::schema::validate_schema;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_is_zero_for_balanced_and_empty() {
        assert_eq!(imbalance_permille(&[]), 0);
        assert_eq!(imbalance_permille(&[5, 5, 5]), 0);
        assert_eq!(imbalance_permille(&[100, 50]), 500);
        assert_eq!(imbalance_permille(&[10, 0]), 1000);
    }

    #[test]
    fn empty_state_builds_a_minimal_report() {
        let state = ObsState::default();
        assert!(state.is_empty());
        let report = build_report("x", TraceLevel::Summary, &state);
        let Value::Object(obj) = &report else {
            panic!("report not an object")
        };
        assert_eq!(
            obj.get("schema"),
            Some(&Value::Str("vp-obs-report/v1".to_owned()))
        );
        assert_eq!(obj.get("mode"), Some(&Value::Str("summary".to_owned())));
        assert_eq!(obj.get("events_truncated"), Some(&Value::Bool(false)));
    }

    /// The re-exported validator is the real one (its own tests live in
    /// `vp_monitor::schema`).
    #[test]
    fn reexported_validator_validates() {
        let schema: Value = serde_json::from_str(r#"{"type":"integer"}"#).unwrap();
        assert!(validate_schema(&Value::U64(7), &schema).is_empty());
        assert!(!validate_schema(&Value::Str("7".to_owned()), &schema).is_empty());
    }
}
