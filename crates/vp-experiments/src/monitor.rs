//! Snapshot emission for the vp-monitor replay pipeline.
//!
//! `fig9_stability --snapshots <dir>` writes each stability round's
//! [`CatchmentMap`] as `r<NNN>.json` plus a `vp-monitor-origins/v1`
//! sidecar mapping every block that ever responded to its origin AS.
//! `vp-monitor diff --rounds <dir>` then replays the sequence offline:
//! the same drift numbers fig9 reports, but as an alertable stream
//! instead of a figure.
//!
//! File names are zero-padded so lexicographic order equals round order —
//! the property `vp_monitor::ingest::load_rounds_dir` sorts by.

use std::collections::BTreeSet;
use std::path::Path;

use verfploeter::catchment::CatchmentMap;
use vp_monitor::diff::Origins;
use vp_monitor::ingest::build_origins_doc;
use vp_net::Block24;
use vp_topology::Internet;

/// Origin-AS attribution for every block appearing in any round.
fn collect_origins(rounds: &[CatchmentMap], world: &Internet) -> Origins {
    let blocks: BTreeSet<Block24> = rounds.iter().flat_map(|r| r.iter().map(|(b, _)| b)).collect();
    blocks
        .into_iter()
        .filter_map(|b| world.block(b).map(|info| (b, info.origin)))
        .collect()
}

/// Writes the per-round snapshots and the origins sidecar into `dir`
/// (created if needed). Returns the number of round files written.
pub fn write_round_snapshots(
    dir: &Path,
    rounds: &[CatchmentMap],
    world: &Internet,
) -> Result<usize, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    for (i, round) in rounds.iter().enumerate() {
        let path = dir.join(format!("r{i:03}.json"));
        std::fs::write(&path, round.to_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    let origins = collect_origins(rounds, world);
    let doc = build_origins_doc(&origins);
    let path = dir.join("origins.json");
    let text = serde_json::to_string_pretty(&doc)
        .map_err(|e| format!("serialize origins sidecar: {e}"))?;
    std::fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(rounds.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lab, Scale};
    use vp_monitor::ingest::{load_origins_sidecar, load_rounds_dir};

    /// Round-trips tiny-scale fig9 rounds through the snapshot format and
    /// checks the reloaded sequence is identical, block for block.
    #[test]
    fn snapshots_roundtrip_through_vp_monitor_ingest() {
        let lab = Lab::new(Scale::Tiny);
        let rounds = lab.tangled_rounds();
        let world = &lab.tangled().world;
        let dir = std::env::temp_dir().join("vp-monitor-snapshot-test");
        let _ = std::fs::remove_dir_all(&dir);

        let n = write_round_snapshots(&dir, &rounds, world).expect("write snapshots");
        assert_eq!(n, rounds.len());

        let reloaded = load_rounds_dir(&dir).expect("reload rounds");
        assert_eq!(reloaded.len(), rounds.len());
        for (orig, back) in rounds.iter().zip(&reloaded) {
            assert_eq!(orig.name, back.name);
            assert_eq!(orig.len(), back.len());
            for (b, s) in orig.iter() {
                assert_eq!(back.site_of(b), Some(s));
            }
        }

        let origins = load_origins_sidecar(&dir).expect("sidecar").expect("present");
        // Every block of every round has an attributed origin.
        for round in rounds.iter() {
            for (b, _) in round.iter() {
                assert!(origins.contains_key(&b), "block {b} missing from origins");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
