//! Fig. 8: sites seen per announced prefix, grouped by prefix length.
//!
//! Shape targets: long prefixes (/22, /23, /24) are mostly single-site;
//! short prefixes split across several sites; a substantial share of the
//! address space needs more than one VP to map (the paper: 75% of prefixes
//! larger than /10 see multiple sites; 38% of measured address space needs
//! multiple VPs).

use crate::context::Lab;
use verfploeter::divisions::fig8_rows;
use verfploeter::report::{pct, TextTable};
use verfploeter::stability::unstable_blocks;

pub fn run(lab: &Lab) -> String {
    let scenario = lab.tangled();
    let rounds = lab.tangled_rounds();
    let unstable = unstable_blocks(&rounds);
    let max_sites = scenario.announcement.sites.len();
    let rows = fig8_rows(&rounds[0], &scenario.world, &unstable, max_sites);

    let mut t = TextTable::new([
        "prefix len",
        "prefixes",
        "1 site",
        "2 sites",
        "3+ sites",
        "single-VP",
    ]);
    for r in &rows {
        let one = r.fractions.first().copied().unwrap_or(0.0);
        let two = r.fractions.get(1).copied().unwrap_or(0.0);
        let three_plus: f64 = r.fractions.iter().skip(2).sum();
        t.row([
            format!("/{}", r.prefix_len),
            r.prefixes.to_string(),
            pct(one),
            pct(two),
            pct(three_plus),
            pct(r.single_vp_fraction),
        ]);
    }

    // Aggregate shape stats.
    let agg = |filter: &dyn Fn(u8) -> bool| -> (f64, usize) {
        let sel: Vec<_> = rows.iter().filter(|r| filter(r.prefix_len)).collect();
        let total: usize = sel.iter().map(|r| r.prefixes).sum();
        let multi: f64 = sel
            .iter()
            .map(|r| (1.0 - r.fractions[0]) * r.prefixes as f64)
            .sum();
        (multi / total.max(1) as f64, total)
    };
    let (short_multi, short_n) = agg(&|l| l <= 16);
    let (long_multi, long_n) = agg(&|l| l >= 22);

    let mut out = String::from(
        "Fig. 8: number of sites seen within each announced prefix, by prefix length (STV-3-23)\n\n",
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nMulti-site fraction: prefixes <= /16: {} ({} prefixes); prefixes >= /22: {} ({} prefixes).\n\
         Shape check (large prefixes split more): {}.\n",
        pct(short_multi),
        short_n,
        pct(long_multi),
        long_n,
        if short_multi >= long_multi { "holds" } else { "VIOLATED" },
    ));
    lab.write_json(
        "fig8_prefix_divisions",
        &serde_json::json!(rows
            .iter()
            .map(|r| serde_json::json!({
                "prefix_len": r.prefix_len,
                "prefixes": r.prefixes,
                "fractions": r.fractions,
                "single_vp_fraction": r.single_vp_fraction,
            }))
            .collect::<Vec<_>>()),
    );
    out
}
