//! Table 1: the scan-dataset inventory.
//!
//! Paper: eight datasets (SBA-4-20 … STV-3-23) scanning B-Root and Tangled
//! with Atlas and Verfploeter on various days. Here the inventory is
//! derived from the lab's configuration — the durations come from the real
//! probing parameters (hitlist size / probe rate; Atlas scan window), and
//! STV-3-23's row reflects the configured round count.

use crate::context::Lab;
use verfploeter::report::TextTable;

pub fn run(lab: &Lab) -> String {
    let broot_targets = lab.broot_hitlist().len();
    let tangled_targets = lab.tangled_hitlist().len();
    let vp_mins = |targets: usize| (targets as f64 / 10_000.0 / 60.0).ceil() as u64;
    let rounds = lab.scale.stability_rounds();

    let mut t = TextTable::new(["Id", "Service", "Method", "Start", "Dur."]);
    t.row(["SBA-4-20", "B-Root", "Atlas", "2017-04-20", "8 m"]);
    t.row(["SBA-4-21", "B-Root", "Atlas", "2017-04-21", "8 m"]);
    t.row(["SBA-5-15", "B-Root", "Atlas", "2017-05-15", "8 m"]);
    t.row([
        "SBV-4-21".to_owned(),
        "B-Root".to_owned(),
        "Verfploeter".to_owned(),
        "2017-04-21".to_owned(),
        format!("{} m", vp_mins(broot_targets)),
    ]);
    t.row([
        "SBV-5-15".to_owned(),
        "B-Root".to_owned(),
        "Verfploeter".to_owned(),
        "2017-05-15".to_owned(),
        format!("{} m", vp_mins(broot_targets)),
    ]);
    t.row(["STA-2-01", "Tangled", "Atlas", "2017-02-01", "8 m"]);
    t.row([
        "STV-2-01".to_owned(),
        "Tangled".to_owned(),
        "Verfploeter".to_owned(),
        "2017-02-01".to_owned(),
        format!("{} m", vp_mins(tangled_targets)),
    ]);
    t.row([
        "STV-3-23".to_owned(),
        "Tangled".to_owned(),
        "Verfploeter".to_owned(),
        "2017-03-23".to_owned(),
        format!("{} x 15 m", rounds),
    ]);

    let mut out = String::from("Table 1: scans of anycast catchments (reproduction datasets)\n\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nB-Root hitlist: {broot_targets} /24 targets; Tangled hitlist: {tangled_targets} /24 targets; probe rate 10k/s.\n\
         STV-3-23 contains {rounds} measurements at 15-minute intervals.\n"
    ));
    lab.write_json(
        "table1_datasets",
        &serde_json::json!({
            "broot_targets": broot_targets,
            "tangled_targets": tangled_targets,
            "stability_rounds": rounds,
        }),
    );
    out
}
