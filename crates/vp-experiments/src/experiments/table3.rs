//! Table 3: the anycast sites of both deployments.

use crate::context::Lab;
use verfploeter::report::TextTable;

pub fn run(lab: &Lab) -> String {
    let mut t = TextTable::new(["Service", "Site", "Location", "Upstream"]);
    for (service, scenario) in [("B-Root", lab.broot()), ("Tangled", lab.tangled())] {
        for site in &scenario.announcement.sites {
            let pop = &scenario.world.graph.pops[site.pop.index()];
            let country = pop.country.get();
            t.row([
                service.to_owned(),
                site.name.clone(),
                format!("{}, {}", country.continent.tag(), country.name),
                site.host_asn.to_string(),
            ]);
        }
    }
    let mut out = String::from("Table 3: anycast sites used in the measurements\n\n");
    out.push_str(&t.render());
    out.push_str("\n(HND announces with permanent prepending, reproducing the paper's weakly connected Tokyo site.)\n");
    lab.write_json(
        "table3_sites",
        &serde_json::json!({
            "broot": lab.broot().announcement.sites.iter().map(|s| s.name.clone()).collect::<Vec<_>>(),
            "tangled": lab.tangled().announcement.sites.iter().map(|s| s.name.clone()).collect::<Vec<_>>(),
        }),
    );
    out
}
