//! Fig. 9: catchment stability over 24 hours.
//!
//! Shape targets: the overwhelming majority of VPs are stable every round
//! (~95% of responders in the paper); a few percent churn between
//! responsive and non-responsive (to-NR/from-NR, ~2.4%); and a tiny
//! fraction (~0.1%) flips site.

use crate::context::Lab;
use verfploeter::report::{count, pct, TextTable};
use verfploeter::stability::classify_rounds;

pub fn run(lab: &Lab) -> String {
    let rounds = lab.tangled_rounds();
    let deltas = classify_rounds(&rounds);
    assert!(!deltas.is_empty(), "need at least two rounds");

    // With --snapshots, emit the per-round maps + origins sidecar that
    // `vp-monitor diff` replays (see DESIGN.md §10).
    if let Some(dir) = &lab.snapshot_dir {
        let world = &lab.tangled().world;
        let n = crate::monitor::write_round_snapshots(dir, &rounds, world)
            .unwrap_or_else(|e| panic!("snapshot emission failed: {e}"));
        eprintln!("wrote {n} round snapshots to {}", dir.display());
    }

    let mut t = TextTable::new(["round", "stable", "flipped", "to_NR", "from_NR"]);
    let show_every = (deltas.len() / 12).max(1);
    for d in deltas.iter().step_by(show_every) {
        t.row([
            d.round.to_string(),
            count(d.stable),
            count(d.flipped),
            count(d.to_nr),
            count(d.from_nr),
        ]);
    }

    let median = |f: &dyn Fn(&verfploeter::stability::RoundDelta) -> u64| -> u64 {
        let mut v: Vec<u64> = deltas.iter().map(f).collect();
        v.sort_unstable();
        v[v.len() / 2]
    };
    let med_stable = median(&|d| d.stable);
    let med_flipped = median(&|d| d.flipped);
    let med_to_nr = median(&|d| d.to_nr);
    let med_from_nr = median(&|d| d.from_nr);
    let responders = med_stable + med_flipped;

    let mut out = String::from(
        "Fig. 9: stability over 24 hours, one point per 15-minute round (dataset STV-3-23)\n\n",
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nMedians across {} transitions:\n\
         \x20 stable:  {} ({} of continuing responders)\n\
         \x20 flipped: {} ({})\n\
         \x20 to_NR:   {} | from_NR: {}\n\
         Paper shapes: stable ≈ 95%+ of responders, flips ≈ 0.1%, churn ≈ 2.4% — \
         flips must be far rarer than responsiveness churn: {}.\n",
        deltas.len(),
        count(med_stable),
        pct(med_stable as f64 / responders.max(1) as f64),
        count(med_flipped),
        pct(med_flipped as f64 / responders.max(1) as f64),
        count(med_to_nr),
        count(med_from_nr),
        if med_flipped < med_to_nr { "holds" } else { "VIOLATED" },
    ));
    lab.write_json(
        "fig9_stability",
        &serde_json::json!(deltas
            .iter()
            .map(|d| serde_json::json!({
                "round": d.round,
                "stable": d.stable,
                "flipped": d.flipped,
                "to_nr": d.to_nr,
                "from_nr": d.from_nr,
            }))
            .collect::<Vec<_>>()),
    );
    out
}
