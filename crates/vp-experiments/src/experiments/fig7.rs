//! Fig. 7: sites seen per AS vs announced-prefix count.
//!
//! Shape targets: a meaningful minority of ASes (12.7% in the paper) see
//! more than one site, and ASes seeing more sites announce more prefixes
//! (rising medians).

use crate::context::Lab;
use verfploeter::divisions::{as_divisions, fig7_rows, split_as_fraction};
use verfploeter::report::{pct, TextTable};
use verfploeter::stability::unstable_blocks;

pub fn run(lab: &Lab) -> String {
    let scenario = lab.tangled();
    let rounds = lab.tangled_rounds();
    // §6.2: remove unstable VPs first so flapping isn't read as division.
    let unstable = unstable_blocks(&rounds);
    let divisions = as_divisions(&rounds[0], &scenario.world, &unstable);
    let rows = fig7_rows(&divisions);
    let split_frac = split_as_fraction(&divisions);

    let mut t = TextTable::new(["sites seen", "ASes", "p5", "p25", "median", "p75", "p95"]);
    for r in &rows {
        let p = r.prefix_percentiles;
        t.row([
            r.sites.to_string(),
            r.ases.to_string(),
            format!("{:.0}", p[0]),
            format!("{:.0}", p[1]),
            format!("{:.0}", p[2]),
            format!("{:.0}", p[3]),
            format!("{:.0}", p[4]),
        ]);
    }
    let medians: Vec<f64> = rows.iter().map(|r| r.prefix_percentiles[2]).collect();
    let rising = medians.windows(2).filter(|w| w[1] >= w[0]).count();

    let mut out = String::from(
        "Fig. 7: announced prefixes vs number of sites seen per AS (dataset STV-3-23)\n\n",
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nASes seeing >1 site: {} of {} ({}) — the paper reports 12.7%.\n\
         Excluded unstable blocks: {}.\n\
         Shape check: medians rise with sites seen in {}/{} steps.\n",
        divisions.iter().filter(|d| d.sites_seen > 1).count(),
        divisions.len(),
        pct(split_frac),
        unstable.len(),
        rising,
        medians.len().saturating_sub(1),
    ));
    lab.write_json(
        "fig7_as_divisions",
        &serde_json::json!({
            "split_fraction": split_frac,
            "rows": rows
                .iter()
                .map(|r| serde_json::json!({
                    "sites": r.sites,
                    "ases": r.ases,
                    "prefix_percentiles": r.prefix_percentiles,
                }))
                .collect::<Vec<_>>(),
        }),
    );
    out
}
