//! Shared rendering of geographic catchment maps (Figs. 2 and 3).

use std::collections::BTreeMap;

use vp_atlas::AtlasResult;
use vp_bgp::{Announcement, SiteId};
use vp_geo::BinnedMap;
use vp_net::Block24;
use vp_sim::Scenario;
use verfploeter::catchment::CatchmentMap;
use verfploeter::coverage::{catchment_bins, weighted_bins};
use verfploeter::report::TextTable;

fn site_name(ann: &Announcement, site: SiteId) -> String {
    ann.sites[site.index()].name.clone()
}

/// Renders one measurement's binned map as a textual summary plus a JSON
/// value with every bin.
pub fn render_binned(
    title: &str,
    bins: &BinnedMap<SiteId>,
    ann: &Announcement,
    unit: &str,
) -> (String, serde_json::Value) {
    let mut out = format!("{title}\n");
    let totals = bins.totals_by_key();
    let mut t = TextTable::new(["site", unit, "share"]);
    let total = bins.total();
    for (site, w) in &totals {
        t.row([
            site_name(ann, *site),
            format!("{:.0}", w),
            verfploeter::report::pct(w / total.max(1e-12)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "bins: {}   max bin: {:.0} {unit}\n",
        bins.bin_count(),
        bins.max_bin_total()
    ));
    // Top bins, as a flavour of the map.
    let mut rows = bins.rows();
    rows.sort_by(|a, b| {
        let wa: f64 = a.1.values().sum();
        let wb: f64 = b.1.values().sum();
        wb.total_cmp(&wa)
    });
    out.push_str("largest bins (lat,lon center -> per-site):\n");
    for (bin, weights) in rows.iter().take(8) {
        let (lat, lon) = bin.center();
        let per_site: Vec<String> = weights
            .iter()
            .map(|(s, w)| format!("{}={:.0}", site_name(ann, *s), w))
            .collect();
        out.push_str(&format!("  ({lat:+05.0},{lon:+06.0})  {}\n", per_site.join(" ")));
    }
    let json = serde_json::json!({
        "bins": rows
            .iter()
            .map(|(bin, weights)| {
                serde_json::json!({
                    "lat_bin": bin.lat_bin,
                    "lon_bin": bin.lon_bin,
                    "weights": weights
                        .iter()
                        .map(|(s, w)| (site_name(ann, *s), w))
                        .collect::<BTreeMap<String, &f64>>(),
                })
            })
            .collect::<Vec<_>>(),
        "totals": totals
            .iter()
            .map(|(s, w)| (site_name(ann, *s), w))
            .collect::<BTreeMap<String, &f64>>(),
    });
    (out, json)
}

/// Builds the Atlas-side bins: VPs per block weighted by VP count.
pub fn atlas_bins(scenario: &Scenario, atlas: &AtlasResult) -> BinnedMap<SiteId> {
    let mut per_block: BTreeMap<(Block24, SiteId), f64> = BTreeMap::new();
    for o in &atlas.outcomes {
        if let Some(site) = o.site {
            *per_block.entry((o.block, site)).or_insert(0.0) += 1.0;
        }
    }
    weighted_bins(
        per_block.into_iter().map(|((b, s), w)| (b, s, w)),
        &scenario.world.geodb,
    )
}

/// Renders the Atlas-vs-Verfploeter map pair for one service.
pub fn render_pair(
    lab: &crate::context::Lab,
    scenario: &Scenario,
    atlas: &AtlasResult,
    vp: &CatchmentMap,
    fig: &str,
) -> String {
    let ann = &scenario.announcement;
    let a_bins = atlas_bins(scenario, atlas);
    let v_bins = catchment_bins(vp, &scenario.world.geodb);
    let (a_text, a_json) = render_binned(
        &format!("({fig}a) RIPE Atlas coverage (dataset {})", atlas.name),
        &a_bins,
        ann,
        "VPs",
    );
    let (v_text, v_json) = render_binned(
        &format!("({fig}b) Verfploeter coverage (dataset {})", vp.name),
        &v_bins,
        ann,
        "blocks",
    );
    let ratio = v_bins.total() / a_bins.total().max(1.0);
    lab.write_json(
        &format!("{fig}_maps"),
        &serde_json::json!({ "atlas": a_json, "verfploeter": v_json }),
    );
    format!(
        "{a_text}\n{v_text}\nVerfploeter observations / Atlas observations = {ratio:.0}x \
         (the figure scales differ by ~1000x in the paper).\n"
    )
}
