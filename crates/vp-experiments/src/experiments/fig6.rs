//! Fig. 6: predicted hourly load per prepending configuration.
//!
//! For each of the five prepending configurations, the catchments measured
//! by Verfploeter are combined with the DITL day (LB-4-12) into hourly
//! per-site load series. Shape targets: "+1 LAX" sends nearly everything
//! to MIA; each added MIA prepend shifts load toward LAX; a small UNKNOWN
//! share persists throughout; and the series follow the diurnal curve.

use crate::context::Lab;
use crate::experiments::fig5::sweep_configs;
use verfploeter::predict::hourly_prediction;
use verfploeter::report::TextTable;

pub fn run(lab: &Lab) -> String {
    let scenario = lab.broot();
    let load = lab.load_april();
    // vp-lint: allow(h2): the B-Root scenario always defines the LAX site.
    let lax = scenario.announcement.site_by_name("LAX").expect("LAX").id;
    // vp-lint: allow(h2): the B-Root scenario always defines the MIA site.
    let mia = scenario.announcement.site_by_name("MIA").expect("MIA").id;

    let mut out = String::from(
        "Fig. 6: predicted hourly load for B-Root under prepending (SBV-4-21 x LB-4-12)\n",
    );
    let mut json_rows = Vec::new();
    for (i, (label, p_lax, p_mia)) in sweep_configs().into_iter().enumerate() {
        let mut ann = scenario.announcement.clone();
        ann.set_prepend("LAX", p_lax).set_prepend("MIA", p_mia);
        let vp = lab.vp_scan(
            &format!("SBV-prep-{label}"),
            scenario,
            lab.broot_hitlist(),
            &ann,
            (40 + i) as u16,
        );
        let hours = hourly_prediction(&vp.catchments, &load);
        out.push_str(&format!("\n[{label}] queries/second by hour (UTC):\n"));
        let mut t = TextTable::new(["hour", "LAX", "MIA", "UNKNOWN"]);
        let mut daily = [0.0f64; 3];
        for (h, slot) in hours.iter().enumerate() {
            let l = slot.get(&Some(lax)).copied().unwrap_or(0.0);
            let m = slot.get(&Some(mia)).copied().unwrap_or(0.0);
            let u = slot.get(&None).copied().unwrap_or(0.0);
            daily[0] += l;
            daily[1] += m;
            daily[2] += u;
            if h % 4 == 0 {
                t.row([
                    format!("{h:02}:00"),
                    format!("{l:.0}"),
                    format!("{m:.0}"),
                    format!("{u:.0}"),
                ]);
            }
            json_rows.push(serde_json::json!({
                "config": label, "hour": h, "lax_qps": l, "mia_qps": m, "unknown_qps": u,
            }));
        }
        t.row([
            "mean".to_owned(),
            format!("{:.0}", daily[0] / 24.0),
            format!("{:.0}", daily[1] / 24.0),
            format!("{:.0}", daily[2] / 24.0),
        ]);
        out.push_str(&t.render());
    }
    out.push_str(
        "\n(Every fourth hour shown; full 24-hour series in the JSON artifact. \
         The top panel should be nearly all MIA, shifting to mostly LAX as MIA prepends grow, \
         with a persistent small UNKNOWN share — §6.1.)\n",
    );
    lab.write_json("fig6_prepend_load", &serde_json::json!(json_rows));
    out
}
