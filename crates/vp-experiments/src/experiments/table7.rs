//! Table 7: the ASes behind the site flips.
//!
//! Shape targets: flips concentrate heavily — one AS carries about half of
//! all flips (Chinanet in the paper, 51%), the top five together most of
//! them (63%), with a long thin tail across a couple thousand ASes.

use crate::context::Lab;
use verfploeter::report::{count, TextTable};
use verfploeter::stability::flips_by_as;

pub fn run(lab: &Lab) -> String {
    let scenario = lab.tangled();
    let rounds = lab.tangled_rounds();
    let table = flips_by_as(&rounds, &scenario.world);

    let (top, other) = table.top_with_other(5);
    let mut t = TextTable::new(["#", "AS", "IPs (/24s)", "Flips", "Frac."]);
    for (i, row) in top.iter().enumerate() {
        t.row([
            (i + 1).to_string(),
            row.asn.to_string(),
            count(row.blocks),
            count(row.flips),
            format!("{:.2}", row.frac),
        ]);
    }
    t.row([
        "".to_owned(),
        "Other".to_owned(),
        count(other.blocks),
        count(other.flips),
        format!("{:.2}", other.frac),
    ]);
    t.row([
        "".to_owned(),
        "Total".to_owned(),
        count(table.total_blocks),
        count(table.total_flips),
        "1.00".to_owned(),
    ]);

    let top1 = top.first().map_or(0.0, |r| r.frac);
    let top5: f64 = top.iter().map(|r| r.frac).sum();

    let mut out = String::from("Table 7: top ASes involved in site flips (dataset STV-3-23)\n\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nFlipping ASes: {}. Top AS carries {:.0}% of flips (paper: 51%), top five {:.0}% \
         (paper: 63%).\nShape check (concentration): top AS > 25% and top five > 50%: {}.\n",
        table.flipping_ases(),
        100.0 * top1,
        100.0 * top5,
        if top1 > 0.25 && top5 > 0.5 { "holds" } else { "VIOLATED" },
    ));
    lab.write_json(
        "table7_flip_ases",
        &serde_json::json!({
            "total_flips": table.total_flips,
            "flipping_ases": table.flipping_ases(),
            "top": top
                .iter()
                .map(|r| serde_json::json!({
                    "asn": r.asn.0, "blocks": r.blocks, "flips": r.flips, "frac": r.frac,
                }))
                .collect::<Vec<_>>(),
        }),
    );
    out
}
