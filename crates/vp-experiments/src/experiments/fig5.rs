//! Fig. 5: catchment split vs AS-prepending, Atlas vs Verfploeter.
//!
//! Shape targets: the LAX fraction grows monotonically from "+1 LAX"
//! through "+3 MIA"; a residual sticks with MIA even at +3 (customers of
//! MIA's host and prepend-ignoring ASes, §6.1); both measurement methods
//! agree on the trend while differing in exact values.

use crate::context::Lab;
use verfploeter::report::{pct, TextTable};

/// The announcement variants of the sweep, in paper order.
pub fn sweep_configs() -> Vec<(&'static str, u8, u8)> {
    // (label, LAX prepend, MIA prepend)
    vec![
        ("+1 LAX", 1, 0),
        ("equal", 0, 0),
        ("+1 MIA", 0, 1),
        ("+2 MIA", 0, 2),
        ("+3 MIA", 0, 3),
    ]
}

pub fn run(lab: &Lab) -> String {
    let scenario = lab.broot();
    // vp-lint: allow(h2): the B-Root scenario always defines the LAX site.
    let lax = scenario.announcement.site_by_name("LAX").expect("LAX").id;

    let mut t = TextTable::new([
        "prepending",
        "Atlas frac LAX (VPs)",
        "Verfploeter frac LAX (/24s)",
    ]);
    let mut series = Vec::new();
    for (i, (label, p_lax, p_mia)) in sweep_configs().into_iter().enumerate() {
        let mut ann = scenario.announcement.clone();
        ann.set_prepend("LAX", p_lax).set_prepend("MIA", p_mia);
        let atlas = lab.atlas_scan(
            &format!("SBA-prep-{label}"),
            scenario,
            lab.atlas_broot(),
            &ann,
        );
        let vp = lab.vp_scan(
            &format!("SBV-prep-{label}"),
            scenario,
            lab.broot_hitlist(),
            &ann,
            (40 + i) as u16,
        );
        let a = atlas.fraction_to(lax);
        let v = vp.catchments.fraction_to(lax);
        t.row([label.to_owned(), pct(a), pct(v)]);
        series.push((label.to_owned(), a, v));
    }

    let vp_fracs: Vec<f64> = series.iter().map(|(_, _, v)| *v).collect();
    let monotone = vp_fracs.windows(2).all(|w| w[0] <= w[1] + 0.005);
    let residual = 1.0 - vp_fracs.last().copied().unwrap_or(1.0);

    let mut out = String::from(
        "Fig. 5: split between MIA and LAX under AS prepending (SBA-4-20/21, SBV-4-21)\n\n",
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nShape checks: Verfploeter series monotone non-decreasing toward LAX (0.5pp tolerance): {}; \
         residual MIA share at +3 MIA: {} (paper: a small but non-zero remainder).\n",
        if monotone { "holds" } else { "VIOLATED" },
        pct(residual),
    ));
    lab.write_json(
        "fig5_prepending",
        &serde_json::json!(series
            .iter()
            .map(|(l, a, v)| serde_json::json!({ "config": l, "atlas": a, "verfploeter": v }))
            .collect::<Vec<_>>()),
    );
    out
}
