//! Table 5: traffic-weighted coverage of Verfploeter from B-Root's logs.
//!
//! Shape targets: most traffic-sending blocks are mapped, but the mapped
//! *query* share is a bit lower than the mapped *block* share (the paper:
//! 87.1% of blocks, 82.4% of queries mapped; 12.9% / 17.6% not mappable).

use crate::context::Lab;
use verfploeter::load::mappability;
use verfploeter::report::{count, pct, si, TextTable};

pub fn run(lab: &Lab) -> String {
    let scenario = lab.broot();
    let vp = lab.vp_scan(
        "SBV-5-15",
        scenario,
        lab.broot_hitlist(),
        &scenario.announcement,
        15,
    );
    let log = lab.load_may();
    let m = mappability(&vp.catchments, &log);

    let mut t = TextTable::new(["Blocks", "/24s", "%", "q/day", "%"]);
    t.row([
        "seen at B-Root".to_owned(),
        count(m.blocks_seen),
        "100.0%".to_owned(),
        si(m.queries_seen),
        "100.0%".to_owned(),
    ]);
    t.row([
        "mapped by Verfploeter".to_owned(),
        count(m.blocks_mapped),
        pct(m.blocks_mapped_frac()),
        si(m.queries_mapped),
        pct(m.queries_mapped_frac()),
    ]);
    t.row([
        "not mappable".to_owned(),
        count(m.blocks_seen - m.blocks_mapped),
        pct(1.0 - m.blocks_mapped_frac()),
        si(m.queries_seen - m.queries_mapped),
        pct(1.0 - m.queries_mapped_frac()),
    ]);

    let mut out =
        String::from("Table 5: coverage of Verfploeter from B-Root (datasets SBV-5-15, LB-5-15)\n\n");
    out.push_str(&t.render());
    // vp-lint: allow(h2): serde_json on owned derived data cannot fail.
    lab.write_json("table5_mappability", &serde_json::to_value(m).expect("serialize"));
    out
}
