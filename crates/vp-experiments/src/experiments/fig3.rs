//! Fig. 3: catchments of the nine-site Tangled testbed, Atlas vs
//! Verfploeter.
//!
//! Shape target: with more sites, the sparse Atlas view and the dense
//! Verfploeter view disagree qualitatively outside Europe (§5.2) — and
//! only Verfploeter covers China at all.

use crate::context::Lab;
use crate::experiments::maps::render_pair;

pub fn run(lab: &Lab) -> String {
    let scenario = lab.tangled();
    let atlas = lab.atlas_scan(
        "STA-2-01",
        scenario,
        lab.atlas_tangled(),
        &scenario.announcement,
    );
    let vp = lab.vp_scan(
        "STV-2-01",
        scenario,
        lab.tangled_hitlist(),
        &scenario.announcement,
        21,
    );

    let mut out = String::from("Fig. 3: catchments for Tangled from RIPE Atlas and Verfploeter\n\n");
    out.push_str(&render_pair(lab, scenario, &atlas, &vp.catchments, "fig3"));

    // Sites invisible to Atlas but visible to Verfploeter.
    let atlas_sites: std::collections::BTreeSet<_> =
        atlas.site_counts().keys().copied().collect();
    let vp_sites: std::collections::BTreeSet<_> =
        vp.catchments.site_counts().keys().copied().collect();
    let missed: Vec<String> = vp_sites
        .difference(&atlas_sites)
        .map(|s| scenario.announcement.sites[s.index()].name.clone())
        .collect();
    out.push_str(&format!(
        "\nSites observed: Atlas {} of 9, Verfploeter {} of 9{}.\n",
        atlas_sites.len(),
        vp_sites.len(),
        if missed.is_empty() {
            String::new()
        } else {
            format!(" (Atlas misses: {})", missed.join(", "))
        }
    ));
    out
}
