//! Table 2: the load datasets (IPv4 UDP queries/day and q/s, per site).

use crate::context::Lab;
use verfploeter::predict::actual_load_fraction;
use verfploeter::report::{si, TextTable};

pub fn run(lab: &Lab) -> String {
    let broot = lab.broot();
    let april = lab.load_april();
    let may = lab.load_may();
    let nl = lab.load_nl();
    let table = broot.routing();

    let mut t = TextTable::new(["Id", "Service", "Date", "Site", "q/day", "q/s"]);
    t.row([
        "LB-4-12".to_owned(),
        "B-Root".to_owned(),
        "2017-04-12".to_owned(),
        "unicast".to_owned(),
        si(april.total_daily()),
        si(april.queries_per_sec()),
    ]);
    t.row([
        "LB-5-15".to_owned(),
        "B-Root".to_owned(),
        "2017-05-15".to_owned(),
        "both".to_owned(),
        si(may.total_daily()),
        si(may.queries_per_sec()),
    ]);
    // Per-site split of the May day, as measured at the sites (ground-truth
    // replay of every block's queries to its catchment).
    for site in &broot.announcement.sites {
        let frac = actual_load_fraction(&table, &may, site.id);
        t.row([
            String::new(),
            String::new(),
            String::new(),
            site.name.clone(),
            si(may.total_daily() * frac),
            si(may.queries_per_sec() * frac),
        ]);
    }
    t.row([
        "LN-4-12".to_owned(),
        "NL ccTLD".to_owned(),
        "2017-04-12".to_owned(),
        "all".to_owned(),
        si(nl.total_daily()),
        si(nl.queries_per_sec()),
    ]);

    let mut out = String::from("Table 2: load datasets (IPv4 UDP queries only)\n\n");
    out.push_str(&t.render());
    out.push_str("\n(The paper redacts LN-4-12 volumes; the reproduction prints its synthetic equivalent.)\n");
    lab.write_json(
        "table2_load_datasets",
        &serde_json::json!({
            "LB-4-12": { "q_day": april.total_daily(), "q_s": april.queries_per_sec() },
            "LB-5-15": { "q_day": may.total_daily(), "q_s": may.queries_per_sec() },
            "LN-4-12": { "q_day": nl.total_daily(), "q_s": nl.queries_per_sec() },
        }),
    );
    out
}
