//! Fig. 4: geographic distribution of DNS load.
//!
//! 4a: B-Root load per site as inferred from Verfploeter catchments plus
//! the April logs — load concentrates in fewer hotspots than raw block
//! counts, and unmappable load (red in the paper) clusters in a few
//! regions. 4b: the `.nl`-style regional service, whose load is
//! Europe-dominated, shown per nameserver.

use std::collections::BTreeMap;

use crate::context::Lab;
use verfploeter::load::{load_bins, load_split};
use verfploeter::report::{pct, si, TextTable};

pub fn run(lab: &Lab) -> String {
    let scenario = lab.broot();
    let vp = lab.vp_scan(
        "SBV-5-15",
        scenario,
        lab.broot_hitlist(),
        &scenario.announcement,
        15,
    );
    let load = lab.load_april();

    // -- 4a: B-Root inferred load per site --
    let bins = load_bins(&vp.catchments, &load);
    let split = load_split(&vp.catchments, &load);
    let total: f64 = split.values().sum();
    let mut t = TextTable::new(["site", "q/day", "share"]);
    for (site, q) in &split {
        let name = match site {
            Some(s) => scenario.announcement.sites[s.index()].name.clone(),
            None => "UNKNOWN".to_owned(),
        };
        t.row([name, si(*q), pct(q / total)]);
    }
    let mut out = String::from(
        "Fig. 4a: geographic distribution of load by site for B-Root (SBV-5-15 x LB-4-12)\n\n",
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "geographic bins with load: {} (vs {} bins with responding blocks — load is more concentrated)\n",
        bins.bin_count(),
        verfploeter::coverage::catchment_bins(&vp.catchments, &scenario.world.geodb).bin_count(),
    ));

    // -- 4b: the .nl-style regional service, per pseudo-nameserver --
    let nl = lab.load_nl();
    let world = &scenario.world;
    let mut ns_bins: vp_geo::BinnedMap<u8> = vp_geo::BinnedMap::new();
    let mut ns_totals: BTreeMap<u8, f64> = BTreeMap::new();
    for (i, b) in world.blocks.iter().enumerate() {
        let q = nl.daily_by_idx(i);
        if q <= 0.0 {
            continue;
        }
        // Four unicast nameservers; blocks choose one by hash, as resolver
        // NS selection effectively does.
        let ns = (b.block.0 % 4) as u8 + 1;
        *ns_totals.entry(ns).or_insert(0.0) += q;
        if let Some(loc) = world.geodb.locate(b.block) {
            ns_bins.add(loc.lat, loc.lon, ns, q / 86_400.0);
        }
    }
    out.push_str("\nFig. 4b: geographic distribution of load for .nl (dataset LN-4-12)\n\n");
    let mut t = TextTable::new(["server", "q/day", "share"]);
    let nl_total: f64 = ns_totals.values().sum();
    for (ns, q) in &ns_totals {
        t.row([format!("ns{ns}"), si(*q), pct(q / nl_total)]);
    }
    out.push_str(&t.render());

    // Europe share contrast between the two services.
    let eu_share = |log: &vp_dns::QueryLog| {
        let mut eu = 0.0;
        let mut total = 0.0;
        for (i, b) in world.blocks.iter().enumerate() {
            let q = log.daily_by_idx(i);
            if q <= 0.0 {
                continue;
            }
            total += q;
            if let Some(loc) = world.geodb.locate(b.block) {
                if loc.country.get().continent == vp_geo::Continent::Europe {
                    eu += q;
                }
            }
        }
        eu / total.max(1e-12)
    };
    out.push_str(&format!(
        "\nEurope's share of load: B-Root {} vs .nl {} — the regional service needs \
         load calibration far more (§5.4).\n",
        pct(eu_share(&load)),
        pct(eu_share(&nl)),
    ));
    lab.write_json(
        "fig4_load_maps",
        &serde_json::json!({
            "broot_split": split
                .iter()
                .map(|(k, v)| {
                    let name = match k {
                        Some(s) => scenario.announcement.sites[s.index()].name.clone(),
                        None => "UNKNOWN".to_owned(),
                    };
                    (name, *v)
                })
                .collect::<BTreeMap<String, f64>>(),
            "nl_split": ns_totals
                .iter()
                .map(|(k, v)| (format!("ns{k}"), *v))
                .collect::<BTreeMap<String, f64>>(),
            "broot_eu_share": eu_share(&load),
            "nl_eu_share": eu_share(&nl),
        }),
    );
    out
}
