//! Table 6: "% LAX" by method and date — the paper's central calibration
//! result.
//!
//! Shape targets (paper values in parentheses):
//! * methods disagree: Atlas VPs, Verfploeter blocks and load-weighted
//!   Verfploeter give different splits (68.8–87.8%);
//! * the load-weighted prediction lands closest to the actually measured
//!   load (81.6% predicted vs 81.4% measured);
//! * predicting with month-old catchments is visibly worse (76.2%).

use crate::context::Lab;
use verfploeter::load::load_fraction_to;
use verfploeter::predict::actual_load_fraction;
use verfploeter::report::{count, pct, TextTable};

pub fn run(lab: &Lab) -> String {
    let scenario = lab.broot();
    // vp-lint: allow(h2): the B-Root scenario always defines the LAX site.
    let lax = scenario.announcement.site_by_name("LAX").expect("LAX").id;
    let may_ann = &scenario.announcement;
    let april_seed = lab.april_policy_seed();

    // Scans on both dates with both methods; April differs from May by a
    // month of routing drift (policy tie-breaks), not by configuration.
    let atlas_april =
        lab.atlas_scan_seeded("SBA-4-21", scenario, lab.atlas_broot(), may_ann, april_seed);
    let atlas_may = lab.atlas_scan("SBA-5-15", scenario, lab.atlas_broot(), may_ann);
    let vp_april =
        lab.vp_scan_seeded("SBV-4-21", scenario, lab.broot_hitlist(), may_ann, 4, april_seed);
    let vp_may = lab.vp_scan("SBV-5-15", scenario, lab.broot_hitlist(), may_ann, 15);

    let load_april = lab.load_april();
    let load_may = lab.load_may();
    let routing_may = scenario.routing_for(may_ann);

    let atlas_april_pct = atlas_april.fraction_to(lax);
    let atlas_may_pct = atlas_may.fraction_to(lax);
    let vp_april_pct = vp_april.catchments.fraction_to(lax);
    let vp_may_pct = vp_may.catchments.fraction_to(lax);
    // Same-day prediction: May catchments weighted with May load.
    let predicted_may = load_fraction_to(&vp_may.catchments, &load_may, lax);
    // Long-duration prediction: April catchments + April load.
    let predicted_long = load_fraction_to(&vp_april.catchments, &load_april, lax);
    // Ground truth: the split actually measured at the sites on the May day.
    let actual_may = actual_load_fraction(&routing_may, &load_may, lax);

    let mut t = TextTable::new(["Date", "Method", "Measurement", "% LAX"]);
    t.row([
        "2017-04-21".to_owned(),
        "Atlas".to_owned(),
        format!("{} VPs", count(atlas_april.vps_responding() as u64)),
        pct(atlas_april_pct),
    ]);
    t.row([
        "2017-05-15".to_owned(),
        "Atlas".to_owned(),
        format!("{} VPs", count(atlas_may.vps_responding() as u64)),
        pct(atlas_may_pct),
    ]);
    t.row([
        "2017-04-21".to_owned(),
        "Verfploeter".to_owned(),
        format!("{} /24s", count(vp_april.catchments.len() as u64)),
        pct(vp_april_pct),
    ]);
    t.row([
        "2017-05-15".to_owned(),
        "Verfploeter".to_owned(),
        format!("{} /24s", count(vp_may.catchments.len() as u64)),
        pct(vp_may_pct),
    ]);
    t.row([
        "2017-05-15".to_owned(),
        "Verfploeter + load".to_owned(),
        "q/day".to_owned(),
        pct(predicted_may),
    ]);
    t.row([
        "2017-04-21 (stale)".to_owned(),
        "Verfploeter + load".to_owned(),
        "q/day".to_owned(),
        pct(predicted_long),
    ]);
    t.row([
        "2017-05-15".to_owned(),
        "Actual load".to_owned(),
        "q/day".to_owned(),
        pct(actual_may),
    ]);

    let err_weighted = (predicted_may - actual_may).abs() * 100.0;
    let err_blocks = (vp_may_pct - actual_may).abs() * 100.0;
    let err_stale = (predicted_long - actual_may).abs() * 100.0;
    let drift_pp = (vp_may_pct - vp_april_pct).abs() * 100.0;

    let mut out = String::from(
        "Table 6: B-Root anycast split under different measurement methods and dates\n\n",
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nPrediction error vs measured load at LAX:\n\
         \x20 load-weighted (same day): {err_weighted:.1} pp\n\
         \x20 block-weighted (no load): {err_blocks:.1} pp\n\
         \x20 load-weighted (month-old catchments): {err_stale:.1} pp\n\
         Routing drift between the dates moved {drift_pp:.1} pp of blocks \
         (the paper sees 82.4% -> 87.8%).\n\
         Shape check: calibrated same-day prediction within 3 pp of measured \
         load ({}) — the paper lands 0.2 pp off (81.6% vs 81.4%). Block and \
         load weighting disagree by {:.1} pp, which is why calibration \
         matters (paper: 6.2 pp).\n",
        if err_weighted <= 3.0 { "holds" } else { "VIOLATED" },
        (vp_may_pct - predicted_may).abs() * 100.0,
    ));
    lab.write_json(
        "table6_pct_lax",
        &serde_json::json!({
            "atlas_april": atlas_april_pct,
            "atlas_may": atlas_may_pct,
            "vp_april": vp_april_pct,
            "vp_may": vp_may_pct,
            "predicted_may": predicted_may,
            "predicted_stale": predicted_long,
            "actual_may": actual_may,
            "err_weighted_pp": err_weighted,
            "err_blocks_pp": err_blocks,
            "err_stale_pp": err_stale,
        }),
    );
    out
}
