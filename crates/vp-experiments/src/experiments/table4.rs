//! Table 4: coverage of B-Root from Atlas vs Verfploeter.
//!
//! Shape targets: Verfploeter sees a multiple-orders-of-magnitude superset
//! of Atlas' blocks (430× in the paper at Internet scale — here bounded by
//! the generated world's size), a ~55% hitlist response rate, a small
//! "no location" remainder, and most Atlas blocks shared with Verfploeter.

use std::collections::BTreeSet;

use crate::context::Lab;
use verfploeter::coverage::{coverage, AtlasCoverage};
use verfploeter::report::{count, pct, TextTable};

pub fn run(lab: &Lab) -> String {
    let scenario = lab.broot();
    let atlas = lab.atlas_scan(
        "SBA-5-15",
        scenario,
        lab.atlas_broot(),
        &scenario.announcement,
    );
    let vp = lab.vp_scan(
        "SBV-5-15",
        scenario,
        lab.broot_hitlist(),
        &scenario.announcement,
        15,
    );

    let responding_blocks: BTreeSet<_> = atlas
        .outcomes
        .iter()
        .filter(|o| o.site.is_some())
        .map(|o| o.block)
        .collect();
    let ac = AtlasCoverage {
        vps_considered: atlas.vps_considered() as u64,
        vps_responding: atlas.vps_responding() as u64,
        blocks_considered: atlas.blocks_considered() as u64,
        responding_blocks,
    };
    let r = coverage(&vp.catchments, lab.broot_hitlist(), &scenario.world.geodb, &ac);

    let mut t = TextTable::new(["", "RIPE Atlas (VPs)", "(/24s)", "Verfploeter (/24s)"]);
    t.row([
        "considered".to_owned(),
        count(r.atlas_vps_considered),
        count(r.atlas_blocks_considered),
        count(r.vp_blocks_considered),
    ]);
    t.row([
        "non-responding".to_owned(),
        count(r.atlas_vps_considered - r.atlas_vps_responding),
        count(r.atlas_blocks_considered - r.atlas_blocks_responding),
        count(r.vp_blocks_considered - r.vp_blocks_responding),
    ]);
    t.row([
        "responding".to_owned(),
        count(r.atlas_vps_responding),
        count(r.atlas_blocks_responding),
        count(r.vp_blocks_responding),
    ]);
    t.row([
        "no location".to_owned(),
        "0".to_owned(),
        count(r.atlas_blocks_responding - r.atlas_blocks_geolocatable),
        count(r.vp_blocks_no_location),
    ]);
    t.row([
        "geolocatable".to_owned(),
        count(r.atlas_vps_responding),
        count(r.atlas_blocks_geolocatable),
        count(r.vp_blocks_geolocatable),
    ]);
    t.row([
        "unique".to_owned(),
        String::new(),
        count(r.atlas_unique_blocks),
        count(r.vp_unique_blocks),
    ]);

    let mut out = String::from("Table 4: coverage of B-Root (datasets SBA-5-15, SBV-5-15)\n\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nVerfploeter sees {:.0}x more responding blocks than Atlas.\n\
         Hitlist response rate: {} (the paper and prior hitlist studies see ~55%).\n\
         {} of Atlas blocks are also seen by Verfploeter (paper: ~77%).\n",
        r.coverage_ratio(),
        pct(r.vp_blocks_responding as f64 / r.vp_blocks_considered as f64),
        pct(r.atlas_overlap_fraction()),
    ));
    // vp-lint: allow(h2): serde_json on owned derived data cannot fail.
    lab.write_json("table4_coverage", &serde_json::to_value(r).expect("serialize"));
    out
}
