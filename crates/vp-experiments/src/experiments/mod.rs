//! One module per paper table/figure. Every module exposes
//! `pub fn run(lab: &Lab) -> String` returning the rendered report (the
//! binaries print it; `run_all` concatenates them).

pub mod fig2;
pub mod maps;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

use crate::context::Lab;

/// All experiments in paper order, with their ids.
pub fn all() -> Vec<(&'static str, fn(&Lab) -> String)> {
    vec![
        ("table1_datasets", table1::run as fn(&Lab) -> String),
        ("table2_load_datasets", table2::run),
        ("table3_sites", table3::run),
        ("fig2_broot_maps", fig2::run),
        ("fig3_tangled_maps", fig3::run),
        ("table4_coverage", table4::run),
        ("table5_mappability", table5::run),
        ("table6_pct_lax", table6::run),
        ("fig4_load_maps", fig4::run),
        ("fig5_prepending", fig5::run),
        ("fig6_prepend_load", fig6::run),
        ("fig7_as_divisions", fig7::run),
        ("fig8_prefix_divisions", fig8::run),
        ("fig9_stability", fig9::run),
        ("table7_flip_ases", table7::run),
    ]
}
