//! Fig. 2: geographic coverage of B-Root — RIPE Atlas vs Verfploeter.
//!
//! Shape targets: Atlas dense in Europe, sparse in South America and
//! nearly absent in China; Verfploeter covering the populated globe with
//! orders of magnitude more observations.

use crate::context::Lab;
use crate::experiments::maps::render_pair;
use vp_geo::Continent;

pub fn run(lab: &Lab) -> String {
    let scenario = lab.broot();
    let atlas = lab.atlas_scan(
        "SBA-5-15",
        scenario,
        lab.atlas_broot(),
        &scenario.announcement,
    );
    let vp = lab.vp_scan(
        "SBV-5-15",
        scenario,
        lab.broot_hitlist(),
        &scenario.announcement,
        15,
    );

    let mut out = String::from("Fig. 2: geographic coverage of vantage points for B-Root\n\n");
    out.push_str(&render_pair(lab, scenario, &atlas, &vp.catchments, "fig2"));

    // The China contrast the paper highlights in §5.1.
    let world = &scenario.world;
    // vp-lint: allow(h2): CN is in the static country table.
    let (cn, _) = vp_geo::world::country_by_code("CN").expect("CN in table");
    let atlas_cn = atlas
        .outcomes
        .iter()
        .filter(|o| {
            o.site.is_some()
                && world.geodb.locate(o.block).map(|l| l.country) == Some(cn)
        })
        .count();
    let vp_cn = vp
        .catchments
        .iter()
        .filter(|(b, _)| world.geodb.locate(*b).map(|l| l.country) == Some(cn))
        .count();
    out.push_str(&format!(
        "\nChina: Atlas observations = {atlas_cn}, Verfploeter blocks = {vp_cn} \
         (\"Atlas cannot comment, but Verfploeter shows\" how China routes, §5.1).\n"
    ));

    // Europe share contrast (Atlas skew).
    let continent_share = |is_atlas: bool| {
        let mut eu = 0usize;
        let mut total = 0usize;
        if is_atlas {
            for o in atlas.outcomes.iter().filter(|o| o.site.is_some()) {
                if let Some(loc) = world.geodb.locate(o.block) {
                    total += 1;
                    if loc.country.get().continent == Continent::Europe {
                        eu += 1;
                    }
                }
            }
        } else {
            for (b, _) in vp.catchments.iter() {
                if let Some(loc) = world.geodb.locate(b) {
                    total += 1;
                    if loc.country.get().continent == Continent::Europe {
                        eu += 1;
                    }
                }
            }
        }
        eu as f64 / total.max(1) as f64
    };
    out.push_str(&format!(
        "Europe share of observations: Atlas {} vs Verfploeter {}.\n",
        verfploeter::report::pct(continent_share(true)),
        verfploeter::report::pct(continent_share(false)),
    ));
    out
}
