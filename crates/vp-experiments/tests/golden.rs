//! Golden-result tests: re-run the fig2/fig3/table4 experiments on the
//! seed scenario (default scale, the scale the checked-in `results/`
//! artifacts were generated at) and diff the JSON artifacts against the
//! repository copies. A refactor that silently changes any paper number —
//! a bin weight, a site total, a coverage row — fails here instead of
//! shipping a different "reproduction".
//!
//! The experiments run through the sharded scan path, so these tests also
//! pin the sharded engine to the exact numbers the serial engine produced
//! when the goldens were generated.

use std::path::{Path, PathBuf};

use vp_experiments::{experiments, Lab, Scale};

/// Repository `results/` directory (the golden artifacts).
fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// A scratch directory for this test process's regenerated artifacts.
fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vp-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn load_json(path: &Path) -> serde_json::Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

/// Asserts a regenerated artifact matches the checked-in golden file.
fn assert_matches_golden(scratch: &Path, name: &str) {
    let fresh = load_json(&scratch.join(format!("{name}.json")));
    let golden = load_json(&golden_dir().join(format!("{name}.json")));
    assert!(
        fresh == golden,
        "{name}.json diverged from results/{name}.json — if the change is \
         intentional, regenerate the goldens with \
         `cargo run --release -p vp-experiments --bin run_all -- --scale default --out results`"
    );
}

/// One Lab shared by all three regenerations so the expensive worlds and
/// scans are built once, exactly as `run_all` builds them.
#[test]
fn fig2_fig3_table4_match_golden_results() {
    let scratch = scratch_dir();
    let mut lab = Lab::new(Scale::Default);
    lab.out_dir = Some(scratch.clone());

    experiments::fig2::run(&lab);
    assert_matches_golden(&scratch, "fig2_maps");

    experiments::fig3::run(&lab);
    assert_matches_golden(&scratch, "fig3_maps");

    experiments::table4::run(&lab);
    assert_matches_golden(&scratch, "table4_coverage");

    let _ = std::fs::remove_dir_all(&scratch);
}
