//! Schema snapshot test for the per-experiment observability reports.
//!
//! The report shape is a contract with downstream tooling (and with
//! `scripts/check.sh`, which validates the reports a real `run_all --obs
//! full` emits — via `vp-monitor validate`, the same embedded snapshot).
//! The schema lives at `crates/vp-monitor/schema/obs_report.schema.json`,
//! embedded as `vp_monitor::schema::OBS_REPORT_SCHEMA`; validating with
//! it here means the snapshot cannot drift from the validator.

use vp_experiments::obs::validate_schema;
use vp_experiments::{Lab, Scale};
use vp_obs::TraceLevel;

fn schema() -> serde_json::Value {
    serde_json::from_str(vp_monitor::schema::OBS_REPORT_SCHEMA).expect("parse schema snapshot")
}

/// Runs a real (tiny) experiment with full tracing and validates the
/// report it would write against the checked-in schema.
#[test]
fn generated_report_matches_schema_snapshot() {
    let mut lab = Lab::new(Scale::Tiny);
    lab.obs = TraceLevel::Full;
    let out = vp_experiments::experiments::fig2::run(&lab);
    assert!(!out.is_empty());
    let report = lab.take_obs_report("fig2_broot_maps").expect("report");

    let errors = validate_schema(&report, &schema());
    assert!(errors.is_empty(), "schema violations: {errors:#?}");

    // The report must reflect real work: fig2 runs at least one scan.
    let serde_json::Value::Object(obj) = &report else {
        panic!("report is not an object")
    };
    let scans = obj.get("scans").and_then(|v| v.as_array()).expect("scans");
    assert!(!scans.is_empty(), "fig2 recorded no scans");
    let metrics = obj
        .get("metrics")
        .and_then(|v| v.as_array())
        .expect("metrics");
    assert!(
        metrics.len() > 10,
        "suspiciously few metrics: {}",
        metrics.len()
    );
}

/// Summary mode must also conform (no events, but same shape).
#[test]
fn summary_mode_report_matches_schema_snapshot() {
    let mut lab = Lab::new(Scale::Tiny);
    lab.obs = TraceLevel::Summary;
    let s = lab.broot();
    let hl = lab.broot_hitlist();
    let _ = lab.vp_scan("SBV-SCHEMA", s, hl, &s.announcement, 3);
    let report = lab.take_obs_report("schema-check").expect("report");
    let errors = validate_schema(&report, &schema());
    assert!(errors.is_empty(), "schema violations: {errors:#?}");
}

/// Validates reports emitted by an actual `run_all --obs full` run when
/// `VP_OBS_REPORT_DIR` points at them (scripts/check.sh sets this after
/// running one experiment); skips silently otherwise so `cargo test`
/// stays hermetic.
#[test]
fn emitted_reports_match_schema_snapshot() {
    let Ok(dir) = std::env::var("VP_OBS_REPORT_DIR") else {
        return;
    };
    let schema = schema();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("read VP_OBS_REPORT_DIR") {
        let path = entry.expect("dir entry").path();
        if path.extension().map(|e| e == "json") != Some(true) {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read report");
        let report: serde_json::Value = serde_json::from_str(&text).expect("parse report");
        let errors = validate_schema(&report, &schema);
        assert!(
            errors.is_empty(),
            "{} violates the schema: {errors:#?}",
            path.display()
        );
        seen += 1;
    }
    assert!(seen > 0, "VP_OBS_REPORT_DIR={dir} contained no reports");
}
