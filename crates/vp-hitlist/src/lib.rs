//! The hitlist: one representative probe target per `/24` block.
//!
//! Verfploeter probes "a recent ISI IPv4 hitlist ... because they provide
//! representative addresses for each /24 block that are most likely to
//! reply to pings, and with one address per /24 block, we can reduce
//! measurement traffic to 0.4% of a complete IPv4 scan" (§3.1).
//!
//! The stand-in here derives its targets from the generated world's
//! populated blocks. Like the real hitlist, it is imperfect: for a small
//! fraction of blocks the listed address is *not* the block's live
//! representative ("the specific address we chose to contact did not
//! reply", §5.4) — those blocks end up unmapped even though they are
//! responsive, feeding Table 5's "not mappable" row.

use serde::{Deserialize, Serialize};
use vp_net::{Block24, Ipv4Addr};
use vp_topology::Internet;

/// One hitlist row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HitlistEntry {
    pub block: Block24,
    /// The address the prober will target in this block.
    pub target: Ipv4Addr,
}

/// Configuration of hitlist construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HitlistConfig {
    /// Probability the listed target is a stale/wrong address that will not
    /// answer even when the block is responsive.
    pub wrong_addr_prob: f64,
    /// Seed for the deterministic wrong-address selection.
    pub seed: u64,
}

impl Default for HitlistConfig {
    fn default() -> Self {
        HitlistConfig {
            wrong_addr_prob: 0.03,
            seed: 0x4157,
        }
    }
}

/// The hitlist entry for one block — a pure function of the block, its
/// representative octet, and the config seed. Because each entry depends
/// on nothing but its own block, hitlists can be *streamed*: any sorted
/// block source yields the same entries in the same order without ever
/// materializing the full list (see [`for_each_shard`]).
pub fn entry_for(block: Block24, rep_octet: u8, cfg: &HitlistConfig) -> HitlistEntry {
    let h = mix(cfg.seed, block.0 as u64);
    let target = if unit(h) < cfg.wrong_addr_prob {
        // Deterministically pick a different final octet.
        let mut octet = vp_net::conv::sat_u8(mix(cfg.seed ^ 0xbad, block.0 as u64) % 254) + 1;
        if octet == rep_octet {
            octet = if octet == 254 { 1 } else { octet + 1 };
        }
        block.addr(octet)
    } else {
        block.addr(rep_octet)
    };
    HitlistEntry { block, target }
}

/// Partitions `0..n` into `shards` disjoint contiguous ranges, sizes
/// differing by at most one (the first `n % shards` get the extra entry).
/// A pure function of `(n, shards)`: every caller — the sharded scan, the
/// streaming builder, the monitors — computes the same bounds.
///
/// # Panics
/// Panics if `shards` is zero.
pub fn shard_bounds_of(n: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    assert!(shards > 0, "cannot shard into zero parts");
    let base = n / shards;
    let rem = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for k in 0..shards {
        let len = base + usize::from(k < rem);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Observer of streaming hitlist construction: notified as entries become
/// resident and are released again. The production path uses [`NullGauge`];
/// tests plug in [`CountingGauge`] to *prove* (by counting, not by timing)
/// that peak residency stays `O(shard)` — the bounded-memory contract of
/// the million-block streaming path.
pub trait ResidencyGauge {
    fn acquire(&mut self, n: usize);
    fn release(&mut self, n: usize);
}

/// No-op gauge for production streaming.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullGauge;

impl ResidencyGauge for NullGauge {
    fn acquire(&mut self, _n: usize) {}
    fn release(&mut self, _n: usize) {}
}

/// Test hook: counts currently resident and peak-resident entries.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingGauge {
    current: usize,
    peak: usize,
}

impl CountingGauge {
    pub fn new() -> CountingGauge {
        CountingGauge::default()
    }

    /// Entries resident right now.
    pub fn current(&self) -> usize {
        self.current
    }

    /// The high-water mark of resident entries.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

impl ResidencyGauge for CountingGauge {
    fn acquire(&mut self, n: usize) {
        self.current += n;
        self.peak = self.peak.max(self.current);
    }

    fn release(&mut self, n: usize) {
        self.current = self.current.saturating_sub(n);
    }
}

/// Streams hitlist construction one shard at a time: `blocks` yields
/// `(block, rep_octet)` in ascending block order (e.g. from
/// [`Internet::blocks_in_order`]), `n` is the total block count, and `f`
/// receives each shard's index, its starting hitlist index, and its
/// entries. Only one shard's entries are ever resident — the buffer is
/// reused across shards — so peak memory is `O(n / shards)` no matter how
/// large the world is, which [`CountingGauge`] lets tests assert exactly.
///
/// Concatenating the shard slices reproduces
/// [`Hitlist::from_internet`]'s entries byte for byte (the per-entry
/// function is [`entry_for`] in both paths).
///
/// # Panics
/// Panics if `shards` is zero or `blocks` yields a number of items other
/// than `n`.
pub fn for_each_shard<G: ResidencyGauge>(
    blocks: impl IntoIterator<Item = (Block24, u8)>,
    n: usize,
    shards: usize,
    cfg: &HitlistConfig,
    gauge: &mut G,
    mut f: impl FnMut(usize, usize, &[HitlistEntry]),
) {
    let bounds = shard_bounds_of(n, shards);
    let mut blocks = blocks.into_iter();
    let mut buf: Vec<HitlistEntry> = Vec::new();
    for (k, range) in bounds.iter().enumerate() {
        let want = range.len();
        buf.reserve(want.saturating_sub(buf.capacity()));
        for _ in 0..want {
            let (block, rep_octet) = blocks
                .next()
                .unwrap_or_else(|| panic!("block source ended early (expected {n} blocks)"));
            buf.push(entry_for(block, rep_octet, cfg));
            gauge.acquire(1);
        }
        debug_assert!(buf.windows(2).all(|w| w[0].block < w[1].block));
        f(k, range.start, &buf);
        gauge.release(buf.len());
        buf.clear();
    }
    assert!(
        blocks.next().is_none(),
        "block source yielded more than {n} blocks"
    );
}

/// An ordered hitlist over every populated block of a world.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hitlist {
    entries: Vec<HitlistEntry>,
}

impl Hitlist {
    /// Builds the hitlist from a world: one entry per populated block, in
    /// block order. A `wrong_addr_prob` fraction of entries points at a
    /// non-representative address.
    ///
    /// This is the materialized form; [`for_each_shard`] streams the same
    /// entries one shard at a time for bounded-memory consumers.
    pub fn from_internet(world: &Internet, cfg: &HitlistConfig) -> Hitlist {
        assert!(
            (0.0..=1.0).contains(&cfg.wrong_addr_prob),
            "wrong_addr_prob out of range"
        );
        let entries: Vec<HitlistEntry> = world
            .blocks_in_order()
            .map(|b| entry_for(b.block, b.rep_octet, cfg))
            .collect();
        debug_assert!(entries.windows(2).all(|w| w[0].block < w[1].block));
        Hitlist { entries }
    }

    /// Number of targets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `i`-th entry (in block order).
    // vp-lint: allow(g1): index-by-contract accessor — documented to require i < len(), mirroring slice indexing.
    pub fn entry(&self, i: usize) -> HitlistEntry {
        self.entries[i]
    }

    /// All entries in block order.
    pub fn entries(&self) -> &[HitlistEntry] {
        &self.entries
    }

    /// Looks up the entry for a block (binary search).
    pub fn for_block(&self, block: Block24) -> Option<HitlistEntry> {
        self.entries
            .binary_search_by_key(&block, |e| e.block)
            .ok()
            .map(|i| self.entries[i])
    }

    /// Partitions the hitlist into `shards` disjoint contiguous index
    /// ranges in stable block order, together covering `0..len()`.
    ///
    /// Sizes differ by at most one (the first `len % shards` ranges get
    /// the extra entry), so the partition is a pure function of
    /// `(len, shards)` — every caller computes the same bounds, which the
    /// sharded scan path relies on to reproduce serial runs exactly.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn shard_bounds(&self, shards: usize) -> Vec<std::ops::Range<usize>> {
        shard_bounds_of(self.entries.len(), shards)
    }

    /// The shard (under [`Hitlist::shard_bounds`] with the same `shards`)
    /// that owns hitlist index `index`.
    pub fn shard_of(&self, index: usize, shards: usize) -> usize {
        assert!(shards > 0, "cannot shard into zero parts");
        assert!(index < self.entries.len(), "index out of range");
        let n = self.entries.len();
        let base = n / shards;
        let rem = n % shards;
        let big = rem * (base + 1);
        if index < big {
            index / (base + 1)
        } else {
            rem + (index - big) / base
        }
    }

    /// The entries of one shard, as produced by [`Hitlist::shard_bounds`].
    pub fn shard_entries(&self, shards: usize, shard: usize) -> &[HitlistEntry] {
        let bounds = self.shard_bounds(shards);
        &self.entries[bounds[shard].clone()]
    }

    /// Serializes to JSON (one array; stable order).
    pub fn to_json(&self) -> String {
        // vp-lint: allow(h2): serializing owned plain data with derived impls cannot fail.
        serde_json::to_string(&self.entries).expect("hitlist serializes")
    }

    /// Deserializes from [`Hitlist::to_json`] output.
    pub fn from_json(s: &str) -> Result<Hitlist, serde_json::Error> {
        let mut entries: Vec<HitlistEntry> = serde_json::from_str(s)?;
        entries.sort_by_key(|e| e.block);
        Ok(Hitlist { entries })
    }
}

fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_topology::TopologyConfig;

    fn world() -> Internet {
        Internet::generate(TopologyConfig::tiny(17))
    }

    #[test]
    fn covers_every_populated_block_once() {
        let w = world();
        let hl = Hitlist::from_internet(&w, &HitlistConfig::default());
        assert_eq!(hl.len(), w.blocks.len());
        let blocks: std::collections::HashSet<Block24> =
            hl.entries().iter().map(|e| e.block).collect();
        assert_eq!(blocks.len(), hl.len());
        for e in hl.entries() {
            assert!(e.block.contains(e.target), "{} outside {}", e.target, e.block);
            assert!(w.block(e.block).is_some());
        }
    }

    #[test]
    fn most_targets_are_representatives() {
        let w = world();
        let cfg = HitlistConfig::default();
        let hl = Hitlist::from_internet(&w, &cfg);
        let wrong = hl
            .entries()
            .iter()
            .filter(|e| w.block(e.block).unwrap().representative() != e.target)
            .count();
        let frac = wrong as f64 / hl.len() as f64;
        assert!(
            (frac - cfg.wrong_addr_prob).abs() < 0.02,
            "wrong-target fraction {frac:.3}"
        );
    }

    #[test]
    fn zero_wrong_prob_means_all_representatives() {
        let w = world();
        let cfg = HitlistConfig {
            wrong_addr_prob: 0.0,
            ..HitlistConfig::default()
        };
        let hl = Hitlist::from_internet(&w, &cfg);
        for e in hl.entries() {
            assert_eq!(e.target, w.block(e.block).unwrap().representative());
        }
    }

    #[test]
    fn for_block_lookup() {
        let w = world();
        let hl = Hitlist::from_internet(&w, &HitlistConfig::default());
        let some = hl.entry(hl.len() / 2);
        assert_eq!(hl.for_block(some.block), Some(some));
        assert_eq!(hl.for_block(Block24(0)), None);
    }

    #[test]
    fn json_roundtrip() {
        let w = world();
        let hl = Hitlist::from_internet(&w, &HitlistConfig::default());
        let json = hl.to_json();
        let back = Hitlist::from_json(&json).unwrap();
        assert_eq!(back, hl);
    }

    #[test]
    fn streamed_shards_concatenate_to_from_internet() {
        let w = world();
        let cfg = HitlistConfig::default();
        let hl = Hitlist::from_internet(&w, &cfg);
        for shards in [1usize, 2, 7, 16] {
            let mut streamed: Vec<HitlistEntry> = Vec::new();
            let mut gauge = NullGauge;
            let mut seen_offset = 0;
            for_each_shard(
                w.blocks_in_order().map(|b| (b.block, b.rep_octet)),
                w.blocks.len(),
                shards,
                &cfg,
                &mut gauge,
                |k, offset, entries| {
                    assert_eq!(offset, seen_offset, "shard {k} offset");
                    seen_offset += entries.len();
                    streamed.extend_from_slice(entries);
                },
            );
            assert_eq!(streamed, hl.entries(), "shards={shards}");
        }
    }

    /// The bounded-memory contract at a million blocks: streaming shard
    /// construction keeps peak resident entries at O(shard), proven by
    /// counting via the gauge hook — no wall-clock, no allocator tricks.
    /// The block source is synthetic (a range), so nothing else in the
    /// test materializes a million of anything either.
    #[test]
    fn streaming_residency_is_o_shard_at_1m_blocks() {
        const N: usize = 1_000_000;
        const SHARDS: usize = 64;
        let cfg = HitlistConfig::default();
        let blocks = (0..N as u32).map(|i| {
            // Valid public-ish space: start at 1.0.0.0's block.
            (Block24(0x0100_0000 / 256 + i), sat_octet(i))
        });
        let mut gauge = CountingGauge::new();
        let mut total = 0usize;
        let mut shards_seen = 0usize;
        let mut last_block = None;
        for_each_shard(blocks, N, SHARDS, &cfg, &mut gauge, |_k, _offset, entries| {
            total += entries.len();
            shards_seen += 1;
            // Block order is preserved across shard boundaries.
            for e in entries {
                assert!(last_block < Some(e.block));
                last_block = Some(e.block);
            }
        });
        assert_eq!(total, N);
        assert_eq!(shards_seen, SHARDS);
        assert_eq!(gauge.current(), 0, "all entries released");
        let shard_cap = N.div_ceil(SHARDS);
        assert!(
            gauge.peak() <= shard_cap,
            "peak residency {} exceeds one shard ({shard_cap}) — streaming regressed to O(n)",
            gauge.peak()
        );
        assert!(gauge.peak() > 0);
    }

    fn sat_octet(i: u32) -> u8 {
        vp_net::conv::sat_u8(i % 254) + 1
    }

    #[test]
    fn shard_bounds_of_partitions_exactly() {
        for (n, shards) in [(10usize, 3usize), (0, 4), (7, 7), (5, 16), (1_000_000, 64)] {
            let bounds = shard_bounds_of(n, shards);
            assert_eq!(bounds.len(), shards);
            let mut next = 0;
            for r in &bounds {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, n);
            let sizes: Vec<usize> = bounds.iter().map(|r| r.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "uneven shards: {sizes:?}");
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let w = world();
        let a = Hitlist::from_internet(&w, &HitlistConfig::default());
        let b = Hitlist::from_internet(&w, &HitlistConfig::default());
        assert_eq!(a, b);
        let c = Hitlist::from_internet(
            &w,
            &HitlistConfig {
                seed: 999,
                ..HitlistConfig::default()
            },
        );
        // Different seed changes which blocks get wrong targets.
        assert_ne!(a, c);
    }
}
