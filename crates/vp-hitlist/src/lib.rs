//! The hitlist: one representative probe target per `/24` block.
//!
//! Verfploeter probes "a recent ISI IPv4 hitlist ... because they provide
//! representative addresses for each /24 block that are most likely to
//! reply to pings, and with one address per /24 block, we can reduce
//! measurement traffic to 0.4% of a complete IPv4 scan" (§3.1).
//!
//! The stand-in here derives its targets from the generated world's
//! populated blocks. Like the real hitlist, it is imperfect: for a small
//! fraction of blocks the listed address is *not* the block's live
//! representative ("the specific address we chose to contact did not
//! reply", §5.4) — those blocks end up unmapped even though they are
//! responsive, feeding Table 5's "not mappable" row.

use serde::{Deserialize, Serialize};
use vp_net::{Block24, Ipv4Addr};
use vp_topology::Internet;

/// One hitlist row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HitlistEntry {
    pub block: Block24,
    /// The address the prober will target in this block.
    pub target: Ipv4Addr,
}

/// Configuration of hitlist construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HitlistConfig {
    /// Probability the listed target is a stale/wrong address that will not
    /// answer even when the block is responsive.
    pub wrong_addr_prob: f64,
    /// Seed for the deterministic wrong-address selection.
    pub seed: u64,
}

impl Default for HitlistConfig {
    fn default() -> Self {
        HitlistConfig {
            wrong_addr_prob: 0.03,
            seed: 0x4157,
        }
    }
}

/// An ordered hitlist over every populated block of a world.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hitlist {
    entries: Vec<HitlistEntry>,
}

impl Hitlist {
    /// Builds the hitlist from a world: one entry per populated block, in
    /// block order. A `wrong_addr_prob` fraction of entries points at a
    /// non-representative address.
    pub fn from_internet(world: &Internet, cfg: &HitlistConfig) -> Hitlist {
        assert!(
            (0.0..=1.0).contains(&cfg.wrong_addr_prob),
            "wrong_addr_prob out of range"
        );
        let mut entries: Vec<HitlistEntry> = world
            .blocks
            .iter()
            .map(|b| {
                let h = mix(cfg.seed, b.block.0 as u64);
                let target = if unit(h) < cfg.wrong_addr_prob {
                    // Deterministically pick a different final octet.
                    let mut octet =
                        vp_net::conv::sat_u8(mix(cfg.seed ^ 0xbad, b.block.0 as u64) % 254) + 1;
                    if octet == b.rep_octet {
                        octet = if octet == 254 { 1 } else { octet + 1 };
                    }
                    b.block.addr(octet)
                } else {
                    b.representative()
                };
                HitlistEntry {
                    block: b.block,
                    target,
                }
            })
            .collect();
        entries.sort_by_key(|e| e.block);
        Hitlist { entries }
    }

    /// Number of targets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `i`-th entry (in block order).
    // vp-lint: allow(g1): index-by-contract accessor — documented to require i < len(), mirroring slice indexing.
    pub fn entry(&self, i: usize) -> HitlistEntry {
        self.entries[i]
    }

    /// All entries in block order.
    pub fn entries(&self) -> &[HitlistEntry] {
        &self.entries
    }

    /// Looks up the entry for a block (binary search).
    pub fn for_block(&self, block: Block24) -> Option<HitlistEntry> {
        self.entries
            .binary_search_by_key(&block, |e| e.block)
            .ok()
            .map(|i| self.entries[i])
    }

    /// Partitions the hitlist into `shards` disjoint contiguous index
    /// ranges in stable block order, together covering `0..len()`.
    ///
    /// Sizes differ by at most one (the first `len % shards` ranges get
    /// the extra entry), so the partition is a pure function of
    /// `(len, shards)` — every caller computes the same bounds, which the
    /// sharded scan path relies on to reproduce serial runs exactly.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn shard_bounds(&self, shards: usize) -> Vec<std::ops::Range<usize>> {
        assert!(shards > 0, "cannot shard into zero parts");
        let n = self.entries.len();
        let base = n / shards;
        let rem = n % shards;
        let mut out = Vec::with_capacity(shards);
        let mut start = 0;
        for k in 0..shards {
            let len = base + usize::from(k < rem);
            out.push(start..start + len);
            start += len;
        }
        debug_assert_eq!(start, n);
        out
    }

    /// The shard (under [`Hitlist::shard_bounds`] with the same `shards`)
    /// that owns hitlist index `index`.
    pub fn shard_of(&self, index: usize, shards: usize) -> usize {
        assert!(shards > 0, "cannot shard into zero parts");
        assert!(index < self.entries.len(), "index out of range");
        let n = self.entries.len();
        let base = n / shards;
        let rem = n % shards;
        let big = rem * (base + 1);
        if index < big {
            index / (base + 1)
        } else {
            rem + (index - big) / base
        }
    }

    /// The entries of one shard, as produced by [`Hitlist::shard_bounds`].
    pub fn shard_entries(&self, shards: usize, shard: usize) -> &[HitlistEntry] {
        let bounds = self.shard_bounds(shards);
        &self.entries[bounds[shard].clone()]
    }

    /// Serializes to JSON (one array; stable order).
    pub fn to_json(&self) -> String {
        // vp-lint: allow(h2): serializing owned plain data with derived impls cannot fail.
        serde_json::to_string(&self.entries).expect("hitlist serializes")
    }

    /// Deserializes from [`Hitlist::to_json`] output.
    pub fn from_json(s: &str) -> Result<Hitlist, serde_json::Error> {
        let mut entries: Vec<HitlistEntry> = serde_json::from_str(s)?;
        entries.sort_by_key(|e| e.block);
        Ok(Hitlist { entries })
    }
}

fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_topology::TopologyConfig;

    fn world() -> Internet {
        Internet::generate(TopologyConfig::tiny(17))
    }

    #[test]
    fn covers_every_populated_block_once() {
        let w = world();
        let hl = Hitlist::from_internet(&w, &HitlistConfig::default());
        assert_eq!(hl.len(), w.blocks.len());
        let blocks: std::collections::HashSet<Block24> =
            hl.entries().iter().map(|e| e.block).collect();
        assert_eq!(blocks.len(), hl.len());
        for e in hl.entries() {
            assert!(e.block.contains(e.target), "{} outside {}", e.target, e.block);
            assert!(w.block(e.block).is_some());
        }
    }

    #[test]
    fn most_targets_are_representatives() {
        let w = world();
        let cfg = HitlistConfig::default();
        let hl = Hitlist::from_internet(&w, &cfg);
        let wrong = hl
            .entries()
            .iter()
            .filter(|e| w.block(e.block).unwrap().representative() != e.target)
            .count();
        let frac = wrong as f64 / hl.len() as f64;
        assert!(
            (frac - cfg.wrong_addr_prob).abs() < 0.02,
            "wrong-target fraction {frac:.3}"
        );
    }

    #[test]
    fn zero_wrong_prob_means_all_representatives() {
        let w = world();
        let cfg = HitlistConfig {
            wrong_addr_prob: 0.0,
            ..HitlistConfig::default()
        };
        let hl = Hitlist::from_internet(&w, &cfg);
        for e in hl.entries() {
            assert_eq!(e.target, w.block(e.block).unwrap().representative());
        }
    }

    #[test]
    fn for_block_lookup() {
        let w = world();
        let hl = Hitlist::from_internet(&w, &HitlistConfig::default());
        let some = hl.entry(hl.len() / 2);
        assert_eq!(hl.for_block(some.block), Some(some));
        assert_eq!(hl.for_block(Block24(0)), None);
    }

    #[test]
    fn json_roundtrip() {
        let w = world();
        let hl = Hitlist::from_internet(&w, &HitlistConfig::default());
        let json = hl.to_json();
        let back = Hitlist::from_json(&json).unwrap();
        assert_eq!(back, hl);
    }

    #[test]
    fn construction_is_deterministic() {
        let w = world();
        let a = Hitlist::from_internet(&w, &HitlistConfig::default());
        let b = Hitlist::from_internet(&w, &HitlistConfig::default());
        assert_eq!(a, b);
        let c = Hitlist::from_internet(
            &w,
            &HitlistConfig {
                seed: 999,
                ..HitlistConfig::default()
            },
        );
        // Different seed changes which blocks get wrong targets.
        assert_ne!(a, c);
    }
}
