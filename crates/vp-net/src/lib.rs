//! Network primitives shared by every crate in the Verfploeter reproduction.
//!
//! This crate is deliberately dependency-light: it defines the vocabulary
//! types the rest of the workspace speaks in.
//!
//! * [`addr`] — IPv4 addresses, `/24` blocks ([`Block24`]) and CIDR prefixes
//!   ([`Prefix`]). Verfploeter probes one representative address per `/24`
//!   (the smallest prefix routable in BGP), so the `/24` block is the unit of
//!   observation throughout the system.
//! * [`asn`] — Autonomous System numbers ([`Asn`]).
//! * [`bitset`] — a packed bitset over dense block ids ([`BitSet`]), the
//!   boolean column type of the columnar scan core.
//! * [`trie`] — a longest-prefix-match trie ([`trie::PrefixTrie`]) used for
//!   the Route Views-style prefix → origin-AS table.
//! * [`perm`] — pseudorandom probe-order permutations (Feistel cycle-walking
//!   and a full-period LCG for the ablation bench). The paper sends probes in
//!   pseudorandom order "to spread traffic, limiting traffic to any given
//!   network" (§3.1); these types make that order deterministic and testable.
//! * [`pacing`] — a token bucket that enforces the paper's probing rate
//!   (~6–10k probes/second) against simulated time.
//! * [`time`] — the simulated-time scale ([`SimTime`], [`SimDuration`]) used
//!   by the discrete-event simulator and everything driven by it.

pub mod addr;
pub mod asn;
pub mod bitset;
pub mod conv;
pub mod error;
pub mod pacing;
pub mod perm;
pub mod time;
pub mod trie;

pub use addr::{Block24, Ipv4Addr, Prefix};
pub use asn::Asn;
pub use bitset::BitSet;
pub use error::NetError;
pub use pacing::TokenBucket;
pub use perm::{FeistelPermutation, LcgPermutation, ProbeOrder};
pub use time::{SimDuration, SimTime};
pub use trie::PrefixTrie;
