//! Pseudorandom probe-order permutations.
//!
//! Verfploeter sends one ICMP Echo Request to each hitlist entry "in a
//! pseudorandom order (following [Heidemann et al., IMC 2008]) ... to spread
//! traffic, limiting traffic to any given network to avoid rate limits and
//! abuse complaints" (§3.1). These types produce such an order as a
//! *permutation of indexes* `0..n`, so a probing run needs no shuffle buffer
//! and can be resumed from any position.
//!
//! Two implementations:
//!
//! * [`FeistelPermutation`] — a 4-round Feistel network over the smallest
//!   even-bit-width domain covering `n`, with cycle-walking to stay in
//!   `0..n`. This is the production choice: neighbouring inputs map to
//!   scattered outputs, so consecutive probes hit unrelated networks.
//! * [`LcgPermutation`] — a full-period linear-congruential walk. Cheaper,
//!   but consecutive outputs differ by a fixed stride, which concentrates
//!   probe bursts in arithmetic progressions of the address space. Kept as
//!   the baseline for the probe-ordering ablation bench.

/// A deterministic bijection on `0..len()` used to order probes.
pub trait ProbeOrder {
    /// Domain size.
    fn len(&self) -> u64;

    /// True when the domain is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The position assigned to index `i`. Must be a bijection on
    /// `0..self.len()`. Panics if `i >= len()`.
    fn permute(&self, i: u64) -> u64;

    /// Iterates the permuted order: `permute(0), permute(1), ...`.
    fn order(&self) -> Box<dyn Iterator<Item = u64> + '_>
    where
        Self: Sized,
    {
        Box::new((0..self.len()).map(move |i| self.permute(i)))
    }
}

/// A 4-round Feistel permutation with cycle-walking, uniform for any `n`.
#[derive(Debug, Clone)]
pub struct FeistelPermutation {
    n: u64,
    half_bits: u32,
    keys: [u64; 4],
}

impl FeistelPermutation {
    /// Builds the permutation for domain `0..n` keyed by `seed`.
    ///
    /// `n == 0` yields an empty permutation.
    pub fn new(n: u64, seed: u64) -> Self {
        // Smallest even bit width 2h with 2^(2h) >= n, h >= 1.
        let bits = 64 - n.saturating_sub(1).leading_zeros().min(63);
        let half_bits = bits.div_ceil(2).max(1);
        // Derive round keys from the seed with splitmix64.
        let mut s = seed;
        let mut keys = [0u64; 4];
        for k in keys.iter_mut() {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *k = z ^ (z >> 31);
        }
        FeistelPermutation { n, half_bits, keys }
    }

    fn round(&self, right: u64, key: u64) -> u64 {
        // A small mixing function; only the low `half_bits` of the output
        // are used.
        let mut z = right ^ key;
        z = z.wrapping_mul(0xff51_afd7_ed55_8ccd);
        z ^= z >> 33;
        z = z.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        z ^= z >> 29;
        z
    }

    /// One pass of the Feistel network over the `2 * half_bits` domain.
    fn encrypt_once(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = (x >> self.half_bits) & mask;
        let mut right = x & mask;
        for &key in &self.keys {
            let next = left ^ (self.round(right, key) & mask);
            left = right;
            right = next;
        }
        (left << self.half_bits) | right
    }
}

impl ProbeOrder for FeistelPermutation {
    fn len(&self) -> u64 {
        self.n
    }

    fn permute(&self, i: u64) -> u64 {
        assert!(i < self.n, "index {i} out of domain 0..{}", self.n);
        // Cycle-walk: the Feistel network permutes the full power-of-two
        // domain; re-encrypt until we land back inside 0..n. Expected walk
        // length is < 4 because the domain is at most 4x larger than n.
        let mut x = self.encrypt_once(i);
        while x >= self.n {
            x = self.encrypt_once(x);
        }
        x
    }
}

/// A full-period linear-congruential permutation (ablation baseline).
///
/// Uses `x -> (a*x + c) mod m` with `m` the smallest power of two `>= n`
/// and Hull–Dobell-satisfying `a, c`, cycle-walked into `0..n`. Consecutive
/// outputs are strongly correlated — this is exactly the deficiency the
/// ablation bench demonstrates.
#[derive(Debug, Clone)]
pub struct LcgPermutation {
    n: u64,
    m: u64,
    a: u64,
    c: u64,
}

impl LcgPermutation {
    /// Builds the permutation for domain `0..n` keyed by `seed`.
    pub fn new(n: u64, seed: u64) -> Self {
        let m = n.max(2).next_power_of_two();
        // Hull–Dobell for power-of-two modulus: a ≡ 1 (mod 4), c odd.
        let a = ((seed.wrapping_mul(0x9e37_79b9) % m) & !3).wrapping_add(1) % m.max(4);
        let a = if a <= 1 { 5 % m } else { a };
        let c = (seed | 1) % m;
        LcgPermutation { n, m, a, c }
    }

    fn step(&self, x: u64) -> u64 {
        (x.wrapping_mul(self.a).wrapping_add(self.c)) & (self.m - 1)
    }
}

impl ProbeOrder for LcgPermutation {
    fn len(&self) -> u64 {
        self.n
    }

    fn permute(&self, i: u64) -> u64 {
        assert!(i < self.n, "index {i} out of domain 0..{}", self.n);
        let mut x = self.step(i);
        while x >= self.n {
            x = self.step(x);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_bijection(p: &dyn ProbeOrder) {
        let n = p.len();
        let seen: HashSet<u64> = (0..n).map(|i| p.permute(i)).collect();
        assert_eq!(seen.len() as u64, n, "not a bijection for n={n}");
        assert!(seen.iter().all(|&x| x < n), "output out of domain");
    }

    #[test]
    fn feistel_is_bijection_awkward_sizes() {
        for n in [1u64, 2, 3, 5, 16, 17, 255, 256, 257, 1000, 4096, 5000] {
            assert_bijection(&FeistelPermutation::new(n, 42));
        }
    }

    #[test]
    fn lcg_is_bijection_awkward_sizes() {
        for n in [1u64, 2, 3, 5, 16, 17, 255, 256, 257, 1000, 4096, 5000] {
            assert_bijection(&LcgPermutation::new(n, 42));
        }
    }

    #[test]
    fn feistel_differs_by_seed() {
        let a = FeistelPermutation::new(1000, 1);
        let b = FeistelPermutation::new(1000, 2);
        let same = (0..1000).filter(|&i| a.permute(i) == b.permute(i)).count();
        // Different keys should agree only about 1/1000 of the time.
        assert!(same < 50, "permutations nearly identical: {same} matches");
    }

    #[test]
    fn feistel_is_deterministic() {
        let a = FeistelPermutation::new(1 << 20, 7);
        let b = FeistelPermutation::new(1 << 20, 7);
        for i in (0..1u64 << 20).step_by(100_000) {
            assert_eq!(a.permute(i), b.permute(i));
        }
    }

    #[test]
    fn feistel_scatters_consecutive_indexes() {
        // The abuse-avoidance property: consecutive probe positions should
        // land far apart. Measure mean absolute gap of consecutive outputs;
        // for a random permutation it's ~n/3.
        let n = 100_000u64;
        let p = FeistelPermutation::new(n, 3);
        let mut sum = 0u64;
        let mut prev = p.permute(0);
        for i in 1..10_000 {
            let cur = p.permute(i);
            sum += cur.abs_diff(prev);
            prev = cur;
        }
        let mean = sum / 9_999;
        assert!(
            mean > n / 10,
            "consecutive outputs too close together: mean gap {mean}"
        );
    }

    #[test]
    fn order_iterator_covers_domain() {
        let p = FeistelPermutation::new(513, 9);
        let all: HashSet<u64> = p.order().collect();
        assert_eq!(all.len(), 513);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn permute_out_of_domain_panics() {
        FeistelPermutation::new(10, 0).permute(10);
    }

    #[test]
    fn empty_domain() {
        let p = FeistelPermutation::new(0, 0);
        assert!(p.is_empty());
        assert_eq!(p.order().count(), 0);
    }
}
