//! IPv4 addresses, `/24` blocks and CIDR prefixes.
//!
//! The reproduction works entirely in IPv4 (as the paper does). Addresses are
//! a thin newtype over `u32` in host byte order so they are cheap to hash,
//! sort and range over; conversion to dotted-quad form is provided for
//! display and parsing.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::NetError;

/// An IPv4 address, stored in host byte order.
///
/// A deliberate local type rather than `std::net::Ipv4Addr`: the simulator
/// indexes and iterates over address space constantly and wants a transparent
/// `u32` with arithmetic, not an octet array.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The `/24` block this address belongs to.
    pub const fn block(self) -> Block24 {
        Block24(self.0 >> 8)
    }

    /// The host part within its `/24` (the final octet).
    pub const fn host_in_block(self) -> u8 {
        (self.0 & 0xff) as u8
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Ipv4Addr {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in octets.iter_mut() {
            let part = parts
                .next()
                .ok_or_else(|| NetError::AddrParse(s.to_owned()))?;
            *slot = part
                .parse::<u8>()
                .map_err(|_| NetError::AddrParse(s.to_owned()))?;
        }
        if parts.next().is_some() {
            return Err(NetError::AddrParse(s.to_owned()));
        }
        Ok(Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3])) // vp-lint: allow(g1): constant indices into a fixed [u8; 4].
    }
}

impl From<u32> for Ipv4Addr {
    fn from(v: u32) -> Self {
        Ipv4Addr(v)
    }
}

impl From<Ipv4Addr> for u32 {
    fn from(a: Ipv4Addr) -> u32 {
        a.0
    }
}

/// A `/24` network block — the unit of observation in Verfploeter.
///
/// Identified by the upper 24 bits of its network address, so blocks form a
/// dense `0..2^24` index space; the topology generator exploits this to store
/// per-block attribute tables as flat vectors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Block24(pub u32);

impl Block24 {
    /// The block containing `addr`.
    pub const fn containing(addr: Ipv4Addr) -> Self {
        addr.block()
    }

    /// The network address (`x.y.z.0`).
    pub const fn network(self) -> Ipv4Addr {
        Ipv4Addr(self.0 << 8)
    }

    /// An address inside this block at the given final octet.
    pub const fn addr(self, host: u8) -> Ipv4Addr {
        Ipv4Addr((self.0 << 8) | host as u32)
    }

    /// The block as a `/24` [`Prefix`].
    pub const fn prefix(self) -> Prefix {
        Prefix {
            addr: Ipv4Addr(self.0 << 8),
            len: 24,
        }
    }

    /// True if `addr` falls inside this block.
    pub const fn contains(self, addr: Ipv4Addr) -> bool {
        addr.0 >> 8 == self.0
    }
}

impl fmt::Display for Block24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/24", self.network())
    }
}

impl fmt::Debug for Block24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// An IPv4 CIDR prefix with canonical (zeroed) host bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: Ipv4Addr,
    len: u8,
}

impl Prefix {
    /// Builds a prefix, zeroing any host bits in `addr`.
    ///
    /// Returns an error for lengths above 32.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, NetError> {
        if len > 32 {
            return Err(NetError::PrefixLen(len));
        }
        Ok(Prefix {
            addr: Ipv4Addr(addr.0 & Self::mask(len)),
            len,
        })
    }

    /// The network mask for a prefix length, as a host-order word.
    pub const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The canonical network address.
    pub const fn addr(self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length in bits.
    pub const fn len(self) -> u8 {
        self.len
    }

    /// True only for the zero-length default route.
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// True if `ip` falls inside this prefix.
    pub const fn contains(self, ip: Ipv4Addr) -> bool {
        ip.0 & Self::mask(self.len) == self.addr.0
    }

    /// True if `other` is fully contained in (or equal to) this prefix.
    pub const fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// Number of `/24` blocks this prefix spans (1 for /24 and longer).
    pub const fn block_count(self) -> u32 {
        if self.len >= 24 {
            1
        } else {
            1 << (24 - self.len)
        }
    }

    /// Iterates the `/24` blocks covered by this prefix, in address order.
    ///
    /// Prefixes longer than `/24` yield their (single) containing block.
    pub fn blocks(self) -> impl Iterator<Item = Block24> {
        let first = self.addr.0 >> 8;
        (first..first + self.block_count()).map(Block24)
    }

    /// Splits the prefix into its two halves, or `None` for a `/32`.
    pub fn halves(self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let lo = Prefix {
            addr: self.addr,
            len,
        };
        let hi = Prefix {
            addr: Ipv4Addr(self.addr.0 | (1 << (32 - len))),
            len,
        };
        Some((lo, hi))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Prefix {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| NetError::PrefixParse(s.to_owned()))?;
        let addr: Ipv4Addr = addr.parse()?;
        let len: u8 = len
            .parse()
            .map_err(|_| NetError::PrefixParse(s.to_owned()))?;
        Prefix::new(addr, len)
    }
}

impl From<Block24> for Prefix {
    fn from(b: Block24) -> Self {
        b.prefix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_roundtrip_display_parse() {
        let a = Ipv4Addr::new(192, 0, 2, 17);
        assert_eq!(a.to_string(), "192.0.2.17");
        assert_eq!("192.0.2.17".parse::<Ipv4Addr>().unwrap(), a);
    }

    #[test]
    fn addr_parse_rejects_garbage() {
        assert!("300.0.0.1".parse::<Ipv4Addr>().is_err());
        assert!("1.2.3".parse::<Ipv4Addr>().is_err());
        assert!("1.2.3.4.5".parse::<Ipv4Addr>().is_err());
        assert!("a.b.c.d".parse::<Ipv4Addr>().is_err());
        assert!("".parse::<Ipv4Addr>().is_err());
    }

    #[test]
    fn addr_octets_match_value() {
        let a = Ipv4Addr::new(10, 20, 30, 40);
        assert_eq!(a.octets(), [10, 20, 30, 40]);
        assert_eq!(a.0, 0x0a14_1e28);
    }

    #[test]
    fn block_of_addr() {
        let a = Ipv4Addr::new(198, 51, 100, 77);
        let b = a.block();
        assert_eq!(b.network(), Ipv4Addr::new(198, 51, 100, 0));
        assert!(b.contains(a));
        assert!(!b.contains(Ipv4Addr::new(198, 51, 101, 77)));
        assert_eq!(a.host_in_block(), 77);
    }

    #[test]
    fn block_addr_and_display() {
        let b = Block24(0xc0_0002); // 192.0.2.0/24
        assert_eq!(b.addr(1), Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(b.to_string(), "192.0.2.0/24");
    }

    #[test]
    fn prefix_canonicalizes_host_bits() {
        let p = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16).unwrap();
        assert_eq!(p.addr(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn prefix_rejects_bad_len() {
        assert!(Prefix::new(Ipv4Addr(0), 33).is_err());
    }

    #[test]
    fn prefix_contains() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(p.contains(Ipv4Addr::new(10, 255, 1, 1)));
        assert!(!p.contains(Ipv4Addr::new(11, 0, 0, 0)));
        let all: Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(all.contains(Ipv4Addr(u32::MAX)));
        assert!(all.is_default());
    }

    #[test]
    fn prefix_covers() {
        let p8: Prefix = "10.0.0.0/8".parse().unwrap();
        let p16: Prefix = "10.5.0.0/16".parse().unwrap();
        assert!(p8.covers(p16));
        assert!(!p16.covers(p8));
        assert!(p8.covers(p8));
        let other: Prefix = "11.0.0.0/16".parse().unwrap();
        assert!(!p8.covers(other));
    }

    #[test]
    fn prefix_block_count_and_iter() {
        let p: Prefix = "10.0.0.0/22".parse().unwrap();
        assert_eq!(p.block_count(), 4);
        let blocks: Vec<_> = p.blocks().collect();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0].network(), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(blocks[3].network(), Ipv4Addr::new(10, 0, 3, 0));

        let p24: Prefix = "10.0.0.0/24".parse().unwrap();
        assert_eq!(p24.block_count(), 1);
        let p32: Prefix = "10.0.0.5/32".parse().unwrap();
        assert_eq!(p32.block_count(), 1);
    }

    #[test]
    fn prefix_halves() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let (lo, hi) = p.halves().unwrap();
        assert_eq!(lo.to_string(), "10.0.0.0/9");
        assert_eq!(hi.to_string(), "10.128.0.0/9");
        let p32: Prefix = "10.0.0.1/32".parse().unwrap();
        assert!(p32.halves().is_none());
    }

    #[test]
    fn prefix_parse_errors() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    fn mask_values() {
        assert_eq!(Prefix::mask(0), 0);
        assert_eq!(Prefix::mask(8), 0xff00_0000);
        assert_eq!(Prefix::mask(24), 0xffff_ff00);
        assert_eq!(Prefix::mask(32), u32::MAX);
    }
}
