//! Token-bucket pacing for the prober.
//!
//! The paper probes "relatively slowly (about 6k queries per second)" (§3.1)
//! — respectively 10k/s in the Tangled measurements (§4.2) — to avoid rate
//! limits and abuse complaints. [`TokenBucket`] enforces such a rate against
//! the simulated clock and also drives the fault-injection rate limiters in
//! `vp-sim`.

use crate::time::{SimDuration, SimTime};

/// A classic token bucket driven by [`SimTime`].
///
/// Tokens accrue continuously at `rate_per_sec` up to `capacity`; each
/// admitted event consumes one token. Fractional token state is kept exactly
/// (in nanoseconds of accrual) so long simulations do not drift.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    capacity: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Creates a bucket that admits `rate_per_sec` events per second with
    /// burst capacity `capacity`, initially full.
    ///
    /// # Panics
    /// Panics if `rate_per_sec` is not finite and positive or if `capacity`
    /// is not at least 1.
    pub fn new(rate_per_sec: f64, capacity: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "rate must be positive, got {rate_per_sec}"
        );
        assert!(capacity >= 1.0, "capacity must be >= 1, got {capacity}");
        TokenBucket {
            rate_per_sec,
            capacity,
            tokens: capacity,
            last: SimTime::ZERO,
        }
    }

    /// The configured rate.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.since(self.last).as_secs_f64();
        self.last = SimTime(self.last.0.max(now.0));
        self.tokens = (self.tokens + elapsed * self.rate_per_sec).min(self.capacity);
    }

    /// Tries to admit one event at `now`. Returns `true` and consumes a
    /// token if available.
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// The earliest instant at or after `now` when one token will be
    /// available. Returns `now` itself if a token is available already.
    ///
    /// Does not consume a token; callers typically schedule a wakeup at the
    /// returned time and then call [`try_acquire`](Self::try_acquire).
    pub fn next_available(&mut self, now: SimTime) -> SimTime {
        self.refill(now);
        if self.tokens >= 1.0 {
            now
        } else {
            let deficit = 1.0 - self.tokens;
            let wait = SimDuration::from_secs_f64(deficit / self.rate_per_sec);
            // Guard against zero-length waits from float truncation, which
            // would make an event loop spin without advancing time.
            now + SimDuration(wait.0.max(1))
        }
    }

    /// Tokens currently available (diagnostic).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_admits_burst() {
        let mut b = TokenBucket::new(10.0, 5.0);
        let t = SimTime::ZERO;
        for _ in 0..5 {
            assert!(b.try_acquire(t));
        }
        assert!(!b.try_acquire(t));
    }

    #[test]
    fn refills_at_rate() {
        let mut b = TokenBucket::new(10.0, 1.0);
        let mut t = SimTime::ZERO;
        assert!(b.try_acquire(t));
        assert!(!b.try_acquire(t));
        // One token every 100ms.
        t += SimDuration::from_millis(100);
        assert!(b.try_acquire(t));
        assert!(!b.try_acquire(t));
    }

    #[test]
    fn capacity_caps_accrual() {
        let mut b = TokenBucket::new(100.0, 3.0);
        let t = SimTime::ZERO + SimDuration::from_secs(1000);
        assert_eq!(b.available(t), 3.0);
        for _ in 0..3 {
            assert!(b.try_acquire(t));
        }
        assert!(!b.try_acquire(t));
    }

    #[test]
    fn next_available_schedules_wakeup() {
        let mut b = TokenBucket::new(1000.0, 1.0);
        let t = SimTime::ZERO;
        assert!(b.try_acquire(t));
        let next = b.next_available(t);
        assert!(next > t);
        // ~1ms at 1000/s.
        assert_eq!(next.since(t).as_millis(), 1);
        assert!(b.try_acquire(next));
    }

    #[test]
    fn next_available_is_now_when_token_free() {
        let mut b = TokenBucket::new(5.0, 2.0);
        let t = SimTime::ZERO + SimDuration::from_secs(3);
        assert_eq!(b.next_available(t), t);
    }

    #[test]
    fn long_run_rate_is_exact() {
        // Admit as fast as allowed for 10 simulated seconds at 6000/s and
        // check we admitted 6000/s worth (the paper's B-Root probing rate).
        let rate = 6000.0;
        let mut b = TokenBucket::new(rate, 1.0);
        let end = SimTime::ZERO + SimDuration::from_secs(10);
        let mut t = SimTime::ZERO;
        let mut admitted = 0u64;
        while t < end {
            if b.try_acquire(t) {
                admitted += 1;
            }
            t = b.next_available(t).max(t + SimDuration(1));
        }
        let expected = (rate * 10.0) as u64;
        let diff = admitted.abs_diff(expected);
        assert!(diff <= 2, "admitted {admitted}, expected ~{expected}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        TokenBucket::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn tiny_capacity_rejected() {
        TokenBucket::new(1.0, 0.5);
    }

    #[test]
    fn time_moving_backwards_is_ignored() {
        let mut b = TokenBucket::new(10.0, 1.0);
        let t1 = SimTime::ZERO + SimDuration::from_secs(1);
        assert!(b.try_acquire(t1));
        // An earlier timestamp must not mint tokens or underflow.
        let t0 = SimTime::ZERO;
        assert!(!b.try_acquire(t0));
        let t2 = t1 + SimDuration::from_millis(100);
        assert!(b.try_acquire(t2));
    }
}
