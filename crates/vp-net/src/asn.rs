//! Autonomous System numbers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An Autonomous System number.
///
/// The generated topologies use small dense ASNs (`0..n`), which lets other
/// crates index per-AS tables with `Asn::index()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// The ASN as a vector index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(Asn(226).to_string(), "AS226");
        assert_eq!(Asn(7).index(), 7);
        assert_eq!(Asn::from(3u32), Asn(3));
    }
}
