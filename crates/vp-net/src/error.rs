//! Error type for primitive parsing and construction.

use std::fmt;

/// Errors from parsing or constructing network primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The string is not a dotted-quad IPv4 address.
    AddrParse(String),
    /// The string is not a CIDR prefix.
    PrefixParse(String),
    /// Prefix length out of the 0..=32 range.
    PrefixLen(u8),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::AddrParse(s) => write!(f, "invalid IPv4 address: {s:?}"),
            NetError::PrefixParse(s) => write!(f, "invalid CIDR prefix: {s:?}"),
            NetError::PrefixLen(l) => write!(f, "prefix length {l} out of range 0..=32"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(NetError::AddrParse("x".into()).to_string().contains("x"));
        assert!(NetError::PrefixLen(40).to_string().contains("40"));
    }
}
