//! Checked numeric conversions.
//!
//! The workspace policy (enforced by `vp-lint` rule H1) is that hot-path
//! crates never narrow with a bare `as` cast: a truncating cast silently
//! changes a value, and a silently changed value is exactly the kind of bug
//! that breaks the bit-identical determinism contract without failing a
//! test. Every narrowing conversion instead goes through one of the helpers
//! below, each of which states its loss behaviour in its name.
//!
//! * [`index`] — `u32` → `usize`, proven lossless at compile time. The `/24`
//!   universe and every per-round counter fit in `u32`, and all supported
//!   targets have at least 32-bit pointers.
//! * [`sat_u8`] / [`sat_u16`] / [`sat_u32`] / [`sat_usize`] — saturating
//!   unsigned narrowing. Callers use these where the value is known to be in
//!   range (a `% 254`, a masked low half, a collection length) and
//!   saturation is therefore the identity; if the invariant ever breaks the
//!   result clamps instead of wrapping, which keeps downstream indexing and
//!   accounting monotone.
//! * [`sat_f64_to_u32`] — float → integer. Rust's `as` already saturates
//!   for float-to-int since 1.45; the helper exists so the intent is named
//!   at the call site.

// Compile-time proof that `index` is lossless: no supported target has a
// pointer width below 32 bits.
const _: () = assert!(usize::BITS >= 32);

/// `u32` → `usize`, lossless on every supported target.
#[inline]
pub const fn index(x: u32) -> usize {
    x as usize
}

/// Saturating conversion to `u8` from any unsigned integer.
#[inline]
pub fn sat_u8<T: TryInto<u8>>(x: T) -> u8 {
    x.try_into().unwrap_or(u8::MAX)
}

/// Saturating conversion to `u16` from any unsigned integer.
#[inline]
pub fn sat_u16<T: TryInto<u16>>(x: T) -> u16 {
    x.try_into().unwrap_or(u16::MAX)
}

/// Saturating conversion to `u32` from any unsigned integer.
#[inline]
pub fn sat_u32<T: TryInto<u32>>(x: T) -> u32 {
    x.try_into().unwrap_or(u32::MAX)
}

/// Saturating conversion to `usize` from any unsigned integer.
#[inline]
pub fn sat_usize<T: TryInto<usize>>(x: T) -> usize {
    x.try_into().unwrap_or(usize::MAX)
}

/// `f64` → `u32` with Rust's saturating float-to-int semantics: NaN maps to
/// 0, negatives clamp to 0, overflow clamps to `u32::MAX`.
#[inline]
pub fn sat_f64_to_u32(x: f64) -> u32 {
    x as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrips() {
        assert_eq!(index(0), 0);
        assert_eq!(index(u32::MAX), u32::MAX as usize);
    }

    #[test]
    fn saturating_narrowing_clamps() {
        assert_eq!(sat_u8(253u64), 253);
        assert_eq!(sat_u8(300u64), u8::MAX);
        assert_eq!(sat_u16(0xffffu64), 0xffff);
        assert_eq!(sat_u16(0x1_0000u64), u16::MAX);
        assert_eq!(sat_u32(7usize), 7);
        assert_eq!(sat_u32(u64::MAX), u32::MAX);
        assert_eq!(sat_usize(9u64), 9);
    }

    #[test]
    fn float_saturates() {
        assert_eq!(sat_f64_to_u32(3.9), 3);
        assert_eq!(sat_f64_to_u32(-1.0), 0);
        assert_eq!(sat_f64_to_u32(f64::NAN), 0);
        assert_eq!(sat_f64_to_u32(1e12), u32::MAX);
    }
}
