//! A fixed-capacity bitset over dense `u32` ids.
//!
//! The columnar scan core keys per-/24 attributes by dense block id
//! (position in the sorted block column). Boolean attributes —
//! responsiveness, "block is mapped" masks — pack 64 blocks per word here
//! instead of one `bool` per `BTreeMap` node, which is what lets the
//! million-block worlds of the scale suite stay resident.
//!
//! Semantics are deliberately tiny: fixed length at construction, set/get,
//! popcount, an ascending-id iterator, and a disjoint-union merge with the
//! same algebra the shard merges rely on (associative, order-insensitive).

/// A fixed-length bitset; ids run `0..len`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An all-zero bitset with capacity for ids `0..len`.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of addressable ids (not the number of set bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set addresses no ids at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `id`.
    ///
    /// # Panics
    /// Panics if `id >= len()`.
    pub fn set(&mut self, id: usize) {
        assert!(id < self.len, "bit {id} out of range (len {})", self.len);
        self.words[id / 64] |= 1u64 << (id % 64); // vp-lint: allow(g1): id < len was asserted, and words is sized to ceil(len/64).
    }

    /// Clears bit `id`.
    ///
    /// # Panics
    /// Panics if `id >= len()`.
    pub fn clear(&mut self, id: usize) {
        assert!(id < self.len, "bit {id} out of range (len {})", self.len);
        self.words[id / 64] &= !(1u64 << (id % 64)); // vp-lint: allow(g1): id < len was asserted, and words is sized to ceil(len/64).
    }

    /// Whether bit `id` is set; ids at or past `len()` read as unset.
    pub fn get(&self, id: usize) -> bool {
        id < self.len && (self.words[id / 64] >> (id % 64)) & 1 == 1 // vp-lint: allow(g1): id < len short-circuits, and words is sized to ceil(len/64).
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates set ids in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Absorbs another bitset's bits (set union). Shard columns cover
    /// disjoint id ranges, so for them this is a disjoint union: the
    /// operation is associative and order-insensitive either way (bitwise
    /// OR), which the shard merge relies on.
    ///
    /// # Panics
    /// Panics if the two sets have different lengths.
    // vp-lint: merge-tested(BitSet::merge, suite=columnar_equivalence)
    pub fn merge(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch in merge");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = BitSet::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.get(0) && !b.get(129));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 4);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 3);
        // Out-of-range reads are false, not panics.
        assert!(!b.get(130));
        assert!(!b.get(usize::MAX));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitSet::new(10).set(10);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = BitSet::new(200);
        for id in [5usize, 0, 199, 64, 63, 128] {
            b.set(id);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 128, 199]);
    }

    #[test]
    fn merge_is_union_and_order_insensitive() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.set(1);
        a.set(70);
        b.set(2);
        b.set(99);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count_ones(), 4);
        assert!(ab.get(1) && ab.get(2) && ab.get(70) && ab.get(99));
    }

    #[test]
    fn empty_bitset() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }
}
