//! Simulated time.
//!
//! The whole reproduction runs against a discrete-event clock, not the wall
//! clock, so measurements are deterministic and a "24 hour" stability study
//! (Fig. 9) completes in seconds. Time is kept in nanoseconds in a `u64`,
//! which spans ~584 years of simulation — comfortably more than a DITL day.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A duration on the simulated clock, in nanoseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    pub const fn from_mins(m: u64) -> Self {
        SimDuration::from_secs(m * 60)
    }
    pub const fn from_hours(h: u64) -> Self {
        SimDuration::from_secs(h * 3600)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// A duration from fractional seconds, saturating at the representable
    /// maximum and flooring negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Scalar multiplication, saturating.
    pub const fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant on the simulated clock (nanoseconds since simulation start).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, zero if `earlier` is in the future.
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The hour-of-day bin for this instant (0..24), used by the load model's
    /// diurnal pattern and the hourly report bins of Fig. 6.
    pub const fn hour_of_day(self) -> u32 {
        ((self.0 / 1_000_000_000 / 3600) % 24) as u32
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5000);
        assert_eq!(SimDuration::from_mins(3).as_secs(), 180);
        assert_eq!(SimDuration::from_hours(2).as_secs(), 7200);
    }

    #[test]
    fn from_secs_f64_edges() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimDuration::from_secs_f64(f64::MAX).0, u64::MAX);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(t.as_secs(), 10);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_secs(10));
        // saturating: earlier.since(later) == 0
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
        assert_eq!(t - SimTime(5_000_000_000), SimDuration::from_secs(5));
    }

    #[test]
    fn hour_of_day_wraps() {
        let t = SimTime::ZERO + SimDuration::from_hours(26);
        assert_eq!(t.hour_of_day(), 2);
        assert_eq!(SimTime::ZERO.hour_of_day(), 0);
        let t2 = SimTime::ZERO + SimDuration::from_hours(23) + SimDuration::from_mins(59);
        assert_eq!(t2.hour_of_day(), 23);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_secs(1).to_string(), "1.000s");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_nanos(7).to_string(), "7ns");
    }
}
