//! Longest-prefix-match trie over IPv4 prefixes.
//!
//! Used as the Route Views / RIPE RIS equivalent: a table from announced BGP
//! prefix to origin AS, queried with longest-prefix match per probed address
//! (§4 of the paper geolocates and origin-maps every scanned IP).
//!
//! The implementation is a plain binary trie over address bits with nodes in
//! a flat arena (`Vec`), child links by index. Simple, cache-friendly enough,
//! and trivially correct to test against a brute-force scan — which the
//! property tests do. An ablation bench compares it against binary search
//! over a sorted prefix list.

use crate::addr::{Ipv4Addr, Prefix};

const NO_CHILD: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    children: [u32; 2],
    /// Value stored when a prefix terminates at this node.
    value: Option<T>,
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            children: [NO_CHILD, NO_CHILD],
            value: None,
        }
    }
}

/// A map from [`Prefix`] to `T` supporting longest-prefix-match lookup.
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        // Pre-size the arena: inserting one prefix touches at most 32
        // fresh nodes, so a small seed capacity absorbs the first inserts
        // without regrowth.
        let mut nodes = Vec::with_capacity(64);
        nodes.push(Node::new());
        PrefixTrie { nodes, len: 0 }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `depth` of `addr`, counting from the most significant bit.
    fn bit(addr: Ipv4Addr, depth: u8) -> usize {
        ((addr.0 >> (31 - depth)) & 1) as usize
    }

    /// Inserts `value` under `prefix`, returning the previous value if the
    /// prefix was already present.
    // vp-lint: allow(g1): arena indexing — child indices are minted by push and nodes never shrink, so every stored index is in bounds.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(prefix.addr(), depth);
            let child = self.nodes[node].children[b];
            node = if child == NO_CHILD {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[node].children[b] = idx;
                idx as usize
            } else {
                child as usize
            };
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup of `prefix`.
    // vp-lint: allow(g1): arena indexing — child indices are minted by push and nodes never shrink, so every stored index is in bounds.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(prefix.addr(), depth);
            let child = self.nodes[node].children[b];
            if child == NO_CHILD {
                return None;
            }
            node = child as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Longest-prefix-match lookup: the most specific stored prefix
    /// containing `ip`, with its value.
    // vp-lint: allow(g1): arena indexing — child indices are minted by push and nodes never shrink, so every stored index is in bounds.
    pub fn longest_match(&self, ip: Ipv4Addr) -> Option<(Prefix, &T)> {
        let mut node = 0usize;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for depth in 0..32u8 {
            let b = Self::bit(ip, depth);
            let child = self.nodes[node].children[b];
            if child == NO_CHILD {
                break;
            }
            node = child as usize;
            if let Some(v) = self.nodes[node].value.as_ref() {
                best = Some((depth + 1, v));
            }
        }
        best.map(|(len, v)| {
            // vp-lint: allow(h2): len is depth + 1 with depth < 32, so always valid.
            let p = Prefix::new(ip, len).expect("len <= 32");
            (p, v)
        })
    }

    /// Iterates all stored `(prefix, value)` pairs in trie (address) order.
    // vp-lint: allow(g1): arena indexing — child indices are minted by push and nodes never shrink, so every stored index is in bounds.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        // Explicit DFS stack: (node index, addr-so-far, depth). Depth is
        // at most 32 and each visited node pushes at most two children,
        // so 64 slots absorb any real trie without regrowth.
        let mut stack = Vec::with_capacity(64);
        stack.push((0u32, 0u32, 0u8));
        std::iter::from_fn(move || {
            while let Some((node, addr, depth)) = stack.pop() {
                let n = &self.nodes[node as usize];
                // Push right then left so left (0 bit) pops first.
                for b in [1usize, 0] {
                    let child = n.children[b];
                    if child != NO_CHILD {
                        let caddr = addr | ((b as u32) << (31 - depth));
                        stack.push((child, caddr, depth + 1));
                    }
                }
                if let Some(v) = n.value.as_ref() {
                    // vp-lint: allow(h2): the DFS never descends past depth 32.
                    let p = Prefix::new(Ipv4Addr(addr), depth).expect("depth <= 32");
                    return Some((p, v));
                }
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t: PrefixTrie<u32> = PrefixTrie::new();
        assert!(t.is_empty());
        assert!(t.longest_match(ip("1.2.3.4")).is_none());
        assert!(t.get(p("0.0.0.0/0")).is_none());
    }

    #[test]
    fn insert_and_exact_get() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/16"), 2), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&1));
        assert_eq!(t.get(p("10.0.0.0/16")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/12")), None);
        // replacing returns the old value and keeps len
        assert_eq!(t.insert(p("10.0.0.0/8"), 9), Some(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&9));
    }

    #[test]
    fn longest_match_prefers_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);

        let (mp, v) = t.longest_match(ip("10.1.2.3")).unwrap();
        assert_eq!((*v, mp.len()), (24, 24));
        let (mp, v) = t.longest_match(ip("10.1.9.1")).unwrap();
        assert_eq!((*v, mp.len()), (16, 16));
        let (mp, v) = t.longest_match(ip("10.200.0.1")).unwrap();
        assert_eq!((*v, mp.len()), (8, 8));
        let (mp, v) = t.longest_match(ip("192.0.2.1")).unwrap();
        assert_eq!((*v, mp.len()), (0, 0));
    }

    #[test]
    fn longest_match_without_default_route() {
        let mut t = PrefixTrie::new();
        t.insert(p("172.16.0.0/12"), 'a');
        assert!(t.longest_match(ip("8.8.8.8")).is_none());
        assert!(t.longest_match(ip("172.16.5.5")).is_some());
        // One bit past the /12 boundary is outside.
        assert!(t.longest_match(ip("172.32.0.0")).is_none());
    }

    #[test]
    fn host_route_is_matchable() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.0.2.7/32"), 7);
        let (mp, v) = t.longest_match(ip("192.0.2.7")).unwrap();
        assert_eq!((mp.len(), *v), (32, 7));
        assert!(t.longest_match(ip("192.0.2.8")).is_none());
    }

    #[test]
    fn iter_yields_all_in_address_order() {
        let mut t = PrefixTrie::new();
        let prefixes = ["10.0.0.0/8", "9.0.0.0/8", "10.1.0.0/16", "0.0.0.0/0"];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        let got: Vec<String> = t.iter().map(|(pf, _)| pf.to_string()).collect();
        assert_eq!(
            got,
            vec!["0.0.0.0/0", "9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16"]
        );
        assert_eq!(t.iter().count(), t.len());
    }
}
