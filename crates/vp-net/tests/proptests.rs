//! Property-based tests for the vp-net primitives.

use proptest::prelude::*;
use vp_net::{Block24, FeistelPermutation, Ipv4Addr, LcgPermutation, Prefix, PrefixTrie, ProbeOrder};

proptest! {
    /// Display/parse roundtrip for addresses.
    #[test]
    fn addr_display_parse_roundtrip(v in any::<u32>()) {
        let a = Ipv4Addr(v);
        let parsed: Ipv4Addr = a.to_string().parse().unwrap();
        prop_assert_eq!(parsed, a);
    }

    /// Display/parse roundtrip for prefixes.
    #[test]
    fn prefix_display_parse_roundtrip(v in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(Ipv4Addr(v), len).unwrap();
        let parsed: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, p);
    }

    /// A prefix contains exactly the addresses sharing its masked bits.
    #[test]
    fn prefix_contains_matches_mask(v in any::<u32>(), len in 0u8..=32, probe in any::<u32>()) {
        let p = Prefix::new(Ipv4Addr(v), len).unwrap();
        let expected = (probe & Prefix::mask(len)) == p.addr().0;
        prop_assert_eq!(p.contains(Ipv4Addr(probe)), expected);
    }

    /// Both halves of a prefix are covered by it, are disjoint, and
    /// together cover every block the parent covers.
    #[test]
    fn prefix_halves_partition(v in any::<u32>(), len in 0u8..=23) {
        let p = Prefix::new(Ipv4Addr(v), len).unwrap();
        let (lo, hi) = p.halves().unwrap();
        prop_assert!(p.covers(lo) && p.covers(hi));
        prop_assert!(!lo.covers(hi) && !hi.covers(lo));
        prop_assert_eq!(lo.block_count() + hi.block_count(), p.block_count());
    }

    /// Every block yielded by `blocks()` is inside the prefix.
    #[test]
    fn prefix_blocks_are_contained(v in any::<u32>(), len in 8u8..=24) {
        let p = Prefix::new(Ipv4Addr(v), len).unwrap();
        let blocks: Vec<Block24> = p.blocks().collect();
        prop_assert_eq!(blocks.len() as u32, p.block_count());
        for b in blocks {
            prop_assert!(p.contains(b.network()));
            prop_assert!(p.covers(b.prefix()));
        }
    }

    /// Trie longest-match equals brute-force most-specific containing prefix.
    #[test]
    fn trie_lpm_matches_bruteforce(
        entries in prop::collection::vec((any::<u32>(), 0u8..=32), 1..40),
        probes in prop::collection::vec(any::<u32>(), 1..20),
    ) {
        let mut trie = PrefixTrie::new();
        let mut list: Vec<(Prefix, usize)> = Vec::new();
        for (i, (v, len)) in entries.iter().enumerate() {
            let p = Prefix::new(Ipv4Addr(*v), *len).unwrap();
            trie.insert(p, i);
            list.retain(|(q, _)| *q != p);
            list.push((p, i));
        }
        for probe in probes {
            let ip = Ipv4Addr(probe);
            let brute = list
                .iter()
                .filter(|(p, _)| p.contains(ip))
                .max_by_key(|(p, _)| p.len())
                .map(|(p, i)| (p.len(), *i));
            let got = trie.longest_match(ip).map(|(p, i)| (p.len(), *i));
            prop_assert_eq!(got, brute);
        }
    }

    /// The trie stores exactly the distinct inserted prefixes.
    #[test]
    fn trie_iter_matches_inserts(
        entries in prop::collection::vec((any::<u32>(), 0u8..=28), 0..50),
    ) {
        let mut trie = PrefixTrie::new();
        let mut expected = std::collections::HashSet::new();
        for (v, len) in entries {
            let p = Prefix::new(Ipv4Addr(v), len).unwrap();
            trie.insert(p, ());
            expected.insert(p);
        }
        let got: std::collections::HashSet<Prefix> = trie.iter().map(|(p, _)| p).collect();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(trie.len(), trie.iter().count());
    }

    /// Feistel permutations are bijections on arbitrary domains.
    #[test]
    fn feistel_bijection(n in 1u64..5000, seed in any::<u64>()) {
        let p = FeistelPermutation::new(n, seed);
        let mut seen = vec![false; n as usize];
        for i in 0..n {
            let x = p.permute(i);
            prop_assert!(x < n);
            prop_assert!(!seen[x as usize], "duplicate output {}", x);
            seen[x as usize] = true;
        }
    }

    /// LCG permutations are bijections on arbitrary domains.
    #[test]
    fn lcg_bijection(n in 1u64..5000, seed in any::<u64>()) {
        let p = LcgPermutation::new(n, seed);
        let mut seen = vec![false; n as usize];
        for i in 0..n {
            let x = p.permute(i);
            prop_assert!(x < n);
            prop_assert!(!seen[x as usize], "duplicate output {}", x);
            seen[x as usize] = true;
        }
    }
}
