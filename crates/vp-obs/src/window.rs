//! Rolling fixed-width windows over round-indexed samples.
//!
//! The streaming monitor (vp-monitor's `DriftTracker`, the `vp-daemon`
//! loop) needs "the last W rounds of signal X" without retaining the full
//! history: flip rate, share skew, and coverage each keep one
//! [`RollingWindow`], so monitor memory stays O(window), not O(rounds).
//!
//! A window is a map from round number to sample value, truncated to the
//! `width` highest rounds. Because truncation only ever discards the
//! *lowest* keys, [`RollingWindow::merge`] obeys the workspace merge
//! algebra (`SimStats`, `Registry`, `DriftSummary`): it is associative and
//! commutative with the empty window (of equal width) as identity — a key
//! dropped by an intermediate truncation is dominated by `width` higher
//! keys that also appear in the final union, so it could never survive the
//! final truncation either. Samples for the same round fold by max, which
//! is associative, commutative, and idempotent, so overlapping segments
//! (the windowed-split fold) merge cleanly.

use std::collections::BTreeMap;

/// A bounded window of `(round, value)` samples keeping the `width`
/// newest rounds. See the module docs for the merge-algebra contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollingWindow {
    width: usize,
    entries: BTreeMap<u64, u64>,
}

impl RollingWindow {
    /// An empty window retaining at most `width` rounds (`width` is
    /// clamped to at least 1).
    pub fn new(width: usize) -> RollingWindow {
        RollingWindow {
            width: width.max(1),
            entries: BTreeMap::new(),
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records the sample for `round`. A repeated round folds by max (the
    /// same rule merge uses). Rounds older than the `width` newest are
    /// discarded.
    pub fn push(&mut self, round: u64, value: u64) {
        let slot = self.entries.entry(round).or_insert(0);
        *slot = (*slot).max(value);
        self.truncate();
    }

    /// Folds `other` in: union by round, same-round samples fold by max,
    /// then the result is truncated to the `width` newest rounds.
    /// Associative and commutative with the empty same-width window as
    /// identity. Merging windows of different widths is a programming
    /// error and panics, like merging histograms with different bounds.
    pub fn merge(&mut self, other: &RollingWindow) {
        assert_eq!(
            self.width, other.width,
            "merging rolling windows with different widths"
        );
        for (&round, &value) in &other.entries {
            let slot = self.entries.entry(round).or_insert(0);
            *slot = (*slot).max(value);
        }
        self.truncate();
    }

    fn truncate(&mut self) {
        while self.entries.len() > self.width {
            self.entries.pop_first();
        }
    }

    /// `(round, value)` pairs in ascending round order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.entries.iter().map(|(&r, &v)| (r, v))
    }

    /// The newest retained sample.
    pub fn last(&self) -> Option<(u64, u64)> {
        self.entries.last_key_value().map(|(&r, &v)| (r, v))
    }

    /// Smallest retained value (0 when empty).
    pub fn min_value(&self) -> u64 {
        self.entries.values().copied().min().unwrap_or(0)
    }

    /// Largest retained value (0 when empty).
    pub fn max_value(&self) -> u64 {
        self.entries.values().copied().max().unwrap_or(0)
    }

    /// Sum of retained values.
    pub fn sum(&self) -> u64 {
        self.entries.values().fold(0u64, |a, &v| a.saturating_add(v))
    }

    /// Integer mean of retained values (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.entries.is_empty() {
            0
        } else {
            self.sum() / self.entries.len() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_newest_width_rounds() {
        let mut w = RollingWindow::new(3);
        for r in 1..=5u64 {
            w.push(r, r * 10);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![(3, 30), (4, 40), (5, 50)]);
        assert_eq!(w.last(), Some((5, 50)));
        assert_eq!(w.min_value(), 30);
        assert_eq!(w.max_value(), 50);
        assert_eq!(w.sum(), 120);
        assert_eq!(w.mean(), 40);
    }

    /// The satellite edge case: behavior exactly at window-size rounds.
    /// Filling the window to its width evicts nothing; the very next round
    /// evicts exactly the oldest.
    #[test]
    fn boundary_at_exactly_window_size_rounds() {
        let mut w = RollingWindow::new(4);
        for r in 1..=4u64 {
            w.push(r, 100 + r);
        }
        // Exactly full: all four rounds retained, nothing evicted.
        assert_eq!(w.len(), w.width());
        assert_eq!(w.iter().next(), Some((1, 101)));
        assert_eq!(w.min_value(), 101);
        // One past the boundary: round 1 (and only round 1) leaves.
        w.push(5, 105);
        assert_eq!(w.len(), w.width());
        assert_eq!(w.iter().next(), Some((2, 102)));
        assert_eq!(w.last(), Some((5, 105)));
        assert_eq!(w.min_value(), 102);
    }

    #[test]
    fn empty_window_aggregates_are_zero() {
        let w = RollingWindow::new(8);
        assert!(w.is_empty());
        assert_eq!(w.last(), None);
        assert_eq!((w.min_value(), w.max_value(), w.sum(), w.mean()), (0, 0, 0, 0));
    }

    #[test]
    fn same_round_folds_by_max() {
        let mut w = RollingWindow::new(4);
        w.push(7, 5);
        w.push(7, 3);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![(7, 5)]);
        w.push(7, 9);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![(7, 9)]);
    }

    #[test]
    fn width_zero_is_clamped_to_one() {
        let mut w = RollingWindow::new(0);
        assert_eq!(w.width(), 1);
        w.push(1, 10);
        w.push(2, 20);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![(2, 20)]);
    }

    #[test]
    fn merge_unions_and_truncates() {
        let mut a = RollingWindow::new(3);
        let mut b = RollingWindow::new(3);
        for r in 1..=3u64 {
            a.push(r, r);
        }
        for r in 3..=5u64 {
            b.push(r, r * 100);
        }
        a.merge(&b);
        // Union {1..5} truncated to the newest 3; round 3 folded by max.
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![(3, 300), (4, 400), (5, 500)]
        );
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_rejects_mismatched_widths() {
        let mut a = RollingWindow::new(2);
        a.merge(&RollingWindow::new(3));
    }
}
