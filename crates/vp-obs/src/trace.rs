//! Structured tracing over an injected clock.
//!
//! Nothing in this module reads wall time. Time enters only through the
//! [`Clock`] trait: library code uses [`SimClock`] (a shared sim-time cell
//! the engine advances as it dispatches events), while wall-clock impls are
//! confined by lint rule d4 to binaries and `vp-bench`. That split is what
//! keeps traces — and the reports built from them — bit-identical across
//! runs and shard counts.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::rc::Rc;

use crate::metrics::json_string;

/// A monotone nanosecond clock. Implementations decide *which* nanoseconds:
/// simulated ([`SimClock`]) or wall time (binaries only — rule d4).
pub trait Clock {
    fn now_nanos(&self) -> u64;
}

/// A shared simulated-time cell. The owner (the sim engine's event loop)
/// advances it with [`SimClock::set`]; clones observe the same instant.
#[derive(Debug, Clone, Default)]
pub struct SimClock(Rc<Cell<u64>>);

impl SimClock {
    pub fn new() -> SimClock {
        SimClock::default()
    }

    pub fn set(&self, nanos: u64) {
        self.0.set(nanos);
    }
}

impl Clock for SimClock {
    fn now_nanos(&self) -> u64 {
        self.0.get()
    }
}

/// How much a tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing; spans and events are no-ops.
    Off,
    /// Record span aggregates only.
    Summary,
    /// Record span aggregates plus a bounded ring buffer of events.
    Full,
}

impl TraceLevel {
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "summary" => Some(TraceLevel::Summary),
            "full" => Some(TraceLevel::Full),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Summary => "summary",
            TraceLevel::Full => "full",
        }
    }
}

/// A point-in-time observation kept in the ring buffer at `Full` level.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    pub at_nanos: u64,
    pub name: String,
    pub detail: String,
}

/// Aggregate over all closed spans sharing a name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    pub count: u64,
    pub total_nanos: u64,
    pub max_nanos: u64,
}

impl SpanAgg {
    fn record(&mut self, dur: u64) {
        self.count += 1;
        self.total_nanos = self.total_nanos.saturating_add(dur);
        self.max_nanos = self.max_nanos.max(dur);
    }

    fn fold(&mut self, other: &SpanAgg) {
        self.count += other.count;
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

struct TracerInner {
    clock: Box<dyn Clock>,
    level: TraceLevel,
    capacity: usize,
    events: VecDeque<Event>,
    dropped_events: u64,
    spans: BTreeMap<String, SpanAgg>,
}

/// A cloneable tracing handle. All clones share one ring buffer and span
/// table; the handle is single-threaded by design (each shard engine owns
/// its own tracer, and summaries — not tracers — cross threads).
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<RefCell<TracerInner>>,
}

impl Tracer {
    pub fn new(clock: Box<dyn Clock>, level: TraceLevel, capacity: usize) -> Tracer {
        Tracer {
            // vp-lint: allow(c1): per-engine Rc state; obs is drained to Send types before any result crosses the shard boundary (DESIGN.md §14).
            inner: Rc::new(RefCell::new(TracerInner {
                clock,
                level,
                capacity: capacity.max(1),
                events: VecDeque::new(),
                dropped_events: 0,
                spans: BTreeMap::new(),
            })),
        }
    }

    /// A tracer that records nothing (identity for every operation).
    pub fn disabled() -> Tracer {
        Tracer::new(Box::new(SimClock::new()), TraceLevel::Off, 1)
    }

    pub fn level(&self) -> TraceLevel {
        self.inner.borrow().level
    }

    /// True when event recording is on; callers use this to skip building
    /// detail strings that would be thrown away.
    pub fn is_full(&self) -> bool {
        self.level() == TraceLevel::Full
    }

    /// Records an event at the clock's current instant (`Full` only).
    /// The ring buffer evicts the oldest event once full.
    pub fn event(&self, name: &str, detail: String) {
        let mut inner = self.inner.borrow_mut();
        if inner.level != TraceLevel::Full {
            return;
        }
        let at_nanos = inner.clock.now_nanos();
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.dropped_events += 1;
        }
        inner.events.push_back(Event {
            at_nanos,
            name: name.to_owned(),
            detail,
        });
    }

    /// Opens a span closed by the guard's `Drop` (or explicitly via
    /// [`Span::end`]); duration feeds the per-name aggregate.
    pub fn span(&self, name: &str) -> Span {
        let inner = self.inner.borrow();
        if inner.level == TraceLevel::Off {
            return Span {
                tracer: None,
                name: String::new(),
                start: 0,
            };
        }
        let start = inner.clock.now_nanos();
        drop(inner);
        Span {
            tracer: Some(self.clone()),
            name: name.to_owned(),
            start,
        }
    }

    /// Records an already-measured span directly — used where start/end
    /// are known sim-times rather than clock reads (e.g. the engine's
    /// whole-run span from first to last dispatched event).
    pub fn record_span(&self, name: &str, start_nanos: u64, end_nanos: u64) {
        let mut inner = self.inner.borrow_mut();
        if inner.level == TraceLevel::Off {
            return;
        }
        let dur = end_nanos.saturating_sub(start_nanos);
        inner.spans.entry(name.to_owned()).or_default().record(dur);
    }

    /// Snapshots and clears the recorded state.
    pub fn drain(&self) -> TraceSummary {
        let mut inner = self.inner.borrow_mut();
        TraceSummary {
            spans: std::mem::take(&mut inner.spans),
            events: std::mem::take(&mut inner.events).into(),
            dropped_events: std::mem::replace(&mut inner.dropped_events, 0),
        }
    }

    pub fn summary(&self) -> TraceSummary {
        let inner = self.inner.borrow();
        TraceSummary {
            spans: inner.spans.clone(),
            events: inner.events.iter().cloned().collect(),
            dropped_events: inner.dropped_events,
        }
    }
}

/// RAII span guard; duration is recorded when it drops.
pub struct Span {
    tracer: Option<Tracer>,
    name: String,
    start: u64,
}

impl Span {
    /// Closes the span now. Equivalent to dropping the guard; either way
    /// the interval is recorded exactly once — the `Drop` that runs after
    /// an explicit `end` finds the tracer handle already taken and does
    /// nothing.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        let Some(tracer) = self.tracer.take() else {
            return;
        };
        let mut inner = tracer.inner.borrow_mut();
        if inner.level == TraceLevel::Off {
            return;
        }
        let end = inner.clock.now_nanos();
        let dur = end.saturating_sub(self.start);
        inner
            .spans
            .entry(std::mem::take(&mut self.name))
            .or_default()
            .record(dur);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

/// A detached, mergeable snapshot of a tracer's state — this is what
/// crosses shard-thread boundaries and lands in run reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    pub spans: BTreeMap<String, SpanAgg>,
    pub events: Vec<Event>,
    pub dropped_events: u64,
}

impl TraceSummary {
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.events.is_empty() && self.dropped_events == 0
    }

    /// Folds `other` in: span aggregates sum field-wise (max for max),
    /// events take the sorted multiset union. Sorting makes the result
    /// independent of merge order, so the contract is the same as
    /// `Registry::merge`: associative, commutative, empty identity.
    pub fn merge(&mut self, other: &TraceSummary) {
        for (name, agg) in &other.spans {
            self.spans.entry(name.clone()).or_default().fold(agg);
        }
        self.events.extend(other.events.iter().cloned());
        self.events.sort();
        self.dropped_events += other.dropped_events;
    }

    /// Canonical JSON: `{"spans":{...},"events":[...],"dropped_events":n}`
    /// with spans in name order and events in (time, name, detail) order.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::from("{\"spans\":{");
        for (i, (name, agg)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"total_nanos\":{},\"max_nanos\":{}}}",
                json_string(name),
                agg.count,
                agg.total_nanos,
                agg.max_nanos
            );
        }
        out.push_str("},\"events\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at_nanos\":{},\"name\":{},\"detail\":{}}}",
                ev.at_nanos,
                json_string(&ev.name),
                json_string(&ev.detail)
            );
        }
        let _ = write!(out, "],\"dropped_events\":{}}}", self.dropped_events);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_is_shared() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.set(42);
        assert_eq!(c2.now_nanos(), 42);
    }

    #[test]
    fn spans_aggregate_count_total_max() {
        let clock = SimClock::new();
        let t = Tracer::new(Box::new(clock.clone()), TraceLevel::Summary, 8);
        clock.set(100);
        let s = t.span("work");
        clock.set(150);
        s.end();
        clock.set(200);
        let s = t.span("work");
        clock.set(230);
        drop(s);
        let sum = t.summary();
        let agg = sum.spans.get("work").copied().unwrap_or_default();
        assert_eq!(agg.count, 2);
        assert_eq!(agg.total_nanos, 80);
        assert_eq!(agg.max_nanos, 50);
    }

    /// The RAII guard records exactly once whether it is ended explicitly
    /// or dropped, and nested guards record in drop order (inner first),
    /// each at its own clock reading.
    #[test]
    fn span_guard_records_once_in_drop_order() {
        let clock = SimClock::new();
        let t = Tracer::new(Box::new(clock.clone()), TraceLevel::Summary, 8);
        clock.set(10);
        let outer = t.span("outer");
        clock.set(20);
        {
            let _inner = t.span("inner");
            clock.set(35);
            // `_inner` drops here, at t=35.
        }
        clock.set(50);
        outer.end();
        // An explicit end must not be followed by a second record from the
        // guard's Drop: each span has exactly one interval.
        let sum = t.summary();
        let outer_agg = sum.spans.get("outer").copied().unwrap_or_default();
        let inner_agg = sum.spans.get("inner").copied().unwrap_or_default();
        assert_eq!(outer_agg.count, 1, "outer recorded more than once");
        assert_eq!(outer_agg.total_nanos, 40);
        assert_eq!(inner_agg.count, 1, "inner recorded more than once");
        assert_eq!(inner_agg.total_nanos, 15);
    }

    #[test]
    fn off_level_records_nothing() {
        let t = Tracer::new(Box::new(SimClock::new()), TraceLevel::Off, 8);
        t.event("e", String::new());
        t.span("s").end();
        t.record_span("r", 0, 10);
        assert!(t.summary().is_empty());
        assert!(!t.is_full());
    }

    #[test]
    fn summary_level_skips_events() {
        let t = Tracer::new(Box::new(SimClock::new()), TraceLevel::Summary, 8);
        t.event("e", String::new());
        assert!(t.summary().events.is_empty());
    }

    #[test]
    fn ring_buffer_bounds_events() {
        let clock = SimClock::new();
        let t = Tracer::new(Box::new(clock.clone()), TraceLevel::Full, 2);
        for i in 0..5u64 {
            clock.set(i);
            t.event("e", format!("{i}"));
        }
        let sum = t.summary();
        assert_eq!(sum.events.len(), 2);
        assert_eq!(sum.dropped_events, 3);
        assert_eq!(sum.events[0].detail, "3");
        assert_eq!(sum.events[1].detail, "4");
    }

    #[test]
    fn drain_resets_state() {
        let t = Tracer::new(Box::new(SimClock::new()), TraceLevel::Full, 8);
        t.event("e", String::new());
        t.record_span("s", 0, 5);
        let first = t.drain();
        assert!(!first.is_empty());
        assert!(t.summary().is_empty());
    }

    #[test]
    fn summary_merge_sorts_events() {
        let mut a = TraceSummary {
            events: vec![Event {
                at_nanos: 10,
                name: "b".into(),
                detail: String::new(),
            }],
            ..TraceSummary::default()
        };
        let b = TraceSummary {
            events: vec![Event {
                at_nanos: 5,
                name: "a".into(),
                detail: String::new(),
            }],
            ..TraceSummary::default()
        };
        a.merge(&b);
        assert_eq!(a.events[0].at_nanos, 5);
        let json = a.to_canonical_json();
        assert!(json.starts_with("{\"spans\":{}"), "{json}");
    }
}
