//! # vp-obs — deterministic observability
//!
//! Metrics, tracing, and phase profiling for the Verfploeter reproduction,
//! built on two rules that keep the pipeline's determinism contract intact
//! (DESIGN.md §9):
//!
//! 1. **Merge algebra.** [`Registry::merge`], [`Histogram::merge`], and
//!    [`TraceSummary::merge`] are associative and commutative with empty
//!    identities — the same contract as `SimStats`/`CatchmentMap` — so the
//!    K per-shard registries of `run_scan_sharded(K)` fold to a result
//!    byte-identical to the serial scan's, for every K.
//! 2. **Injected clocks.** Time reaches a [`Tracer`] only through the
//!    [`Clock`] trait. Library code injects [`SimClock`] (simulated time);
//!    wall-clock impls are restricted by lint rule d4 to binaries and
//!    `vp-bench`, where they can only affect stdout and bench artifacts,
//!    never results.
//!
//! The crate is dependency-free and bottom-of-graph: exposition is
//! hand-rolled canonical JSON ([`Registry::to_canonical_json`]) and
//! Prometheus text ([`Registry::to_prometheus_text`]).

#![deny(unused_must_use)]

pub mod flight;
pub mod metrics;
pub mod trace;
pub mod window;

pub use flight::{FlightDoc, FlightGuard, FlightRecorder, FlightSpan, FlightTimeline, WallChannel};
pub use metrics::{Counter, Gauge, Histogram, Metric, MetricKey, Registry};
pub use trace::{Clock, Event, SimClock, Span, SpanAgg, TraceLevel, TraceSummary, Tracer};
pub use window::RollingWindow;
