//! Merge-algebra metrics: counters, gauges, and fixed-bucket histograms
//! keyed by `(name, labels)` over `BTreeMap`s, so iteration — and therefore
//! every exposition format — is canonically ordered.
//!
//! The registry obeys the same merge-algebra contract as `SimStats` and
//! `CatchmentMap` in the scan pipeline: [`Registry::merge`] is associative
//! and commutative with the empty registry as identity. That is what lets
//! `run_scan_sharded(K)` fold K per-shard registries into a result that is
//! byte-identical to the serial scan's registry for every K, provided the
//! recorded values themselves are shard-count-invariant (pure sums over
//! per-packet or per-index contributions — see DESIGN.md §9).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A metric identity: name plus a sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    pub name: String,
    pub labels: BTreeMap<String, String>,
}

impl MetricKey {
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey {
            name: name.to_owned(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        }
    }
}

/// A monotone event count. Merge = sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

/// A signed level. Merge = sum, so gauges recorded per shard must be
/// per-shard *contributions* (deltas), not absolute readings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge(pub i64);

/// A fixed-bucket histogram over `u64` samples.
///
/// `bounds` are inclusive upper bounds per bucket; one implicit overflow
/// bucket catches everything above the last bound. Two histograms merge by
/// element-wise bucket addition, which is only meaningful when their bounds
/// agree — merging mismatched bounds is a programming error and panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` entries; the last is the overflow bucket.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    pub fn new(bounds: Vec<u64>) -> Histogram {
        // vp-lint: allow(g1): windows(2) yields exactly-two-element slices.
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds not sorted");
        let buckets = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            buckets,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Log-spaced bounds: `start, start*factor_num/factor_den, ...` —
    /// integer arithmetic so bucket layout is identical on every platform.
    pub fn exponential(start: u64, factor_num: u64, factor_den: u64, count: usize) -> Histogram {
        debug_assert!(start > 0 && factor_num > factor_den && factor_den > 0);
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b = (b.saturating_mul(factor_num) / factor_den).max(b + 1);
        }
        Histogram::new(bounds)
    }

    pub fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx] += 1; // vp-lint: allow(g1): partition_point returns at most bounds.len() and buckets is sized bounds.len() + 1.
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Upper-bound estimate of the q-quantile: the bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, clamped to
    /// the observed `[min, max]` range. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                let bound = self.bounds.get(i).copied().unwrap_or(self.max);
                return bound.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Linearly interpolated q-quantile estimate.
    ///
    /// Locates the continuous 0-based rank `q * (count - 1)` in the
    /// cumulative bucket distribution and interpolates between the
    /// holding bucket's lower and upper bounds, clamped to the observed
    /// `[min, max]`. Unlike [`Histogram::quantile`] — an upper-bound rank
    /// pick, where a small sample count pins every upper quantile to the
    /// maximum — this estimator separates p90 from max even at single-digit
    /// sample counts (the `vp-bench` regression trajectory relies on that).
    /// Returns 0 for an empty histogram.
    pub fn quantile_interpolated(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The extreme quantiles are observed values, not estimates.
        if q == 0.0 {
            return self.min();
        }
        if q == 1.0 {
            return self.max;
        }
        let target = q * (self.count - 1) as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let first_rank = cum as f64;
            cum += n;
            let last_rank = (cum - 1) as f64;
            if target <= last_rank {
                // Samples in bucket i are assumed evenly spread across the
                // bucket's value range; clamp to what was actually seen.
                let lower = if i == 0 {
                    self.min()
                } else {
                    self.bounds[i - 1].clamp(self.min(), self.max)
                };
                let upper = self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or(self.max)
                    .clamp(lower, self.max);
                let frac = if n > 1 {
                    (target - first_rank) / (n - 1) as f64
                } else {
                    0.5
                };
                let est = lower as f64 + frac * (upper - lower) as f64;
                return (est.round() as u64).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Element-wise bucket sum. Panics on mismatched bounds; an empty
    /// histogram with the same bounds is the identity.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different bucket bounds"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One recorded metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The metric store: a canonically ordered map from [`MetricKey`] to
/// [`Metric`]. Recording under an existing key with a different metric
/// kind is a programming error and panics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    metrics: BTreeMap<MetricKey, Metric>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &Metric)> {
        self.metrics.iter()
    }

    // vp-lint: allow(g1): a name registered as two metric kinds is a programmer error at a static call site; kind-mismatch panics are the registry's documented contract.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], n: u64) {
        let key = MetricKey::new(name, labels);
        match self
            .metrics
            .entry(key)
            .or_insert(Metric::Counter(Counter(0)))
        {
            Metric::Counter(c) => c.0 += n,
            other => panic!("{name}: counter_add on a {}", other.kind()),
        }
    }

    // vp-lint: allow(g1): a name registered as two metric kinds is a programmer error at a static call site; kind-mismatch panics are the registry's documented contract.
    pub fn gauge_add(&mut self, name: &str, labels: &[(&str, &str)], delta: i64) {
        let key = MetricKey::new(name, labels);
        match self.metrics.entry(key).or_insert(Metric::Gauge(Gauge(0))) {
            Metric::Gauge(g) => g.0 += delta,
            other => panic!("{name}: gauge_add on a {}", other.kind()),
        }
    }

    /// Observes `value` into the named histogram, creating it with
    /// `bounds` on first use. Later calls must pass the same bounds.
    // vp-lint: allow(g1): a name registered as two metric kinds is a programmer error at a static call site; kind-mismatch panics are the registry's documented contract.
    pub fn histogram_observe(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
        value: u64,
    ) {
        let key = MetricKey::new(name, labels);
        match self
            .metrics
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds.to_vec())))
        {
            Metric::Histogram(h) => {
                debug_assert_eq!(h.bounds(), bounds, "{name}: bucket bounds changed");
                h.observe(value);
            }
            other => panic!("{name}: histogram_observe on a {}", other.kind()),
        }
    }

    /// Inserts a pre-built histogram (used by vp-bench to publish
    /// standalone measurements). Panics if the key already exists.
    pub fn insert_histogram(&mut self, name: &str, labels: &[(&str, &str)], hist: Histogram) {
        let key = MetricKey::new(name, labels);
        let prev = self.metrics.insert(key, Metric::Histogram(hist));
        assert!(prev.is_none(), "{name}: histogram already registered");
    }

    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(Metric::Counter(c)) => c.0,
            _ => 0,
        }
    }

    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> i64 {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(Metric::Gauge(g)) => g.0,
            _ => 0,
        }
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Folds `other` into `self`: counters and gauges sum, histograms add
    /// element-wise, keys present on one side only are copied. Associative
    /// and commutative, with the empty registry as identity — the same
    /// contract as `SimStats::merge`, so per-shard registries fold in any
    /// grouping to the same result.
    // vp-lint: allow(g1): kind-mismatch panics are the registry's documented contract, same as the typed accessors.
    pub fn merge(&mut self, other: &Registry) {
        for (key, metric) in &other.metrics {
            match self.metrics.get_mut(key) {
                None => {
                    self.metrics.insert(key.clone(), metric.clone());
                }
                Some(mine) => match (mine, metric) {
                    (Metric::Counter(a), Metric::Counter(b)) => a.0 += b.0,
                    (Metric::Gauge(a), Metric::Gauge(b)) => a.0 += b.0,
                    (Metric::Histogram(a), Metric::Histogram(b)) => a.merge(b),
                    (mine, theirs) => panic!(
                        "{}: merging a {} into a {}",
                        key.name,
                        theirs.kind(),
                        mine.kind()
                    ),
                },
            }
        }
    }

    /// Canonical JSON exposition: one object per metric, sorted by
    /// `(name, labels)`. Byte-identical across platforms and shard counts
    /// for equal registries, so tests compare registries by this string.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, (key, metric)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":{}", json_string(&key.name));
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in key.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(k), json_string(v));
            }
            let _ = write!(out, "}},\"type\":\"{}\"", metric.kind());
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, ",\"value\":{}", c.0);
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, ",\"value\":{}", g.0);
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        ",\"bounds\":{},\"buckets\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{}",
                        u64_array(&h.bounds),
                        u64_array(&h.buckets),
                        h.count,
                        h.sum,
                        h.min(),
                        h.max
                    );
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Prometheus text exposition (v0.0.4): `.`/`-` in names become `_`,
    /// histograms expand to cumulative `_bucket{le=...}` plus `_sum` and
    /// `_count` series. Ordering follows the registry's canonical order.
    pub fn to_prometheus_text(&self) -> String {
        self.to_prometheus_text_with_help(&BTreeMap::new())
    }

    /// [`Registry::to_prometheus_text`] with an optional per-metric help
    /// map, keyed by the *recorded* metric name (pre-sanitization, e.g.
    /// `"scan.probes"`). Metrics with an entry get a `# HELP` line before
    /// their `# TYPE`; backslashes and newlines in the help text are
    /// escaped per the exposition format.
    pub fn to_prometheus_text_with_help(&self, help: &BTreeMap<String, String>) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        for (key, metric) in &self.metrics {
            let name = prom_name(&key.name);
            if name != last_name {
                if let Some(text) = help.get(&key.name) {
                    let _ = writeln!(out, "# HELP {name} {}", prom_help_escape(text));
                }
                let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
                last_name = name.clone();
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {}", prom_labels(&key.labels, None), c.0);
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name}{} {}", prom_labels(&key.labels, None), g.0);
                }
                Metric::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, n) in h.buckets.iter().enumerate() {
                        cum += n;
                        let le = match h.bounds.get(i) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_owned(),
                        };
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            prom_labels(&key.labels, Some(&le))
                        );
                    }
                    let _ = writeln!(out, "{name}_sum{} {}", prom_labels(&key.labels, None), h.sum);
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        prom_labels(&key.labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }
}

fn u64_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// `# HELP` value escaping per the text exposition format: only `\` and
/// newline are special.
fn prom_help_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Sanitizes a recorded metric (or label) name into the Prometheus
/// identifier charset: non-alphanumerics become `_`, and a leading digit
/// gets a `_` prefix — `[a-zA-Z_:][a-zA-Z0-9_:]*` is the format's grammar,
/// so `4xx.count` must expose as `_4xx_count`, not an invalid `4xx_count`.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn prom_labels(labels: &BTreeMap<String, String>, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}={}", prom_name(k), json_string(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// JSON string literal with the escapes canonical serializers emit.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut r = Registry::new();
        r.counter_add("scan.probes", &[], 3);
        r.counter_add("scan.probes", &[], 4);
        r.gauge_add("queue.depth", &[("site", "LAX")], 5);
        r.gauge_add("queue.depth", &[("site", "LAX")], -2);
        assert_eq!(r.counter_value("scan.probes", &[]), 7);
        assert_eq!(r.gauge_value("queue.depth", &[("site", "LAX")]), 3);
        assert_eq!(r.counter_value("missing", &[]), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut r = Registry::new();
        r.counter_add("c", &[("a", "1"), ("b", "2")], 1);
        r.counter_add("c", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.counter_value("c", &[("a", "1"), ("b", "2")]), 2);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        for v in [1, 5, 10, 11, 99, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.buckets(), &[3, 3, 0, 1]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1 + 5 + 10 + 11 + 99 + 100 + 5000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 5000);
        // Median rank 4 lands in the second bucket → bound 100.
        assert_eq!(h.quantile(0.5), 100);
        // p100 lands in the overflow bucket → observed max.
        assert_eq!(h.quantile(1.0), 5000);
        assert_eq!(Histogram::new(vec![1]).quantile(0.5), 0);
    }

    #[test]
    fn values_on_bucket_edges_land_in_the_bounded_bucket() {
        // An upper bound is inclusive: a sample exactly on a bucket edge
        // belongs to that bucket, never the next one up.
        let mut h = Histogram::new(vec![10, 100, 1000]);
        h.observe(10);
        h.observe(100);
        h.observe(1000);
        assert_eq!(h.buckets(), &[1, 1, 1, 0]);
        // One past each edge spills into the following bucket.
        h.observe(11);
        h.observe(101);
        h.observe(1001);
        assert_eq!(h.buckets(), &[1, 2, 2, 1]);
    }

    #[test]
    fn values_above_the_top_bucket_overflow() {
        let mut h = Histogram::new(vec![10]);
        h.observe(u64::MAX);
        h.observe(11);
        assert_eq!(h.buckets(), &[0, 2]);
        assert_eq!(h.max(), u64::MAX);
        // The overflow bucket has no upper bound, so quantiles report the
        // observed max rather than inventing one.
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile_interpolated(1.0), u64::MAX);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new(vec![10, 100]);
        for q in [0.0, 0.5, 0.9, 1.0] {
            assert_eq!(h.quantile(q), 0);
            assert_eq!(h.quantile_interpolated(q), 0);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn interpolated_quantiles_do_not_pin_to_max() {
        // Nine samples spread over one wide bucket: the rank-pick p90 is
        // forced to a bucket bound (clamped to max), while interpolation
        // places it inside the observed range, strictly below max.
        let mut h = Histogram::new(vec![1_000_000]);
        for v in [100, 200, 300, 400, 500, 600, 700, 800, 900] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.9), h.max(), "rank-pick pins p90 to max");
        let p90 = h.quantile_interpolated(0.9);
        assert!(p90 < h.max(), "interpolated p90 {p90} still pinned to max");
        assert!(p90 > h.quantile_interpolated(0.5), "p90 not above median");
        // A single sample is every quantile.
        let mut one = Histogram::new(vec![1_000_000]);
        one.observe(42);
        assert_eq!(one.quantile_interpolated(0.0), 42);
        assert_eq!(one.quantile_interpolated(0.5), 42);
        assert_eq!(one.quantile_interpolated(1.0), 42);
    }

    #[test]
    fn exponential_bounds_strictly_increase() {
        let h = Histogram::exponential(1_000, 3, 2, 32);
        assert_eq!(h.bounds().len(), 32);
        assert!(h.bounds().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(h.bounds()[0], 1_000);
        assert_eq!(h.bounds()[1], 1_500);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.counter_add("c", &[], 1);
        b.counter_add("c", &[], 2);
        b.counter_add("only_b", &[], 9);
        a.histogram_observe("h", &[], &[10, 100], 5);
        b.histogram_observe("h", &[], &[10, 100], 50);
        a.merge(&b);
        assert_eq!(a.counter_value("c", &[]), 3);
        assert_eq!(a.counter_value("only_b", &[]), 9);
        let h = a.histogram("h", &[]).map(Histogram::buckets);
        assert_eq!(h, Some(&[1, 1, 0][..]));
    }

    #[test]
    fn canonical_json_is_sorted_and_escaped() {
        let mut r = Registry::new();
        r.counter_add("z.last", &[], 1);
        r.counter_add("a.first", &[("site", "says \"hi\"")], 2);
        let json = r.to_canonical_json();
        let a = json.find("a.first").unwrap_or(usize::MAX);
        let z = json.find("z.last").unwrap_or(0);
        assert!(a < z, "not sorted: {json}");
        assert!(json.contains("says \\\"hi\\\""), "not escaped: {json}");
    }

    #[test]
    fn prometheus_label_values_escape_quotes_and_backslashes() {
        let mut r = Registry::new();
        r.counter_add("c", &[("path", "C:\\scan\\run")], 1);
        r.counter_add("c", &[("path", "says \"hi\"")], 2);
        let text = r.to_prometheus_text();
        // Prometheus text format escapes backslash and double-quote inside
        // label values exactly like JSON string literals do.
        assert!(
            text.contains("c{path=\"C:\\\\scan\\\\run\"} 1"),
            "backslash not escaped: {text}"
        );
        assert!(
            text.contains("c{path=\"says \\\"hi\\\"\"} 2"),
            "quote not escaped: {text}"
        );
    }

    #[test]
    fn prometheus_label_values_escape_newlines() {
        let mut r = Registry::new();
        r.gauge_add("g", &[("note", "a\nb")], 3);
        let text = r.to_prometheus_text();
        assert!(
            text.contains("g{note=\"a\\nb\"} 3"),
            "newline not escaped: {text}"
        );
        // Escaping must not leave a raw newline splitting the sample line.
        let sample_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("g{")).collect();
        assert_eq!(sample_lines.len(), 1, "{text}");
    }

    #[test]
    fn prometheus_text_shape() {
        let mut r = Registry::new();
        r.counter_add("scan.probes", &[("site", "LAX")], 7);
        r.histogram_observe("rtt.ns", &[], &[10, 100], 5);
        r.histogram_observe("rtt.ns", &[], &[10, 100], 500);
        let text = r.to_prometheus_text();
        assert!(text.contains("# TYPE scan_probes counter"), "{text}");
        assert!(text.contains("scan_probes{site=\"LAX\"} 7"), "{text}");
        assert!(text.contains("rtt_ns_bucket{le=\"10\"} 1"), "{text}");
        assert!(text.contains("rtt_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("rtt_ns_count 2"), "{text}");
    }

    #[test]
    fn prometheus_type_lines_cover_every_metric_kind() {
        let mut r = Registry::new();
        r.counter_add("scan.probes", &[], 1);
        r.gauge_add("queue.depth", &[], 2);
        r.histogram_observe("rtt.ns", &[], &[10], 5);
        let text = r.to_prometheus_text();
        assert!(text.contains("# TYPE scan_probes counter"), "{text}");
        assert!(text.contains("# TYPE queue_depth gauge"), "{text}");
        // Histogram TYPE announces the base name; the series carry the
        // _bucket/_sum/_count suffixes.
        assert!(text.contains("# TYPE rtt_ns histogram"), "{text}");
        assert!(!text.contains("# TYPE rtt_ns_bucket"), "{text}");
        // Exactly one TYPE line per metric name.
        assert_eq!(text.matches("# TYPE").count(), 3, "{text}");
    }

    #[test]
    fn prometheus_type_appears_once_per_name_run_across_label_sets() {
        let mut r = Registry::new();
        r.counter_add("scan.probes", &[("site", "LAX")], 7);
        r.counter_add("scan.probes", &[("site", "MIA")], 3);
        let text = r.to_prometheus_text();
        assert_eq!(text.matches("# TYPE scan_probes counter").count(), 1, "{text}");
        let type_idx = text.find("# TYPE scan_probes").unwrap_or(usize::MAX);
        let first_sample = text.find("scan_probes{").unwrap_or(0);
        assert!(type_idx < first_sample, "TYPE must precede samples: {text}");
    }

    #[test]
    fn prometheus_names_never_start_with_a_digit() {
        let mut r = Registry::new();
        r.counter_add("4xx.count", &[("2nd", "x")], 1);
        let text = r.to_prometheus_text();
        // Metric and label names alike get the `_` prefix; label values
        // are free-form and untouched.
        assert!(text.contains("# TYPE _4xx_count counter"), "{text}");
        assert!(text.contains("_4xx_count{_2nd=\"x\"} 1"), "{text}");
        assert!(!text.contains("\n4xx"), "{text}");
    }

    #[test]
    fn prometheus_help_lines_precede_type_once_per_name() {
        let mut r = Registry::new();
        r.counter_add("scan.probes", &[("site", "LAX")], 7);
        r.counter_add("scan.probes", &[("site", "MIA")], 3);
        r.gauge_add("queue.depth", &[], 2);
        let mut help = BTreeMap::new();
        help.insert(
            "scan.probes".to_owned(),
            "Probes sent per site.".to_owned(),
        );
        let text = r.to_prometheus_text_with_help(&help);
        // One HELP line per metric name (not per label set), directly
        // before its TYPE line; unhelped metrics keep just the TYPE line.
        let lines: Vec<&str> = text.lines().collect();
        let help_idx = lines
            .iter()
            .position(|l| *l == "# HELP scan_probes Probes sent per site.")
            .unwrap_or_else(|| panic!("missing HELP line: {text}"));
        assert_eq!(lines.get(help_idx + 1), Some(&"# TYPE scan_probes counter"));
        assert_eq!(
            text.matches("# HELP").count(),
            1,
            "HELP must appear once per name run: {text}"
        );
        assert!(text.contains("# TYPE queue_depth gauge"), "{text}");
    }

    #[test]
    fn prometheus_help_escapes_backslashes_and_newlines() {
        let mut r = Registry::new();
        r.counter_add("c", &[], 1);
        let mut help = BTreeMap::new();
        help.insert("c".to_owned(), "path C:\\scan\nsecond line".to_owned());
        let text = r.to_prometheus_text_with_help(&help);
        assert!(
            text.contains("# HELP c path C:\\\\scan\\nsecond line"),
            "help not escaped: {text}"
        );
        // The escaped help must stay a single physical line.
        let help_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# HELP")).collect();
        assert_eq!(help_lines.len(), 1, "{text}");
    }

    #[test]
    fn prometheus_without_help_matches_empty_help_map() {
        let mut r = Registry::new();
        r.counter_add("c", &[], 1);
        r.histogram_observe("h", &[], &[10], 5);
        assert_eq!(
            r.to_prometheus_text(),
            r.to_prometheus_text_with_help(&BTreeMap::new())
        );
        assert!(!r.to_prometheus_text().contains("# HELP"));
    }
}
