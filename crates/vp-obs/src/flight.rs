//! The flight recorder: a bounded ring of span *intervals* for phase and
//! shard attribution (DESIGN.md §15).
//!
//! Where [`crate::trace`] keeps per-name aggregates ([`crate::SpanAgg`]),
//! the flight recorder keeps the individual intervals — `(name, phase,
//! shard, start_ns, end_ns)` — so a profile can answer *where the time
//! went*: self vs total time per phase, per-shard imbalance, barrier
//! wait. Like the tracer, it reads time only through the injected
//! [`Clock`] trait, and it records on **two channels with different
//! contracts**:
//!
//! * The **sim channel** is built from shard-invariant sim-time marks and
//!   is inside the §7 bit-equivalence contract: serial and sharded scans
//!   produce byte-identical timelines (asserted by the
//!   `sharded_equivalence` suite via [`FlightTimeline::to_canonical_json`]).
//! * The **wall channel** is optional host timing a *binary* may attach
//!   through a [`WallChannel`] (lint rule d4 keeps wall-backed clocks out
//!   of library code). It is explicitly OUTSIDE the determinism contract:
//!   two runs, or two shard counts, legitimately differ.
//!
//! A [`FlightTimeline`] is the detached, mergeable snapshot ([`merge`]
//! obeys the usual algebra: associative, commutative, empty identity,
//! canonical shard-id order), and [`FlightDoc`] renders the canonical
//! `vp-obs-flight/v1` JSON document plus a chrome://tracing
//! `trace_event` export loadable in Perfetto.
//!
//! [`merge`]: FlightTimeline::merge

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::Arc;

use crate::metrics::json_string;
use crate::trace::Clock;

/// One recorded interval. `shard: None` marks orchestrator-level work
/// (or sim-channel round marks, which are shard-invariant by design);
/// `Some(k)` attributes the interval to shard `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightSpan {
    pub name: String,
    /// Coarse pipeline stage (`"probe"`, `"sim"`, `"clean"`, `"map"`,
    /// `"exec"`, …); the profile report groups by it.
    pub phase: String,
    pub shard: Option<u32>,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// Sort key component: orchestrator spans (`shard: None`) first, then
/// shards in ascending id order.
fn shard_rank(shard: Option<u32>) -> u64 {
    match shard {
        None => 0,
        Some(k) => u64::from(k) + 1,
    }
}

impl FlightSpan {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Canonical ordering: shard rank, then start ascending, then *wider
    /// first* on equal starts (so containment nesting is a stack walk),
    /// then name/phase as deterministic tie-breaks.
    fn key(&self) -> (u64, u64, u64, &str, &str) {
        (
            shard_rank(self.shard),
            self.start_ns,
            u64::MAX - self.end_ns,
            &self.name,
            &self.phase,
        )
    }

    fn to_json(&self) -> String {
        let shard = match self.shard {
            Some(k) => k.to_string(),
            None => "null".to_owned(),
        };
        format!(
            "{{\"name\":{},\"phase\":{},\"shard\":{shard},\"start_ns\":{},\"end_ns\":{}}}",
            json_string(&self.name),
            json_string(&self.phase),
            self.start_ns,
            self.end_ns
        )
    }
}

struct RecorderInner {
    clock: Box<dyn Clock>,
    capacity: usize,
    spans: VecDeque<FlightSpan>,
    dropped: u64,
}

/// A cloneable flight-recorder handle over a bounded interval ring.
///
/// Same threading discipline as [`crate::Tracer`]: handles are
/// single-threaded (`Rc`-based) by design — each shard worker owns its
/// own recorder and drains to a detached (Send) [`FlightTimeline`]
/// before anything crosses the shard boundary (DESIGN.md §14).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Rc<RefCell<RecorderInner>>,
}

impl FlightRecorder {
    pub fn new(clock: Box<dyn Clock>, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            // vp-lint: allow(c1): per-engine Rc state; flight data is drained to Send timelines before any result crosses the shard boundary (DESIGN.md §14).
            inner: Rc::new(RefCell::new(RecorderInner {
                clock,
                capacity: capacity.max(1),
                spans: VecDeque::new(),
                dropped: 0,
            })),
        }
    }

    fn push(&self, span: FlightSpan) {
        let mut inner = self.inner.borrow_mut();
        if inner.spans.len() == inner.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(span);
    }

    /// Records an already-measured interval directly — used where start
    /// and end are known marks rather than clock reads. Lint rule o1
    /// requires `name` and the other recorder/tracer name arguments to be
    /// string literals (bounded cardinality).
    pub fn record_interval(
        &self,
        name: &str,
        phase: &str,
        shard: Option<u32>,
        start_ns: u64,
        end_ns: u64,
    ) {
        self.push(FlightSpan {
            name: name.to_owned(),
            phase: phase.to_owned(),
            shard,
            start_ns,
            end_ns,
        });
    }

    /// Opens a clock-stamped interval closed by the guard's `Drop` (or
    /// explicitly via [`FlightGuard::end`]); either way the interval is
    /// recorded exactly once.
    pub fn span(&self, name: &str, phase: &str, shard: Option<u32>) -> FlightGuard {
        let start_ns = self.inner.borrow().clock.now_nanos();
        FlightGuard {
            recorder: Some(self.clone()),
            name: name.to_owned(),
            phase: phase.to_owned(),
            shard,
            start_ns,
        }
    }

    /// Recorded intervals currently in the ring.
    pub fn len(&self) -> usize {
        self.inner.borrow().spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.borrow().spans.is_empty()
    }

    /// Intervals evicted because the ring was full (oldest-first).
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Snapshots the ring as a canonical [`FlightTimeline`] and clears the
    /// recorder — a second drain with no recording in between yields the
    /// empty timeline.
    pub fn drain(&self) -> FlightTimeline {
        let mut inner = self.inner.borrow_mut();
        let spans: Vec<FlightSpan> = std::mem::take(&mut inner.spans).into();
        let dropped = std::mem::replace(&mut inner.dropped, 0);
        FlightTimeline::from_spans(spans, dropped)
    }
}

/// RAII interval guard returned by [`FlightRecorder::span`].
pub struct FlightGuard {
    recorder: Option<FlightRecorder>,
    name: String,
    phase: String,
    shard: Option<u32>,
    start_ns: u64,
}

impl FlightGuard {
    /// Closes the interval now (equivalent to dropping the guard).
    pub fn end(mut self) {
        self.finish();
    }

    /// Records the interval once; the implicit `Drop` after an explicit
    /// `end` is a no-op because the recorder handle is already taken.
    fn finish(&mut self) {
        let Some(rec) = self.recorder.take() else {
            return;
        };
        let end_ns = rec.inner.borrow().clock.now_nanos();
        rec.push(FlightSpan {
            name: std::mem::take(&mut self.name),
            phase: std::mem::take(&mut self.phase),
            shard: self.shard,
            start_ns: self.start_ns,
            end_ns,
        });
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

/// A detached, mergeable snapshot of recorded intervals — this is what
/// crosses shard-thread boundaries and lands in `vp-obs-flight/v1`
/// documents. Spans are kept in canonical order (shard rank, start,
/// wider-first, name, phase), so equal timelines have equal bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightTimeline {
    pub spans: Vec<FlightSpan>,
    /// Intervals lost to ring overflow before the snapshot.
    pub dropped: u64,
}

impl FlightTimeline {
    /// Builds a timeline from raw spans, imposing the canonical order.
    pub fn from_spans(mut spans: Vec<FlightSpan>, dropped: u64) -> FlightTimeline {
        spans.sort_by(|a, b| a.key().cmp(&b.key()));
        FlightTimeline { spans, dropped }
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.dropped == 0
    }

    /// Folds `other` in: the span multiset union re-sorted into canonical
    /// order (so per-shard timelines merge back into shard-id order
    /// regardless of fold order), dropped counts summed. Associative,
    /// commutative, empty identity — the same contract as
    /// `Registry::merge`.
    pub fn merge(&mut self, other: &FlightTimeline) {
        self.spans.extend(other.spans.iter().cloned());
        self.spans.sort_by(|a, b| a.key().cmp(&b.key()));
        self.dropped += other.dropped;
    }

    /// Canonical JSON: `{"spans":[...],"dropped":n}` in canonical span
    /// order. Byte-identical for equal timelines; the sharded-equivalence
    /// suite compares sim-channel timelines by this string.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::from("{\"spans\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&span.to_json());
        }
        let _ = write!(out, "],\"dropped\":{}}}", self.dropped);
        out
    }
}

/// A thread-shareable wall-clock handle a *binary* attaches to carry the
/// optional wall-time flight channel through a scan. Library code never
/// constructs a wall-backed clock (lint rule d4); it only forwards this
/// handle, so everything the library records on the wall channel is
/// explicitly outside the determinism contract.
#[derive(Clone)]
pub struct WallChannel {
    clock: Arc<dyn Clock + Send + Sync>,
}

impl WallChannel {
    pub fn new(clock: Arc<dyn Clock + Send + Sync>) -> WallChannel {
        WallChannel { clock }
    }

    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }
}

/// Forwarding impl so a `WallChannel` can drive a [`FlightRecorder`] or
/// the executor's shard timing directly. This is not a wall-time *read*
/// — the backing clock was built by a binary; this file never touches
/// `Instant`/`SystemTime` (rule d4).
impl Clock for WallChannel {
    fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }
}

impl std::fmt::Debug for WallChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WallChannel")
    }
}

/// The canonical `vp-obs-flight/v1` document: one sim-time channel (inside
/// the §7 contract) and one wall-time channel (outside it), plus a source
/// label naming the run that produced it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightDoc {
    /// E.g. `"bench_scan/15000"` or an experiment name.
    pub source: String,
    pub sim: FlightTimeline,
    pub wall: FlightTimeline,
}

impl FlightDoc {
    /// Canonical JSON document, schema-tagged `vp-obs-flight/v1` and
    /// validated by `vp_monitor::schema`.
    pub fn to_canonical_json(&self) -> String {
        format!(
            "{{\"schema\":\"vp-obs-flight/v1\",\"source\":{},\"channels\":{{\"sim\":{},\"wall\":{}}}}}",
            json_string(&self.source),
            self.sim.to_canonical_json(),
            self.wall.to_canonical_json()
        )
    }

    /// chrome://tracing `trace_event` JSON (the "X" complete-event form),
    /// loadable in Perfetto. `pid` 1 is the sim channel, `pid` 2 the wall
    /// channel; `tid` 0 is orchestrator work and `tid` k+1 shard k; `ts`
    /// and `dur` are microseconds with the sub-microsecond remainder kept
    /// as three deterministic decimal digits.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for (pid, timeline) in [(1u32, &self.sim), (2u32, &self.wall)] {
            for span in &timeline.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\
                     \"ts\":{},\"dur\":{}}}",
                    json_string(&span.name),
                    json_string(&span.phase),
                    shard_rank(span.shard),
                    micros(span.start_ns),
                    micros(span.duration_ns())
                );
            }
        }
        out.push_str("]}");
        out
    }
}

/// Nanoseconds rendered as a microsecond decimal (`1234.567`) without any
/// float round-trip, so the export is byte-deterministic.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SimClock;

    fn span(name: &str, shard: Option<u32>, start: u64, end: u64) -> FlightSpan {
        FlightSpan {
            name: name.to_owned(),
            phase: "p".to_owned(),
            shard,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let rec = FlightRecorder::new(Box::new(SimClock::new()), 2);
        rec.record_interval("a", "p", None, 0, 1);
        rec.record_interval("b", "p", None, 1, 2);
        rec.record_interval("c", "p", None, 2, 3);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 1);
        let tl = rec.drain();
        assert_eq!(tl.dropped, 1);
        let names: Vec<&str> = tl.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["b", "c"], "oldest interval must be the one dropped");
    }

    #[test]
    fn drain_is_idempotent() {
        let rec = FlightRecorder::new(Box::new(SimClock::new()), 4);
        rec.record_interval("a", "p", Some(0), 0, 5);
        let first = rec.drain();
        assert_eq!(first.spans.len(), 1);
        let second = rec.drain();
        assert!(second.is_empty(), "second drain must be empty: {second:?}");
        assert_eq!(rec.dropped(), 0);
        assert!(rec.is_empty());
    }

    #[test]
    fn guard_records_exactly_once_via_end_or_drop() {
        let clock = SimClock::new();
        let rec = FlightRecorder::new(Box::new(clock.clone()), 8);
        clock.set(10);
        let g = rec.span("ended", "p", Some(3));
        clock.set(25);
        g.end(); // the Drop that follows `end` must not double-record
        clock.set(30);
        {
            let _g = rec.span("dropped", "p", None);
            clock.set(42);
        }
        let tl = rec.drain();
        assert_eq!(tl.spans.len(), 2);
        // Canonical order: shard None first, then shard 3.
        assert_eq!(tl.spans[0].name, "dropped");
        assert_eq!((tl.spans[0].start_ns, tl.spans[0].end_ns), (30, 42));
        assert_eq!(tl.spans[1].name, "ended");
        assert_eq!((tl.spans[1].start_ns, tl.spans[1].end_ns), (10, 25));
        assert_eq!(tl.spans[1].shard, Some(3));
    }

    /// Satisfies lint rule d3 for `FlightTimeline::merge`: the fold is
    /// associative, commutative, has the empty timeline as identity, and
    /// lands per-shard timelines back in shard-id order whatever the fold
    /// order was.
    #[test]
    fn flight_timeline_merge_is_associative_commutative_with_identity() {
        let a = FlightTimeline::from_spans(vec![span("a", Some(2), 5, 9)], 1);
        let b = FlightTimeline::from_spans(vec![span("b", None, 0, 20)], 0);
        let c = FlightTimeline::from_spans(
            vec![span("c", Some(0), 3, 4), span("c2", Some(1), 3, 4)],
            2,
        );

        let fold = |parts: &[&FlightTimeline]| {
            let mut out = FlightTimeline::default();
            for p in parts {
                out.merge(p);
            }
            out
        };
        let abc = fold(&[&a, &b, &c]);
        assert_eq!(abc, fold(&[&c, &b, &a]), "commutativity");
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(abc, a_bc, "associativity");
        let mut with_id = abc.clone();
        with_id.merge(&FlightTimeline::default());
        assert_eq!(abc, with_id, "empty identity");
        assert_eq!(abc.dropped, 3);

        // Shard-id order regardless of merge order.
        let shards: Vec<Option<u32>> = abc.spans.iter().map(|s| s.shard).collect();
        assert_eq!(shards, [None, Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn canonical_json_is_stable_and_escapes() {
        let tl = FlightTimeline::from_spans(vec![span("a\"b", None, 1, 2)], 0);
        assert_eq!(
            tl.to_canonical_json(),
            "{\"spans\":[{\"name\":\"a\\\"b\",\"phase\":\"p\",\"shard\":null,\
             \"start_ns\":1,\"end_ns\":2}],\"dropped\":0}"
        );
        assert!(FlightTimeline::default().is_empty());
    }

    #[test]
    fn flight_doc_renders_both_channels() {
        let doc = FlightDoc {
            source: "test".to_owned(),
            sim: FlightTimeline::from_spans(vec![span("round", None, 0, 10_500)], 0),
            wall: FlightTimeline::from_spans(vec![span("compute", Some(1), 2, 7)], 0),
        };
        let json = doc.to_canonical_json();
        assert!(json.starts_with("{\"schema\":\"vp-obs-flight/v1\",\"source\":\"test\""));
        assert!(json.contains("\"channels\":{\"sim\":{\"spans\":["));
        assert!(json.contains("\"wall\":{\"spans\":["));

        let chrome = doc.to_chrome_trace();
        // Structural spot-checks; the full JSON-parse test lives in
        // vp-monitor (this crate is dependency-free).
        assert!(chrome.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":10.500"));
        assert!(chrome.contains("\"ph\":\"X\",\"pid\":2,\"tid\":2,\"ts\":0.002,\"dur\":0.005"));
        assert!(chrome.ends_with("]}"));
    }

    #[test]
    fn wall_channel_forwards_its_clock() {
        use std::sync::atomic::{AtomicU64, Ordering};
        struct TickClock(AtomicU64);
        impl Clock for TickClock {
            fn now_nanos(&self) -> u64 {
                self.0.fetch_add(1, Ordering::Relaxed)
            }
        }
        let wall = WallChannel::new(Arc::new(TickClock(AtomicU64::new(0))));
        assert_eq!(wall.now_nanos(), 0);
        assert_eq!(format!("{wall:?}"), "WallChannel");
        let rec = FlightRecorder::new(Box::new(wall.clone()), 4);
        rec.span("w", "p", None).end();
        assert_eq!(rec.len(), 1);
        let tl = rec.drain();
        assert_eq!((tl.spans[0].start_ns, tl.spans[0].end_ns), (1, 2));
    }
}
