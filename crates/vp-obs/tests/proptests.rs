//! Merge-algebra proptests for the observability types: every `merge` in
//! vp-obs must be associative and commutative with an empty identity, the
//! contract that makes per-shard registries fold bit-identically for any
//! shard count and any merge grouping.

use proptest::prelude::*;
use vp_obs::{Event, Histogram, Registry, RollingWindow, TraceSummary};

const BOUNDS: &[u64] = &[10, 100, 1_000, 10_000];

/// A small generated registry: counters, gauges, and histograms over a
/// closed set of names/labels so that merges collide on keys.
fn registry_strategy() -> impl Strategy<Value = Registry> {
    let entry = (
        0usize..4,                       // name index
        0usize..3,                       // label index
        0usize..3,                       // kind selector
        0u64..100_000,                   // magnitude
    );
    prop::collection::vec(entry, 0..12).prop_map(|entries| {
        let names = ["scan.probes", "sim.replies", "clean.kept", "rtt.ns"];
        let labels: [&[(&str, &str)]; 3] = [&[], &[("site", "LAX")], &[("site", "MIA")]];
        let mut r = Registry::new();
        for (n, l, kind, v) in entries {
            match kind {
                0 => r.counter_add(names[n], labels[l], v),
                1 => r.gauge_add("gauge.depth", labels[l], v as i64 - 50_000),
                _ => r.histogram_observe("hist.ns", labels[l], BOUNDS, v),
            }
        }
        r
    })
}

fn summary_strategy() -> impl Strategy<Value = TraceSummary> {
    let span = (0usize..3, 1u64..1000, 0u64..1_000_000);
    let event = (0u64..1_000_000, 0usize..3);
    (
        prop::collection::vec(span, 0..5),
        prop::collection::vec(event, 0..5),
        0u64..10,
    )
        .prop_map(|(spans, events, dropped)| {
            let names = ["engine.run", "scan.shard", "clean"];
            let mut s = TraceSummary::default();
            for (n, count, total) in spans {
                let agg = s.spans.entry(names[n].to_owned()).or_default();
                agg.count += count;
                agg.total_nanos += total;
                agg.max_nanos = agg.max_nanos.max(total);
            }
            for (at, n) in events {
                s.events.push(Event {
                    at_nanos: at,
                    name: names[n].to_owned(),
                    detail: String::new(),
                });
            }
            s.events.sort();
            s.dropped_events = dropped;
            s
        })
}

// Merge algebra for the metrics registry and its histogram buckets.
// vp-lint: merge-tested(Registry::merge)
// vp-lint: merge-tested(Histogram::merge)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Commutativity and associativity of `Registry::merge`, compared via
    /// the canonical JSON exposition (the same comparison the sharded-scan
    /// equivalence tests use).
    #[test]
    fn registry_merge_is_associative_and_commutative(
        a in registry_strategy(),
        b in registry_strategy(),
        c in registry_strategy(),
    ) {
        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.to_canonical_json(), ba.to_canonical_json());

        // (a + b) + c == a + (b + c)
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c.to_canonical_json(), a_bc.to_canonical_json());
    }

    /// The empty registry is a two-sided identity.
    #[test]
    fn registry_merge_empty_identity(a in registry_strategy()) {
        let mut left = Registry::new();
        left.merge(&a);
        prop_assert_eq!(left.to_canonical_json(), a.to_canonical_json());
        let mut right = a.clone();
        right.merge(&Registry::new());
        prop_assert_eq!(right.to_canonical_json(), a.to_canonical_json());
    }

    /// `Histogram::merge` directly: bucket-wise addition with min/max/sum
    /// folding, independent of order and grouping.
    #[test]
    fn histogram_merge_algebra(
        xs in prop::collection::vec(0u64..50_000, 0..20),
        ys in prop::collection::vec(0u64..50_000, 0..20),
        zs in prop::collection::vec(0u64..50_000, 0..20),
    ) {
        let hist = |vals: &[u64]| {
            let mut h = Histogram::new(BOUNDS.to_vec());
            for &v in vals {
                h.observe(v);
            }
            h
        };
        let (a, b, c) = (hist(&xs), hist(&ys), hist(&zs));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Identity, and merged aggregates equal observing the union.
        let mut id = Histogram::new(BOUNDS.to_vec());
        id.merge(&a);
        prop_assert_eq!(&id, &a);
        let mut union: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        union.sort_unstable();
        prop_assert_eq!(ab_c.count(), union.len() as u64);
        prop_assert_eq!(ab_c.min(), union.first().copied().unwrap_or(0));
        prop_assert_eq!(ab_c.max(), union.last().copied().unwrap_or(0));
    }
}

// Merge algebra for trace summaries (span aggregates + sorted events).
// vp-lint: merge-tested(TraceSummary::merge)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trace_summary_merge_is_associative_and_commutative(
        a in summary_strategy(),
        b in summary_strategy(),
        c in summary_strategy(),
    ) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        let mut id = TraceSummary::default();
        id.merge(&a);
        prop_assert_eq!(&id, &a);
    }

    /// Span aggregates fold count/total by sum and max by max.
    #[test]
    fn span_aggregates_fold_correctly(a in summary_strategy(), b in summary_strategy()) {
        let mut merged = a.clone();
        merged.merge(&b);
        for (name, agg) in &merged.spans {
            let x = a.spans.get(name).copied().unwrap_or_default();
            let y = b.spans.get(name).copied().unwrap_or_default();
            prop_assert_eq!(agg.count, x.count + y.count);
            prop_assert_eq!(agg.total_nanos, x.total_nanos + y.total_nanos);
            prop_assert_eq!(agg.max_nanos, x.max_nanos.max(y.max_nanos));
        }
    }
}

/// A small generated rolling window over a closed round range so merges
/// collide on keys and truncation actually happens.
fn window_strategy(width: usize) -> impl Strategy<Value = RollingWindow> {
    prop::collection::vec((0u64..12, 1u64..1000), 0..10).prop_map(move |samples| {
        let mut w = RollingWindow::new(width);
        for (round, value) in samples {
            w.push(round, value);
        }
        w
    })
}

// Merge algebra for the rolling round windows the streaming monitor uses.
// vp-lint: merge-tested(RollingWindow::merge)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rolling_window_merge_is_associative_and_commutative(
        a in window_strategy(4),
        b in window_strategy(4),
        c in window_strategy(4),
    ) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
    }

    #[test]
    fn rolling_window_merge_empty_identity(a in window_strategy(4)) {
        let mut left = RollingWindow::new(4);
        left.merge(&a);
        prop_assert_eq!(&left, &a);
        let mut right = a.clone();
        right.merge(&RollingWindow::new(4));
        prop_assert_eq!(&right, &a);
    }

    /// Splitting a round stream at any point and merging the two segment
    /// windows equals pushing the whole stream through one window — the
    /// windowed-split fold the streaming monitor relies on.
    #[test]
    fn rolling_window_split_fold_matches_whole(
        samples in prop::collection::vec((0u64..16, 1u64..1000), 0..14),
        cut in 0usize..14,
    ) {
        let mut whole = RollingWindow::new(5);
        for &(round, value) in &samples {
            whole.push(round, value);
        }
        let cut = cut.min(samples.len());
        let mut left = RollingWindow::new(5);
        for &(round, value) in &samples[..cut] {
            left.push(round, value);
        }
        let mut right = RollingWindow::new(5);
        for &(round, value) in &samples[cut..] {
            right.push(round, value);
        }
        left.merge(&right);
        prop_assert_eq!(&left, &whole);
        prop_assert!(whole.len() <= whole.width());
    }
}
