//! Discrete-event network simulator for anycast measurement.
//!
//! This is the "Internet" the measurement tools run against. Applications
//! (the Verfploeter prober, the Atlas baseline, the DNS load generator)
//! inject real byte-level [`vp_packet`] packets at simulated times; the
//! engine delivers them according to the world's unicast reachability and —
//! for destinations inside a registered anycast service prefix — the BGP
//! catchment of the *sender*, exactly the mechanism the paper exploits
//! ("the catchment is identified by the anycast site that receives the
//! reply", §3.1).
//!
//! The engine injects the measurement artifacts the paper's data-cleaning
//! step confronts (§4): duplicate replies ("in some cases up to thousands
//! of times", ~2% of replies), replies from a different address than
//! probed, late replies, unsolicited traffic, packet loss, and blocks that
//! churn between responsive and unresponsive across rounds (the
//! to-NR/from-NR series of Fig. 9).
//!
//! Module map:
//! * [`faults`] — fault-injection configuration (smoltcp-style knobs).
//! * [`latency`] — distance-based propagation delay.
//! * [`oracle`] — catchment oracles: converged ([`StaticOracle`]) or with
//!   per-round flips ([`FlippingOracle`]).
//! * [`engine`] — the event loop, host behaviours and capture logs.
//! * [`exec`] — the blessed OS-thread shard executor; the one module
//!   allowed to spawn threads (DESIGN.md §14).
//! * [`scenario`] — assembled worlds: the two-site B-Root deployment and
//!   the nine-site Tangled testbed of Table 3.

#![deny(unused_must_use)]

pub mod engine;
pub mod exec;
pub mod faults;
pub mod latency;
pub mod oracle;
pub mod scenario;

pub use engine::{
    derive_shard_seed, EngineObs, HostDelivery, NetworkSim, ServiceHandle, SimStats, SiteCapture,
};
pub use exec::ShardExecutor;
pub use faults::FaultConfig;
pub use latency::LatencyModel;
pub use oracle::{CatchmentOracle, FlippingOracle, StaticOracle};
pub use scenario::Scenario;
