//! Propagation-delay model.

use serde::{Deserialize, Serialize};
use vp_geo::distance_km;
use vp_net::SimDuration;

/// Distance-proportional latency with a processing floor and deterministic
/// jitter.
///
/// One-way delay = `base + distance / (0.66 c) + jitter`, the usual
/// fiber-path approximation (~200 km per ms), with jitter up to
/// `jitter_frac` of the distance term keyed by a per-packet hash.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-hop processing/serialization floor.
    pub base: SimDuration,
    /// Propagation speed in km per millisecond.
    pub km_per_ms: f64,
    /// Maximum jitter as a fraction of the propagation term.
    pub jitter_frac: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base: SimDuration::from_millis(2),
            km_per_ms: 200.0,
            jitter_frac: 0.25,
        }
    }
}

impl LatencyModel {
    /// One-way delay between two coordinates; `jitter_key` selects the
    /// deterministic jitter sample.
    pub fn delay(&self, from: (f64, f64), to: (f64, f64), jitter_key: u64) -> SimDuration {
        let d = distance_km(from.0, from.1, to.0, to.1);
        let prop_ms = d / self.km_per_ms;
        let jitter_unit = (hash(jitter_key) >> 11) as f64 / (1u64 << 53) as f64;
        let jitter_ms = prop_ms * self.jitter_frac * jitter_unit;
        self.base + SimDuration::from_secs_f64((prop_ms + jitter_ms) / 1e3)
    }
}

fn hash(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_has_base_delay() {
        let m = LatencyModel::default();
        let d = m.delay((52.0, 5.0), (52.0, 5.0), 1);
        assert_eq!(d, m.base);
    }

    #[test]
    fn transatlantic_delay_is_tens_of_ms() {
        let m = LatencyModel::default();
        // Amsterdam -> Los Angeles, ~8900 km -> ~45ms + jitter + base.
        let d = m.delay((52.3, 4.9), (34.05, -118.25), 7);
        let ms = d.as_millis();
        assert!((40..90).contains(&ms), "delay {ms}ms");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = LatencyModel::default();
        let a = m.delay((0.0, 0.0), (10.0, 10.0), 42);
        let b = m.delay((0.0, 0.0), (10.0, 10.0), 42);
        assert_eq!(a, b);
        let no_jitter = LatencyModel {
            jitter_frac: 0.0,
            ..LatencyModel::default()
        }
        .delay((0.0, 0.0), (10.0, 10.0), 42);
        assert!(a >= no_jitter);
        let max = SimDuration(no_jitter.0 + ((no_jitter.0 - m.base.0) as f64 * 0.25) as u64 + 1);
        assert!(a <= max, "jitter exceeds bound: {a} > {max}");
    }

    #[test]
    fn longer_distance_longer_delay() {
        let m = LatencyModel {
            jitter_frac: 0.0,
            ..LatencyModel::default()
        };
        let near = m.delay((0.0, 0.0), (1.0, 1.0), 0);
        let far = m.delay((0.0, 0.0), (50.0, 50.0), 0);
        assert!(far > near);
    }
}
