//! The blessed OS-thread shard executor.
//!
//! This module is the **only** place in the workspace allowed to spawn OS
//! threads: `vp-lint` rule c5 fires on `thread::spawn`/`thread::scope`
//! anywhere else in library code, and rules c1–c4 police everything
//! reachable from the closures handed to [`ShardExecutor::run_sharded`]
//! (the *parallel region*). See DESIGN.md §14 for the full contract.
//!
//! The executor's shape is the arrival-order-proof one: each shard `k`
//! delivers its result through its **own** channel, and the barrier
//! receives channel 0, 1, 2, … in shard-id order. A caller folding the
//! returned vector therefore merges in shard-id order by construction —
//! there is no shared channel whose message order could leak thread
//! scheduling into the result.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use vp_obs::Clock;

/// Wall-channel marks for one shard's trip through the executor, read
/// from a caller-supplied [`Clock`] (the executor itself never touches a
/// wall clock — lint rule d4). The three derived intervals:
///
/// * queue wait  = `started_ns - queued_ns` (job waited for a worker),
/// * compute     = `finished_ns - started_ns` (the job itself),
/// * barrier wait = `merged_ns - finished_ns` (result waited for the
///   shard-id-ordered barrier to reach it).
///
/// These are observability only: they are outside the §7 determinism
/// contract and never feed back into scan results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTiming {
    pub shard: usize,
    /// When the shard's job became runnable (before worker pickup).
    pub queued_ns: u64,
    /// When a worker started executing the job.
    pub started_ns: u64,
    /// When the job returned its result.
    pub finished_ns: u64,
    /// When the barrier received the result (shard-id order).
    pub merged_ns: u64,
}

/// A bounded pool of OS worker threads that runs one job per shard and
/// returns the results **indexed by shard id**, never by arrival order.
///
/// Worker `w` owns shards `w, w + workers, w + 2·workers, …` (the same
/// deterministic round-robin split at every shard count), so the set of
/// jobs each thread runs is a pure function of `(shards, workers)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardExecutor {
    workers: usize,
}

impl ShardExecutor {
    /// An executor with exactly `workers` OS threads (floored at one).
    /// With one worker, jobs run inline on the calling thread.
    pub fn new(workers: usize) -> ShardExecutor {
        ShardExecutor {
            workers: workers.max(1),
        }
    }

    /// An executor that runs every shard inline on the calling thread.
    /// Used where the caller is itself already a shard worker (nested
    /// parallelism would oversubscribe the host).
    pub fn serial() -> ShardExecutor {
        ShardExecutor { workers: 1 }
    }

    /// An executor bounded by the host's available parallelism and the
    /// shard count: a shard count far above the core count — even one per
    /// hitlist entry — degrades gracefully instead of spawning thousands
    /// of threads.
    pub fn host_parallel(shards: usize) -> ShardExecutor {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        ShardExecutor {
            workers: hw.min(shards).max(1),
        }
    }

    /// The number of OS threads `run_sharded` will use (before the shard
    /// count caps it further).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `job(k)` for every shard `k in 0..shards` and returns the
    /// results in shard-id order.
    ///
    /// Each shard has its own rendezvous channel; the barrier receives
    /// them in ascending shard id, so the output order is independent of
    /// thread scheduling. Worker threads own the senders for their shards:
    /// a panicking worker drops its undelivered senders, the matching
    /// `recv` errors out, and the panic propagates at the barrier instead
    /// of deadlocking it.
    ///
    /// # Panics
    /// Propagates a panic from any shard job.
    pub fn run_sharded<T, F>(&self, shards: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_sharded_timed(shards, job, None).0
    }

    /// [`ShardExecutor::run_sharded`] plus per-shard executor timings read
    /// from `clock`. With `clock: None` the timing vector is empty and the
    /// call behaves exactly like `run_sharded`; with a clock, one
    /// [`ShardTiming`] per shard comes back in shard-id order. The clock
    /// is read outside the result path, so attaching one cannot perturb
    /// the §7 bit-equivalence contract.
    pub fn run_sharded_timed<T, F>(
        &self,
        shards: usize,
        job: F,
        clock: Option<&(dyn Clock + Sync)>,
    ) -> (Vec<T>, Vec<ShardTiming>)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let now = |clock: Option<&(dyn Clock + Sync)>| clock.map_or(0, |c| c.now_nanos());
        let workers = self.workers.min(shards);
        if workers <= 1 {
            let mut results = Vec::with_capacity(shards);
            let mut timings = Vec::new();
            for k in 0..shards {
                // Inline: the job is picked up the moment it is queued and
                // merged the moment it finishes.
                let queued_ns = now(clock);
                let result = job(k);
                let finished_ns = now(clock);
                results.push(result);
                if clock.is_some() {
                    timings.push(ShardTiming {
                        shard: k,
                        queued_ns,
                        started_ns: queued_ns,
                        finished_ns,
                        merged_ns: finished_ns,
                    });
                }
            }
            return (results, timings);
        }

        let mut senders: Vec<SyncSender<(T, u64, u64)>> = Vec::with_capacity(shards);
        let mut receivers: Vec<Receiver<(T, u64, u64)>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            // Buffer of one: a worker finishing a shard never blocks on
            // the barrier having reached that shard yet.
            let (tx, rx) = sync_channel(1);
            senders.push(tx);
            receivers.push(rx);
        }

        // Move each shard's sender into the worker that owns the shard.
        let mut batches: Vec<Vec<(usize, SyncSender<(T, u64, u64)>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (k, tx) in senders.into_iter().enumerate() {
            batches[k % workers].push((k, tx)); // vp-lint: allow(g1): k % workers is always below workers, the length of batches.
        }

        // All jobs are queued before any worker is spawned.
        let queued_ns = now(clock);
        std::thread::scope(|scope| {
            for batch in batches {
                let job = &job;
                scope.spawn(move || {
                    for (k, tx) in batch {
                        let started_ns = now(clock);
                        let result = job(k);
                        let finished_ns = now(clock);
                        // The receiver side outlives the scope; a send can
                        // only fail if the barrier already panicked, in
                        // which case the result is moot.
                        let _ = tx.send((result, started_ns, finished_ns));
                    }
                });
            }
            let mut results = Vec::with_capacity(shards);
            let mut timings = Vec::new();
            for (k, rx) in receivers.iter().enumerate() {
                let (result, started_ns, finished_ns) = rx
                    .recv()
                    // vp-lint: allow(h2): a shard worker panic must propagate at the barrier, not be swallowed.
                    .expect("shard worker panicked before delivering");
                results.push(result);
                if clock.is_some() {
                    timings.push(ShardTiming {
                        shard: k,
                        queued_ns,
                        started_ns,
                        finished_ns,
                        merged_ns: now(clock),
                    });
                }
            }
            (results, timings)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_shard_id_order_regardless_of_arrival() {
        // Jobs record the order they *complete* in; the output must be in
        // shard-id order even when completion order differs.
        for (shards, workers) in [(1, 1), (5, 2), (7, 3), (16, 4), (4, 16)] {
            let arrivals = AtomicUsize::new(0);
            let exec = ShardExecutor::new(workers);
            let out = exec.run_sharded(shards, |k| {
                // Skew the work so higher shards tend to finish first.
                let mut acc = 0u64;
                for i in 0..((shards - k) * 20_000) {
                    acc = acc.wrapping_mul(31).wrapping_add(i as u64);
                }
                let arrived = arrivals.fetch_add(1, Ordering::SeqCst);
                (k, arrived, acc)
            });
            assert_eq!(out.len(), shards);
            for (k, result) in out.iter().enumerate() {
                assert_eq!(result.0, k, "slot {k} holds shard {}", result.0);
            }
            assert_eq!(arrivals.load(Ordering::SeqCst), shards);
        }
    }

    #[test]
    fn zero_shards_yields_empty() {
        let exec = ShardExecutor::new(4);
        let out: Vec<u32> = exec.run_sharded(0, |_| unreachable!("no shards to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn serial_executor_runs_inline() {
        let exec = ShardExecutor::serial();
        assert_eq!(exec.workers(), 1);
        let caller = std::thread::current().id();
        let out = exec.run_sharded(3, |k| (k, std::thread::current().id()));
        for (k, (id, tid)) in out.iter().enumerate() {
            assert_eq!(*id, k);
            assert_eq!(*tid, caller, "serial executor must not spawn");
        }
    }

    #[test]
    fn threaded_and_serial_agree() {
        let job = |k: usize| (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let serial: Vec<u64> = ShardExecutor::serial().run_sharded(11, job);
        for workers in [2, 3, 8] {
            let threaded = ShardExecutor::new(workers).run_sharded(11, job);
            assert_eq!(serial, threaded);
        }
    }

    #[test]
    #[should_panic(expected = "shard worker panicked before delivering")]
    fn worker_panic_propagates_instead_of_deadlocking() {
        ShardExecutor::new(2).run_sharded(4, |k| {
            assert!(k != 2, "shard 2 explodes");
            k
        });
    }

    #[test]
    fn workers_floor_at_one() {
        assert_eq!(ShardExecutor::new(0).workers(), 1);
        assert!(ShardExecutor::host_parallel(8).workers() >= 1);
        assert_eq!(ShardExecutor::host_parallel(1).workers(), 1);
    }

    /// A monotone atomic test clock (tests are exempt from lint rule d2;
    /// no wall clock is involved anyway).
    struct TickClock(std::sync::atomic::AtomicU64);

    impl Clock for TickClock {
        fn now_nanos(&self) -> u64 {
            self.0.fetch_add(1, Ordering::SeqCst)
        }
    }

    #[test]
    fn timed_run_returns_ordered_monotone_timings() {
        let clock = TickClock(std::sync::atomic::AtomicU64::new(1));
        for workers in [1, 2, 4] {
            let exec = ShardExecutor::new(workers);
            let (results, timings) =
                exec.run_sharded_timed(7, |k| k * 10, Some(&clock));
            assert_eq!(results, (0..7).map(|k| k * 10).collect::<Vec<_>>());
            assert_eq!(timings.len(), 7);
            for (k, t) in timings.iter().enumerate() {
                assert_eq!(t.shard, k, "timings must be in shard-id order");
                assert!(t.queued_ns <= t.started_ns, "{t:?}");
                assert!(t.started_ns < t.finished_ns, "{t:?}");
                assert!(t.finished_ns <= t.merged_ns, "{t:?}");
            }
            // The barrier merges in shard-id order, so merge times are
            // nondecreasing across shards.
            for pair in timings.windows(2) {
                assert!(pair[0].merged_ns <= pair[1].merged_ns, "{pair:?}");
            }
        }
    }

    #[test]
    fn timed_run_without_clock_matches_untimed() {
        let job = |k: usize| (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let exec = ShardExecutor::new(3);
        let (results, timings) = exec.run_sharded_timed(9, job, None);
        assert!(timings.is_empty(), "no clock must mean no timings");
        assert_eq!(results, exec.run_sharded(9, job));
    }
}
