//! The blessed OS-thread shard executor.
//!
//! This module is the **only** place in the workspace allowed to spawn OS
//! threads: `vp-lint` rule c5 fires on `thread::spawn`/`thread::scope`
//! anywhere else in library code, and rules c1–c4 police everything
//! reachable from the closures handed to [`ShardExecutor::run_sharded`]
//! (the *parallel region*). See DESIGN.md §14 for the full contract.
//!
//! The executor's shape is the arrival-order-proof one: each shard `k`
//! delivers its result through its **own** channel, and the barrier
//! receives channel 0, 1, 2, … in shard-id order. A caller folding the
//! returned vector therefore merges in shard-id order by construction —
//! there is no shared channel whose message order could leak thread
//! scheduling into the result.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

/// A bounded pool of OS worker threads that runs one job per shard and
/// returns the results **indexed by shard id**, never by arrival order.
///
/// Worker `w` owns shards `w, w + workers, w + 2·workers, …` (the same
/// deterministic round-robin split at every shard count), so the set of
/// jobs each thread runs is a pure function of `(shards, workers)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardExecutor {
    workers: usize,
}

impl ShardExecutor {
    /// An executor with exactly `workers` OS threads (floored at one).
    /// With one worker, jobs run inline on the calling thread.
    pub fn new(workers: usize) -> ShardExecutor {
        ShardExecutor {
            workers: workers.max(1),
        }
    }

    /// An executor that runs every shard inline on the calling thread.
    /// Used where the caller is itself already a shard worker (nested
    /// parallelism would oversubscribe the host).
    pub fn serial() -> ShardExecutor {
        ShardExecutor { workers: 1 }
    }

    /// An executor bounded by the host's available parallelism and the
    /// shard count: a shard count far above the core count — even one per
    /// hitlist entry — degrades gracefully instead of spawning thousands
    /// of threads.
    pub fn host_parallel(shards: usize) -> ShardExecutor {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        ShardExecutor {
            workers: hw.min(shards).max(1),
        }
    }

    /// The number of OS threads `run_sharded` will use (before the shard
    /// count caps it further).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `job(k)` for every shard `k in 0..shards` and returns the
    /// results in shard-id order.
    ///
    /// Each shard has its own rendezvous channel; the barrier receives
    /// them in ascending shard id, so the output order is independent of
    /// thread scheduling. Worker threads own the senders for their shards:
    /// a panicking worker drops its undelivered senders, the matching
    /// `recv` errors out, and the panic propagates at the barrier instead
    /// of deadlocking it.
    ///
    /// # Panics
    /// Propagates a panic from any shard job.
    pub fn run_sharded<T, F>(&self, shards: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.workers.min(shards);
        if workers <= 1 {
            return (0..shards).map(|k| job(k)).collect();
        }

        let mut senders: Vec<SyncSender<T>> = Vec::with_capacity(shards);
        let mut receivers: Vec<Receiver<T>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            // Buffer of one: a worker finishing a shard never blocks on
            // the barrier having reached that shard yet.
            let (tx, rx) = sync_channel(1);
            senders.push(tx);
            receivers.push(rx);
        }

        // Move each shard's sender into the worker that owns the shard.
        let mut batches: Vec<Vec<(usize, SyncSender<T>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (k, tx) in senders.into_iter().enumerate() {
            batches[k % workers].push((k, tx)); // vp-lint: allow(g1): k % workers is always below workers, the length of batches.
        }

        std::thread::scope(|scope| {
            for batch in batches {
                let job = &job;
                scope.spawn(move || {
                    for (k, tx) in batch {
                        // The receiver side outlives the scope; a send can
                        // only fail if the barrier already panicked, in
                        // which case the result is moot.
                        let _ = tx.send(job(k));
                    }
                });
            }
            receivers
                .iter()
                // vp-lint: allow(h2): a shard worker panic must propagate at the barrier, not be swallowed.
                .map(|rx| rx.recv().expect("shard worker panicked before delivering"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_shard_id_order_regardless_of_arrival() {
        // Jobs record the order they *complete* in; the output must be in
        // shard-id order even when completion order differs.
        for (shards, workers) in [(1, 1), (5, 2), (7, 3), (16, 4), (4, 16)] {
            let arrivals = AtomicUsize::new(0);
            let exec = ShardExecutor::new(workers);
            let out = exec.run_sharded(shards, |k| {
                // Skew the work so higher shards tend to finish first.
                let mut acc = 0u64;
                for i in 0..((shards - k) * 20_000) {
                    acc = acc.wrapping_mul(31).wrapping_add(i as u64);
                }
                let arrived = arrivals.fetch_add(1, Ordering::SeqCst);
                (k, arrived, acc)
            });
            assert_eq!(out.len(), shards);
            for (k, result) in out.iter().enumerate() {
                assert_eq!(result.0, k, "slot {k} holds shard {}", result.0);
            }
            assert_eq!(arrivals.load(Ordering::SeqCst), shards);
        }
    }

    #[test]
    fn zero_shards_yields_empty() {
        let exec = ShardExecutor::new(4);
        let out: Vec<u32> = exec.run_sharded(0, |_| unreachable!("no shards to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn serial_executor_runs_inline() {
        let exec = ShardExecutor::serial();
        assert_eq!(exec.workers(), 1);
        let caller = std::thread::current().id();
        let out = exec.run_sharded(3, |k| (k, std::thread::current().id()));
        for (k, (id, tid)) in out.iter().enumerate() {
            assert_eq!(*id, k);
            assert_eq!(*tid, caller, "serial executor must not spawn");
        }
    }

    #[test]
    fn threaded_and_serial_agree() {
        let job = |k: usize| (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let serial: Vec<u64> = ShardExecutor::serial().run_sharded(11, job);
        for workers in [2, 3, 8] {
            let threaded = ShardExecutor::new(workers).run_sharded(11, job);
            assert_eq!(serial, threaded);
        }
    }

    #[test]
    #[should_panic(expected = "shard worker panicked before delivering")]
    fn worker_panic_propagates_instead_of_deadlocking() {
        ShardExecutor::new(2).run_sharded(4, |k| {
            assert!(k != 2, "shard 2 explodes");
            k
        });
    }

    #[test]
    fn workers_floor_at_one() {
        assert_eq!(ShardExecutor::new(0).workers(), 1);
        assert!(ShardExecutor::host_parallel(8).workers() >= 1);
        assert_eq!(ShardExecutor::host_parallel(1).workers(), 1);
    }
}
