//! Assembled measurement scenarios: the worlds of Table 3.
//!
//! A [`Scenario`] bundles a generated [`Internet`] with an anycast
//! [`Announcement`] (B-Root's two sites or Tangled's nine) and knows how to
//! compute routing tables for announcement variants — the prepending sweep
//! of Figs. 5 and 6 reuses the same world with modified announcements.

use vp_bgp::{Announcement, BgpSim, FlipModel, RoutingTable};
use vp_net::Asn;
use vp_topology::{broot_specs, pick_host_ases, tangled_specs, Internet, TopologyConfig};

/// A ready-to-measure deployment: world + announcement.
pub struct Scenario {
    pub world: Internet,
    pub announcement: Announcement,
    /// Seed of the deterministic routing-policy tie-breaks.
    pub policy_seed: u64,
}

impl Scenario {
    /// The two-site B-Root deployment (LAX + MIA) on a fresh world.
    // vp-lint: allow(g1): the built-in broot_specs carry valid country codes, so pick_host_ases' documented panic cannot fire.
    pub fn broot(cfg: TopologyConfig, policy_seed: u64) -> Scenario {
        let world = Internet::generate(cfg);
        let announcement = Announcement::from_placements(&pick_host_ases(&world, &broot_specs()), 0);
        Scenario {
            world,
            announcement,
            policy_seed,
        }
    }

    /// The nine-site Tangled testbed on a fresh world.
    ///
    /// Reproduces the testbed quirk of §4.2 — the Tokyo site "does not
    /// attract much traffic since announcements from other sites are almost
    /// always preferred" — by announcing HND with permanent prepending.
    // vp-lint: allow(g1): the built-in tangled_specs carry valid country codes, so pick_host_ases' documented panic cannot fire.
    pub fn tangled(cfg: TopologyConfig, policy_seed: u64) -> Scenario {
        let world = Internet::generate(cfg);
        let mut announcement =
            Announcement::from_placements(&pick_host_ases(&world, &tangled_specs()), 1);
        announcement.set_prepend("HND", 2);
        Scenario {
            world,
            announcement,
            policy_seed,
        }
    }

    /// Routing for the scenario's current announcement.
    pub fn routing(&self) -> RoutingTable {
        self.routing_for(&self.announcement)
    }

    /// Routing for an announcement variant over the same world/policies.
    pub fn routing_for(&self, ann: &Announcement) -> RoutingTable {
        self.routing_with_seed(ann, self.policy_seed)
    }

    /// Routing for an announcement under a different policy tie-break seed
    /// — models routing drift over time (policies and link states change
    /// between measurement dates, §5.5).
    pub fn routing_with_seed(&self, ann: &Announcement, policy_seed: u64) -> RoutingTable {
        BgpSim::new(&self.world.graph, policy_seed).route(ann)
    }

    /// Like [`Scenario::routing_with_seed`], also returning the BGP
    /// propagation work counters for the observability layer.
    pub fn routing_with_seed_traced(
        &self,
        ann: &Announcement,
        policy_seed: u64,
    ) -> (RoutingTable, vp_bgp::RouteObs) {
        BgpSim::new(&self.world.graph, policy_seed).route_traced(ann)
    }

    /// A paper-shaped flip model over this scenario's routing.
    pub fn flip_model(&self, seed: u64, table: &RoutingTable) -> FlipModel {
        let mut blocks_per_as = vec![0u32; self.world.graph.len()];
        for b in &self.world.blocks {
            blocks_per_as[b.origin.index()] += 1; // vp-lint: allow(g1): block origins are ASes of the same world; the vec is sized to it.
        }
        FlipModel::paper_default(seed, table, &blocks_per_as)
    }

    /// Count of populated blocks per AS (used by analyses and flip models).
    pub fn blocks_per_as(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.world.graph.len()];
        for b in &self.world.blocks {
            counts[b.origin.index()] += 1; // vp-lint: allow(g1): block origins are ASes of the same world; the vec is sized to it.
        }
        counts
    }

    /// The host AS of a named site. Panics on unknown name.
    // vp-lint: allow(g1): documented contract — experiment code addresses testbed sites by their fixed names; an unknown name is a bug, not a runtime condition.
    pub fn host_of(&self, site_name: &str) -> Asn {
        self.announcement
            .site_by_name(site_name)
            .unwrap_or_else(|| panic!("no site named {site_name:?}"))
            .host_asn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broot_has_two_sites() {
        let s = Scenario::broot(TopologyConfig::tiny(1), 7);
        assert_eq!(s.announcement.sites.len(), 2);
        let table = s.routing();
        assert!(table.per_as.iter().all(Option::is_some));
    }

    #[test]
    fn tangled_has_nine_sites_with_weak_tokyo() {
        let s = Scenario::tangled(TopologyConfig::tiny(2), 7);
        assert_eq!(s.announcement.sites.len(), 9);
        assert_eq!(s.announcement.site_by_name("HND").unwrap().prepend, 2);
        // The prepend must not enlarge Tokyo's catchment relative to an
        // un-prepended announcement of the same deployment.
        let hnd = s.announcement.site_by_name("HND").unwrap().id;
        let count_hnd = |table: &vp_bgp::RoutingTable| {
            table
                .per_as
                .iter()
                .flatten()
                .filter(|r| r.selected_site() == hnd)
                .count()
        };
        let with_prepend = count_hnd(&s.routing());
        let without = count_hnd(&s.routing_for(&s.announcement.without_prepending()));
        assert!(
            with_prepend <= without,
            "prepending grew HND: {with_prepend} > {without}"
        );
    }

    #[test]
    fn routing_for_variant_differs_under_prepending() {
        let s = Scenario::broot(TopologyConfig::tiny(3), 7);
        let base = s.routing();
        let mut variant = s.announcement.clone();
        variant.set_prepend("LAX", 3);
        let shifted = s.routing_for(&variant);
        let moved = base
            .per_as
            .iter()
            .zip(&shifted.per_as)
            .filter(|(a, b)| {
                a.as_ref().map(|r| r.selected_site()) != b.as_ref().map(|r| r.selected_site())
            })
            .count();
        assert!(moved > 0, "prepending LAX moved nothing");
    }

    #[test]
    fn helpers_work() {
        let s = Scenario::broot(TopologyConfig::tiny(4), 7);
        let counts = s.blocks_per_as();
        assert_eq!(counts.iter().sum::<u32>() as usize, s.world.blocks.len());
        let lax = s.host_of("LAX");
        assert_eq!(s.announcement.sites[0].host_asn, lax);
        let table = s.routing();
        let _model = s.flip_model(1, &table);
    }
}
