//! Fault-injection configuration.

use serde::{Deserialize, Serialize};
use vp_net::SimDuration;

/// Knobs for the measurement artifacts the simulator injects.
///
/// Defaults are tuned to the artifact rates the paper reports or implies:
/// ~2% duplicate replies, a small alias rate (replies "from a different
/// IP-address than the original target"), occasional late replies (the
/// pipeline discards replies >15 min after measurement start), and rare
/// unsolicited packets hitting the collector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a transmission is silently dropped.
    pub loss: f64,
    /// Probability a responding host sends duplicate replies.
    pub duplicate_prob: f64,
    /// Duplicate count is heavy-tailed up to this cap (the paper observed
    /// systems replying "up to thousands of times").
    pub max_duplicates: u32,
    /// Probability a reply is sourced from a different address in the same
    /// block than the probed one.
    pub alias_prob: f64,
    /// Probability a reply is delayed by [`FaultConfig::late_delay`].
    pub late_prob: f64,
    /// Extra delay applied to late replies.
    pub late_delay: SimDuration,
    /// Per-injected-packet probability that an unrelated host also sends an
    /// unsolicited packet to the same destination (scanner backscatter).
    pub unsolicited_prob: f64,
    /// Per-round probability a responsive block is temporarily down
    /// (drives the to-NR / from-NR churn of Fig. 9, ~2.4%).
    pub churn_down_prob: f64,
    /// Length of a churn epoch (the paper's measurement round interval).
    pub churn_round: SimDuration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            loss: 0.002,
            duplicate_prob: 0.02,
            max_duplicates: 1000,
            alias_prob: 0.01,
            late_prob: 0.002,
            late_delay: SimDuration::from_mins(20),
            unsolicited_prob: 0.0005,
            churn_down_prob: 0.025,
            churn_round: SimDuration::from_mins(15),
        }
    }
}

impl FaultConfig {
    /// A configuration with every fault disabled — for tests that need the
    /// clean-channel behaviour.
    pub fn none() -> Self {
        FaultConfig {
            loss: 0.0,
            duplicate_prob: 0.0,
            max_duplicates: 0,
            alias_prob: 0.0,
            late_prob: 0.0,
            late_delay: SimDuration::ZERO,
            unsolicited_prob: 0.0,
            churn_down_prob: 0.0,
            churn_round: SimDuration::from_mins(15),
        }
    }

    /// Validates that all probabilities are in range.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("loss", self.loss),
            ("duplicate_prob", self.duplicate_prob),
            ("alias_prob", self.alias_prob),
            ("late_prob", self.late_prob),
            ("unsolicited_prob", self.unsolicited_prob),
            ("churn_down_prob", self.churn_down_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} out of [0,1]"));
            }
        }
        if self.churn_round == SimDuration::ZERO {
            return Err("churn_round must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(FaultConfig::default().validate().is_ok());
        assert!(FaultConfig::none().validate().is_ok());
    }

    #[test]
    fn out_of_range_rejected() {
        let cfg = FaultConfig {
            loss: 1.5,
            ..FaultConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("loss"));
        let cfg = FaultConfig {
            churn_round: SimDuration::ZERO,
            ..FaultConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn none_disables_everything() {
        let c = FaultConfig::none();
        assert_eq!(c.loss, 0.0);
        assert_eq!(c.duplicate_prob, 0.0);
        assert_eq!(c.churn_down_prob, 0.0);
    }
}
