//! Catchment oracles: who receives a packet sent to the anycast prefix.
//!
//! The engine resolves the receiving site of anycast-bound traffic through
//! a [`CatchmentOracle`] so that measurements can run against a converged
//! routing table ([`StaticOracle`]) or one with per-round instability
//! ([`FlippingOracle`], used for the Fig. 9 / Table 7 stability study).

use std::sync::Arc;

use vp_bgp::{FlipModel, RoutingTable, SiteId};
use vp_net::{SimDuration, SimTime};
use vp_topology::blocks::BlockInfo;
use vp_topology::graph::AsGraph;

/// Resolves which anycast site traffic from a block reaches at an instant.
pub trait CatchmentOracle {
    /// The receiving site, or `None` if the block's AS has no route.
    fn site_of_block(&self, block: &BlockInfo, at: SimTime) -> Option<SiteId>;
}

/// A time-invariant oracle over a converged routing table.
///
/// The table is held behind an [`Arc`] so that the sharded scan path can
/// hand every shard its own boxed oracle while sharing one converged
/// table: [`StaticOracle::shared`] costs a refcount bump where a deep
/// table clone costs thousands of allocations (the §17 allocation
/// witness counts shard setup against the scan's budget).
#[derive(Debug, Clone)]
pub struct StaticOracle {
    table: Arc<RoutingTable>,
}

impl StaticOracle {
    pub fn new(table: RoutingTable) -> Self {
        StaticOracle {
            table: Arc::new(table),
        }
    }

    /// Builds an oracle over an already-shared table without copying it.
    pub fn shared(table: Arc<RoutingTable>) -> Self {
        StaticOracle { table }
    }

    pub fn table(&self) -> &RoutingTable {
        &self.table
    }
}

impl CatchmentOracle for StaticOracle {
    fn site_of_block(&self, block: &BlockInfo, _at: SimTime) -> Option<SiteId> {
        self.table.site_of_pop(block.pop)
    }
}

/// An oracle whose choice may flip between measurement rounds.
#[derive(Debug, Clone)]
pub struct FlippingOracle {
    table: RoutingTable,
    graph: AsGraph,
    model: FlipModel,
    round: SimDuration,
}

impl FlippingOracle {
    /// Wraps a converged table with a flip model; `round` is the interval
    /// after which a new flip decision is drawn (15 min in the paper).
    pub fn new(
        table: RoutingTable,
        graph: AsGraph,
        model: FlipModel,
        round: SimDuration,
    ) -> Self {
        assert!(round > SimDuration::ZERO, "round must be positive");
        FlippingOracle {
            table,
            graph,
            model,
            round,
        }
    }

    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    fn round_of(&self, at: SimTime) -> u32 {
        vp_net::conv::sat_u32(at.as_nanos() / self.round.as_nanos())
    }
}

impl CatchmentOracle for FlippingOracle {
    fn site_of_block(&self, block: &BlockInfo, at: SimTime) -> Option<SiteId> {
        self.model
            .site_of_pop_at_round(&self.table, &self.graph, block.pop, self.round_of(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_bgp::{Announcement, BgpSim};
    use vp_topology::{broot_specs, pick_host_ases, Internet, TopologyConfig};

    fn setup() -> (Internet, RoutingTable) {
        let w = Internet::generate(TopologyConfig::tiny(13));
        let ann = Announcement::from_placements(&pick_host_ases(&w, &broot_specs()), 0);
        let table = BgpSim::new(&w.graph, 1).route(&ann);
        (w, table)
    }

    #[test]
    fn static_oracle_is_time_invariant() {
        let (w, table) = setup();
        let oracle = StaticOracle::new(table);
        for b in w.blocks.iter().take(50) {
            let s0 = oracle.site_of_block(b, SimTime::ZERO);
            let s1 = oracle.site_of_block(b, SimTime(1u64 << 50));
            assert_eq!(s0, s1);
            assert!(s0.is_some());
        }
    }

    #[test]
    fn flipping_oracle_matches_static_in_round_zero() {
        let (w, table) = setup();
        let st = StaticOracle::new(table.clone());
        let fl = FlippingOracle::new(
            table,
            w.graph.clone(),
            FlipModel::stable(1),
            SimDuration::from_mins(15),
        );
        let t = SimTime::ZERO + SimDuration::from_mins(5); // still round 0
        for b in w.blocks.iter().take(50) {
            assert_eq!(st.site_of_block(b, t), fl.site_of_block(b, t));
        }
    }

    #[test]
    fn round_boundaries_quantize_time() {
        let (w, table) = setup();
        let fl = FlippingOracle::new(
            table,
            w.graph.clone(),
            FlipModel::stable(1),
            SimDuration::from_mins(15),
        );
        assert_eq!(fl.round_of(SimTime::ZERO), 0);
        assert_eq!(fl.round_of(SimTime::ZERO + SimDuration::from_mins(14)), 0);
        assert_eq!(fl.round_of(SimTime::ZERO + SimDuration::from_mins(15)), 1);
        assert_eq!(fl.round_of(SimTime::ZERO + SimDuration::from_hours(24)), 96);
        // Keep `w` alive for clarity of the borrowed graph clone.
        drop(w);
    }
}
