//! Properties of the per-shard seed derivation and RNG isolation.
//!
//! The sharded scan path relies on two contracts from the engine:
//! * `derive_shard_seed` is a pure, stable function — the same round seed
//!   and shard index always produce the same auxiliary Pcg64 stream, so a
//!   re-run (or a resumed shard) replays identically.
//! * Engines never share RNG state — each shard's auxiliary stream is
//!   distinct, and no engine's draws can perturb another's.

use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rand_pcg::Pcg64;
use vp_sim::{derive_shard_seed, FaultConfig, NetworkSim};
use vp_topology::{Internet, TopologyConfig};

proptest! {
    /// Same round seed + shard index → same derived seed, hence the same
    /// Pcg64 stream, every time.
    #[test]
    fn derivation_is_stable(round_seed in any::<u64>(), shard in 0u64..1024) {
        let a = derive_shard_seed(round_seed, shard);
        let b = derive_shard_seed(round_seed, shard);
        prop_assert_eq!(a, b);
        let mut ra = Pcg64::seed_from_u64(a);
        let mut rb = Pcg64::seed_from_u64(b);
        for _ in 0..32 {
            prop_assert_eq!(ra.next_u64(), rb.next_u64());
        }
    }

    /// Distinct shard indices under one round seed get distinct seeds
    /// (and therefore distinct streams): engines never share RNG state.
    #[test]
    fn shards_never_share_a_stream(round_seed in any::<u64>(), a in 0u64..512, b in 0u64..512) {
        if a != b {
            prop_assert_ne!(
                derive_shard_seed(round_seed, a),
                derive_shard_seed(round_seed, b)
            );
        }
    }

    /// The derived seed also differs from the raw round seed — shard 0 is
    /// not accidentally the serial engine's stream.
    #[test]
    fn derived_seed_is_not_the_round_seed(round_seed in any::<u64>(), shard in 0u64..512) {
        prop_assert_ne!(derive_shard_seed(round_seed, shard), round_seed);
    }
}

#[test]
fn engine_aux_streams_are_isolated_and_reproducible() {
    let world = Internet::generate(TopologyConfig::tiny(5));
    let drain = |sim: &mut NetworkSim| -> Vec<u64> {
        (0..32).map(|_| sim.aux_rng().next_u64()).collect()
    };

    let mut shard0 = NetworkSim::new_shard(&world, FaultConfig::none(), 42, 0);
    let mut shard1 = NetworkSim::new_shard(&world, FaultConfig::none(), 42, 1);
    let s0 = drain(&mut shard0);
    let s1 = drain(&mut shard1);
    assert_ne!(s0, s1, "shard engines share an RNG stream");

    // Rebuilding the same shard reproduces its stream exactly.
    let mut again = NetworkSim::new_shard(&world, FaultConfig::none(), 42, 0);
    assert_eq!(drain(&mut again), s0, "shard stream is not reproducible");

    // Draining one engine's RNG cannot perturb another's: a fresh shard-1
    // engine yields the same stream whether or not shard 0 drew first.
    let mut fresh1 = NetworkSim::new_shard(&world, FaultConfig::none(), 42, 1);
    assert_eq!(drain(&mut fresh1), s1, "engines are not state-isolated");
}
