//! Property-based tests of the discrete-event engine.

use bytes::Bytes;
use proptest::prelude::*;
use vp_bgp::Announcement;
use vp_net::{Ipv4Addr, SimTime};
use vp_packet::{IcmpMessage, Ipv4Packet, Protocol};
use vp_sim::{FaultConfig, NetworkSim, Scenario, StaticOracle};
use vp_topology::TopologyConfig;

fn scenario(seed: u64) -> Scenario {
    Scenario::broot(
        TopologyConfig {
            seed,
            num_ases: 80,
            num_tier1: 4,
            max_blocks: 1000,
            max_prefixes_per_as: 20,
            max_blocks_per_prefix: 16,
            ..TopologyConfig::default()
        },
        7,
    )
}

fn probe(src: Ipv4Addr, dst: Ipv4Addr, ident: u16, seq: u16) -> Ipv4Packet {
    Ipv4Packet::new(
        src,
        dst,
        Protocol::Icmp,
        IcmpMessage::echo_request(ident, seq, Bytes::new()).emit(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Conservation: every injected probe is lost, undeliverable, or
    /// delivered — and capture counts never exceed generated replies plus
    /// unsolicited traffic.
    #[test]
    fn packet_conservation(world_seed in 0u64..3000, sim_seed in any::<u64>(), loss in 0.0f64..0.5) {
        let s = scenario(world_seed);
        let ann = s.announcement.clone();
        let meas = ann.measurement_addr();
        let faults = FaultConfig { loss, unsolicited_prob: 0.01, ..FaultConfig::default() };
        let mut sim = NetworkSim::new(&s.world, faults, sim_seed);
        let svc = sim.register_service(ann, Box::new(StaticOracle::new(s.routing())), false);
        let n = s.world.blocks.len().min(300);
        for (i, b) in s.world.blocks.iter().take(n).enumerate() {
            sim.send_at(SimTime(i as u64 * 1_000_000), probe(meas, b.representative(), 1, i as u16));
        }
        sim.run();
        let st = sim.stats();
        prop_assert_eq!(st.injected, n as u64);
        // Every transmission (probes + replies + dups + unsolicited) ends
        // in exactly one of: lost, host delivery, site delivery, undeliverable.
        let transmissions = st.injected + st.replies + st.duplicates + st.unsolicited;
        prop_assert_eq!(
            transmissions,
            st.lost + st.delivered_to_hosts + st.delivered_to_sites + st.undeliverable,
            "conservation violated: {:?}", st
        );
        prop_assert!(sim.captures(svc).len() as u64 <= st.delivered_to_sites);
    }

    /// Replies never outnumber delivered probes (modulo duplicates), and
    /// with faults off the reply count equals up-block deliveries.
    #[test]
    fn clean_channel_reply_accounting(world_seed in 0u64..3000) {
        let s = scenario(world_seed);
        let ann = s.announcement.clone();
        let meas = ann.measurement_addr();
        let mut sim = NetworkSim::new(&s.world, FaultConfig::none(), 1);
        let svc = sim.register_service(ann, Box::new(StaticOracle::new(s.routing())), false);
        let mut expected = 0u64;
        for (i, b) in s.world.blocks.iter().enumerate() {
            sim.send_at(SimTime(i as u64 * 100_000), probe(meas, b.representative(), 2, i as u16));
            if b.responsive {
                expected += 1;
            }
        }
        sim.run();
        prop_assert_eq!(sim.stats().replies, expected);
        prop_assert_eq!(sim.captures(svc).len() as u64, expected);
        prop_assert_eq!(sim.stats().duplicates, 0);
        prop_assert_eq!(sim.stats().lost, 0);
    }

    /// Arrival times never precede transmission times.
    #[test]
    fn causality(world_seed in 0u64..3000, offset_ms in 0u64..100_000) {
        let s = scenario(world_seed);
        let ann = s.announcement.clone();
        let meas = ann.measurement_addr();
        let start = SimTime::ZERO + vp_net::SimDuration::from_millis(offset_ms);
        let mut sim = NetworkSim::new(&s.world, FaultConfig::none(), 3);
        let svc = sim.register_service(ann, Box::new(StaticOracle::new(s.routing())), false);
        for (i, b) in s.world.responsive_blocks().take(100).enumerate() {
            sim.send_at(start, probe(meas, b.representative(), 3, i as u16));
        }
        sim.run();
        for cap in sim.captures(svc) {
            prop_assert!(cap.at >= start, "capture at {} before send at {}", cap.at, start);
        }
    }
}

#[test]
fn service_registration_order_is_stable() {
    let s = scenario(1);
    let ann_a = s.announcement.clone();
    let ann_b = {
        let placements = vp_topology::pick_host_ases(&s.world, &[("X", "DE"), ("Y", "JP")]);
        Announcement::from_placements(&placements, 3)
    };
    let mut sim = NetworkSim::new(&s.world, FaultConfig::none(), 4);
    let a = sim.register_service(ann_a, Box::new(StaticOracle::new(s.routing())), false);
    let table_b = s.routing_for(&ann_b);
    let b = sim.register_service(ann_b, Box::new(StaticOracle::new(table_b)), true);
    assert_ne!(a.0, b.0);
    assert!(sim.captures(a).is_empty());
    assert!(sim.captures(b).is_empty());
}

// Merge algebra for the per-shard statistics counters.
// vp-lint: merge-tested(SimStats::merge)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `SimStats::merge` is field-wise addition — including the variable-
    /// length `per_site_captures` vector, which sums element-wise with
    /// zero-padding — so folding any permutation of shard stats must give
    /// the same totals, and grouping must not matter:
    /// (a + b) + c == a + (b + c).
    #[test]
    fn sim_stats_merge_is_associative_and_commutative(
        counts in prop::collection::vec(
            (
                (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
                (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
                (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
                // Per-site capture vectors of *different* lengths, so the
                // zero-padding path is exercised in every merge order.
                prop::collection::vec(0u64..1_000_000, 0..5),
            ),
            1..6,
        ),
    ) {
        let stats: Vec<vp_sim::SimStats> = counts
            .iter()
            .map(|&((i, dh, ds), (l, r, d), (a, u, n), ref sites)| vp_sim::SimStats {
                injected: i,
                delivered_to_hosts: dh,
                delivered_to_sites: ds,
                lost: l,
                replies: r,
                duplicates: d,
                aliases: a,
                unsolicited: u,
                undeliverable: n,
                per_site_captures: sites.clone(),
            })
            .collect();

        // Forward and reverse folds agree.
        let mut forward = vp_sim::SimStats::default();
        for s in &stats {
            forward.merge(s);
        }
        let mut reverse = vp_sim::SimStats::default();
        for s in stats.iter().rev() {
            reverse.merge(s);
        }
        prop_assert_eq!(&forward, &reverse);

        // Each per-site slot is the sum over inputs long enough to have it.
        let want_len = stats.iter().map(|s| s.per_site_captures.len()).max().unwrap_or(0);
        prop_assert_eq!(forward.per_site_captures.len(), want_len);
        for slot in 0..want_len {
            let want: u64 = stats
                .iter()
                .filter_map(|s| s.per_site_captures.get(slot))
                .sum();
            prop_assert_eq!(forward.per_site_captures[slot], want);
        }

        // Associativity on the first three (padded with defaults).
        let a = stats.first().cloned().unwrap_or_default();
        let b = stats.get(1).cloned().unwrap_or_default();
        let c = stats.get(2).cloned().unwrap_or_default();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);

        // The empty stats value is a two-sided identity.
        let mut id = vp_sim::SimStats::default();
        id.merge(&a);
        prop_assert_eq!(&id, &a);
        let mut right = a.clone();
        right.merge(&vp_sim::SimStats::default());
        prop_assert_eq!(&right, &a);
    }
}
