//! The MaxMind stand-in: a `/24 → location` database.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use vp_net::Block24;

use crate::world::CountryId;

/// A geolocated position for a block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoLoc {
    pub country: CountryId,
    pub lat: f64,
    pub lon: f64,
}

/// Block-level geolocation database.
///
/// Built by the topology generator; consulted by every analysis that bins
/// observations geographically. Blocks absent from the database are the
/// "no location" row of Table 4 — the paper discards 678 such blocks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GeoDb {
    entries: BTreeMap<Block24, GeoLoc>,
}

impl GeoDb {
    pub fn new() -> Self {
        GeoDb::default()
    }

    /// Registers a block's location (last write wins).
    pub fn insert(&mut self, block: Block24, loc: GeoLoc) {
        self.entries.insert(block, loc);
    }

    /// Looks a block up; `None` reproduces the paper's unlocatable blocks.
    pub fn locate(&self, block: Block24) -> Option<GeoLoc> {
        self.entries.get(&block).copied()
    }

    /// Number of locatable blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates all `(block, location)` entries in ascending block order.
    pub fn iter(&self) -> impl Iterator<Item = (Block24, GeoLoc)> + '_ {
        self.entries.iter().map(|(b, l)| (*b, *l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(country: u16, lat: f64, lon: f64) -> GeoLoc {
        GeoLoc {
            country: CountryId(country),
            lat,
            lon,
        }
    }

    #[test]
    fn insert_and_locate() {
        let mut db = GeoDb::new();
        assert!(db.is_empty());
        let b = Block24(100);
        db.insert(b, loc(3, 52.0, 5.0));
        assert_eq!(db.len(), 1);
        let got = db.locate(b).unwrap();
        assert_eq!(got.country, CountryId(3));
        assert!(db.locate(Block24(101)).is_none());
    }

    #[test]
    fn last_write_wins() {
        let mut db = GeoDb::new();
        let b = Block24(7);
        db.insert(b, loc(1, 0.0, 0.0));
        db.insert(b, loc(2, 10.0, 10.0));
        assert_eq!(db.len(), 1);
        assert_eq!(db.locate(b).unwrap().country, CountryId(2));
    }

    #[test]
    fn iter_covers_entries() {
        let mut db = GeoDb::new();
        for i in 0..10 {
            db.insert(Block24(i), loc(0, i as f64, 0.0));
        }
        assert_eq!(db.iter().count(), 10);
    }
}
