//! Two-degree geographic binning — the coordinate system of the map figures.
//!
//! Figures 2, 3 and 4 of the paper aggregate observations "in two-degree
//! geographic bins", drawing a pie per bin colored by anycast site and sized
//! by block count (or query rate). [`BinnedMap`] produces exactly that data:
//! per-bin, per-key weights.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A two-degree by two-degree geographic bin.
///
/// `lat_bin = floor(lat / 2)`, `lon_bin = floor(lon / 2)`; valid latitudes
/// give `-45..=44`, longitudes `-90..=89`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct GeoBin {
    pub lat_bin: i16,
    pub lon_bin: i16,
}

impl GeoBin {
    /// The bin containing a coordinate.
    pub fn containing(lat: f64, lon: f64) -> GeoBin {
        GeoBin {
            lat_bin: (lat / 2.0).floor() as i16,
            lon_bin: (lon / 2.0).floor() as i16,
        }
    }

    /// Center coordinate of the bin, for plotting.
    pub fn center(self) -> (f64, f64) {
        (
            self.lat_bin as f64 * 2.0 + 1.0,
            self.lon_bin as f64 * 2.0 + 1.0,
        )
    }
}

/// Accumulates per-bin, per-key weights (key = anycast site, typically).
///
/// Storage is ordered end to end (bin, then key), so every iteration —
/// and therefore every figure built from one — is deterministic.
#[derive(Debug, Clone)]
pub struct BinnedMap<K: Ord + Copy> {
    bins: BTreeMap<GeoBin, BTreeMap<K, f64>>,
}

impl<K: Ord + Copy> Default for BinnedMap<K> {
    fn default() -> Self {
        BinnedMap {
            bins: BTreeMap::new(),
        }
    }
}

impl<K: Ord + Copy> BinnedMap<K> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight` for `key` at the bin containing `(lat, lon)`.
    pub fn add(&mut self, lat: f64, lon: f64, key: K, weight: f64) {
        *self
            .bins
            .entry(GeoBin::containing(lat, lon))
            .or_default()
            .entry(key)
            .or_insert(0.0) += weight;
    }

    /// Number of non-empty bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Total weight across all bins and keys.
    pub fn total(&self) -> f64 {
        self.bins
            .values()
            .flat_map(|m| m.values())
            .copied()
            .sum()
    }

    /// Total weight per key, across all bins, sorted by key.
    pub fn totals_by_key(&self) -> BTreeMap<K, f64> {
        let mut out = BTreeMap::new();
        for m in self.bins.values() {
            for (k, w) in m {
                *out.entry(*k).or_insert(0.0) += *w;
            }
        }
        out
    }

    /// Rows for a map figure: `(bin, per-key weights sorted by key)`,
    /// ordered by bin. The storage is already ordered, so this is a copy.
    pub fn rows(&self) -> Vec<(GeoBin, BTreeMap<K, f64>)> {
        self.bins
            .iter()
            .map(|(bin, m)| (*bin, m.clone()))
            .collect()
    }

    /// The maximum single-bin total weight (used to scale the figure's
    /// circle legend, e.g. Fig. 2b's "185k+" top bucket).
    pub fn max_bin_total(&self) -> f64 {
        self.bins
            .values()
            .map(|m| m.values().sum::<f64>())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_floors_correctly() {
        assert_eq!(
            GeoBin::containing(52.3, 5.2),
            GeoBin {
                lat_bin: 26,
                lon_bin: 2
            }
        );
        assert_eq!(
            GeoBin::containing(-0.1, -0.1),
            GeoBin {
                lat_bin: -1,
                lon_bin: -1
            }
        );
        assert_eq!(
            GeoBin::containing(0.0, 0.0),
            GeoBin {
                lat_bin: 0,
                lon_bin: 0
            }
        );
    }

    #[test]
    fn center_is_inside_bin() {
        let b = GeoBin::containing(51.9, 4.4);
        let (lat, lon) = b.center();
        assert_eq!(GeoBin::containing(lat, lon), b);
    }

    #[test]
    fn accumulation_and_totals() {
        let mut m: BinnedMap<u8> = BinnedMap::new();
        m.add(52.0, 5.0, 1, 2.0);
        m.add(52.5, 5.5, 1, 3.0); // same bin
        m.add(52.5, 5.5, 2, 1.0); // same bin, other key
        m.add(-10.0, -60.0, 2, 4.0); // different bin
        assert_eq!(m.bin_count(), 2);
        assert_eq!(m.total(), 10.0);
        let per_key = m.totals_by_key();
        assert_eq!(per_key[&1], 5.0);
        assert_eq!(per_key[&2], 5.0);
        assert_eq!(m.max_bin_total(), 6.0);
    }

    #[test]
    fn rows_are_sorted_and_complete() {
        let mut m: BinnedMap<u8> = BinnedMap::new();
        m.add(10.0, 10.0, 0, 1.0);
        m.add(-10.0, 10.0, 0, 1.0);
        m.add(10.0, -10.0, 1, 1.0);
        let rows = m.rows();
        assert_eq!(rows.len(), 3);
        let mut sorted = rows.clone();
        sorted.sort_by_key(|(b, _)| *b);
        assert_eq!(rows, sorted);
    }

    #[test]
    fn empty_map() {
        let m: BinnedMap<u8> = BinnedMap::new();
        assert_eq!(m.bin_count(), 0);
        assert_eq!(m.total(), 0.0);
        assert_eq!(m.max_bin_total(), 0.0);
        assert!(m.rows().is_empty());
    }
}
