//! The synthetic world: countries, continents and their weights.
//!
//! Weights are coarse, hand-set approximations of 2017 conditions chosen to
//! reproduce the paper's qualitative geography:
//!
//! * `user_weight` — relative share of the world's responsive /24 blocks
//!   (roughly proportional to internet users; China/US/EU heavy, with the
//!   long tail compressed into representative countries).
//! * `atlas_weight` — relative share of RIPE Atlas probes. Deliberately and
//!   heavily Europe-skewed ("Atlas' deployment is by far heavier in Europe
//!   than in other parts of the globe", §5.4), and nearly zero in China —
//!   the paper notes Atlas is "almost absent in China" (§5.1).
//! * `resolver_concentration` — how strongly DNS load from this country is
//!   funneled through few resolver blocks (§5.4 observes load concentrates
//!   in hotspots; India's NAT-heavy deployment is the extreme case).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Continent grouping used in reports. `Ord` follows declaration order so
/// continents can key ordered maps in report code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Continent {
    Europe,
    NorthAmerica,
    SouthAmerica,
    Asia,
    Africa,
    Oceania,
}

impl Continent {
    /// Short tag used in table output.
    pub const fn tag(self) -> &'static str {
        match self {
            Continent::Europe => "EU",
            Continent::NorthAmerica => "NA",
            Continent::SouthAmerica => "SA",
            Continent::Asia => "AS",
            Continent::Africa => "AF",
            Continent::Oceania => "OC",
        }
    }
}

/// Index into [`countries`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CountryId(pub u16);

impl CountryId {
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The country record for this id.
    // vp-lint: allow(g1): CountryId values are minted from COUNTRIES positions by the generator, so the table lookup is in bounds by construction.
    pub fn get(self) -> &'static Country {
        &COUNTRIES[self.index()]
    }
}

/// A country in the synthetic world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Country {
    /// ISO-ish two letter code.
    pub code: &'static str,
    pub name: &'static str,
    pub continent: Continent,
    /// Center of the country's populated area.
    pub lat: f64,
    pub lon: f64,
    /// Half-extent of the populated area, degrees.
    pub lat_spread: f64,
    pub lon_spread: f64,
    /// Relative share of responsive /24 blocks.
    pub user_weight: f64,
    /// Relative share of RIPE Atlas probes.
    pub atlas_weight: f64,
    /// 0..1; higher = DNS load funneled through fewer blocks.
    pub resolver_concentration: f64,
}

impl Country {
    /// Samples a coordinate inside the country's populated extent.
    pub fn sample_location<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        let lat = self.lat + rng.gen_range(-self.lat_spread..=self.lat_spread);
        let lon = self.lon + rng.gen_range(-self.lon_spread..=self.lon_spread);
        (lat.clamp(-89.9, 89.9), wrap_lon(lon))
    }
}

fn wrap_lon(lon: f64) -> f64 {
    let mut l = lon;
    while l > 180.0 {
        l -= 360.0;
    }
    while l < -180.0 {
        l += 360.0;
    }
    l
}

macro_rules! country {
    ($code:literal, $name:literal, $cont:ident, $lat:literal, $lon:literal,
     $lat_s:literal, $lon_s:literal, $users:literal, $atlas:literal, $conc:literal) => {
        Country {
            code: $code,
            name: $name,
            continent: Continent::$cont,
            lat: $lat,
            lon: $lon,
            lat_spread: $lat_s,
            lon_spread: $lon_s,
            user_weight: $users,
            atlas_weight: $atlas,
            resolver_concentration: $conc,
        }
    };
}

/// The country table. Order is stable; [`CountryId`] indexes into it.
static COUNTRIES: &[Country] = &[
    // -- Europe: modest user share, enormous Atlas share --
    country!("NL", "Netherlands", Europe, 52.2, 5.3, 1.2, 2.2, 1.6, 14.0, 0.5),
    country!("DE", "Germany", Europe, 51.0, 10.0, 2.8, 4.0, 6.0, 16.0, 0.5),
    country!("FR", "France", Europe, 46.6, 2.4, 3.5, 4.0, 4.5, 10.0, 0.5),
    country!("GB", "United Kingdom", Europe, 53.0, -1.5, 3.0, 2.5, 5.0, 10.0, 0.5),
    country!("ES", "Spain", Europe, 40.0, -3.5, 3.0, 4.5, 3.0, 4.0, 0.5),
    country!("IT", "Italy", Europe, 42.8, 12.5, 3.5, 3.5, 3.5, 4.5, 0.5),
    country!("PL", "Poland", Europe, 52.0, 19.0, 2.5, 4.0, 2.5, 3.0, 0.5),
    country!("SE", "Sweden", Europe, 59.3, 15.0, 3.5, 3.0, 1.2, 3.5, 0.5),
    country!("CZ", "Czechia", Europe, 49.8, 15.5, 1.2, 3.0, 1.0, 3.0, 0.5),
    country!("RO", "Romania", Europe, 45.9, 25.0, 2.0, 3.5, 1.4, 2.0, 0.5),
    country!("DK", "Denmark", Europe, 55.9, 10.0, 1.2, 2.2, 0.8, 2.2, 0.5),
    country!("UA", "Ukraine", Europe, 49.0, 32.0, 3.0, 5.5, 1.8, 1.5, 0.5),
    country!("RU", "Russia", Europe, 55.7, 44.0, 5.0, 18.0, 6.5, 2.5, 0.55),
    country!("TR", "Turkey", Europe, 39.5, 33.0, 2.5, 7.0, 2.8, 0.8, 0.6),
    // -- North America: large user share, reasonable Atlas --
    country!("US", "United States", NorthAmerica, 39.5, -97.5, 8.0, 22.0, 14.0, 9.0, 0.5),
    country!("CA", "Canada", NorthAmerica, 47.5, -92.0, 4.5, 22.0, 2.0, 1.6, 0.5),
    country!("MX", "Mexico", NorthAmerica, 23.5, -102.0, 5.5, 7.0, 2.4, 0.3, 0.6),
    // -- South America: sparse Atlas, AMPATH-connected east coast --
    country!("BR", "Brazil", SouthAmerica, -14.0, -51.0, 12.0, 10.0, 4.5, 0.7, 0.6),
    country!("AR", "Argentina", SouthAmerica, -34.5, -64.0, 8.0, 5.0, 1.5, 0.3, 0.6),
    country!("CL", "Chile", SouthAmerica, -33.0, -70.8, 10.0, 1.2, 0.8, 0.2, 0.6),
    country!("PE", "Peru", SouthAmerica, -9.5, -75.5, 5.5, 3.5, 0.7, 0.1, 0.6),
    country!("CO", "Colombia", SouthAmerica, 4.5, -73.5, 4.5, 4.0, 1.0, 0.15, 0.6),
    country!("VE", "Venezuela", SouthAmerica, 8.0, -66.0, 3.0, 4.5, 0.6, 0.05, 0.6),
    // -- Asia: huge user share, Atlas nearly absent in China/Korea --
    country!("CN", "China", Asia, 33.0, 108.0, 9.0, 15.0, 16.0, 0.15, 0.7),
    country!("KR", "South Korea", Asia, 36.5, 127.8, 1.8, 1.8, 3.0, 0.25, 0.8),
    country!("JP", "Japan", Asia, 36.0, 138.5, 4.5, 5.0, 4.5, 1.2, 0.6),
    country!("IN", "India", Asia, 21.5, 79.0, 9.0, 9.0, 7.0, 0.7, 0.85),
    country!("ID", "Indonesia", Asia, -3.0, 113.0, 4.5, 14.0, 2.8, 0.5, 0.7),
    country!("TH", "Thailand", Asia, 15.5, 101.0, 4.5, 3.0, 1.6, 0.2, 0.7),
    country!("VN", "Vietnam", Asia, 16.5, 106.5, 6.5, 2.0, 1.8, 0.15, 0.7),
    country!("SG", "Singapore", Asia, 1.35, 103.8, 0.25, 0.25, 0.6, 0.8, 0.5),
    country!("SA", "Saudi Arabia", Asia, 24.0, 45.0, 5.0, 7.0, 1.2, 0.15, 0.65),
    country!("AE", "UAE", Asia, 24.2, 54.5, 1.2, 2.0, 0.7, 0.3, 0.6),
    country!("IR", "Iran", Asia, 32.5, 53.5, 5.0, 7.0, 1.8, 0.25, 0.7),
    country!("PK", "Pakistan", Asia, 30.0, 70.0, 5.0, 5.0, 1.4, 0.1, 0.75),
    country!("BD", "Bangladesh", Asia, 23.8, 90.3, 2.2, 2.2, 1.0, 0.08, 0.75),
    country!("PH", "Philippines", Asia, 12.5, 122.0, 5.5, 4.0, 1.4, 0.15, 0.7),
    // -- Africa --
    country!("EG", "Egypt", Africa, 28.0, 30.5, 4.0, 4.0, 1.6, 0.15, 0.7),
    country!("ZA", "South Africa", Africa, -29.0, 25.0, 4.0, 5.5, 1.0, 0.5, 0.6),
    country!("NG", "Nigeria", Africa, 9.0, 8.0, 4.0, 4.5, 1.4, 0.1, 0.7),
    country!("KE", "Kenya", Africa, 0.3, 37.5, 2.5, 3.0, 0.6, 0.12, 0.7),
    country!("MA", "Morocco", Africa, 32.0, -6.5, 3.0, 3.5, 0.6, 0.1, 0.7),
    // -- Oceania --
    country!("AU", "Australia", Oceania, -28.0, 140.0, 8.0, 14.0, 1.6, 1.4, 0.5),
    country!("NZ", "New Zealand", Oceania, -41.5, 173.5, 4.0, 3.5, 0.4, 0.4, 0.5),
];

/// The full country table.
pub fn countries() -> &'static [Country] {
    COUNTRIES
}

/// Looks a country up by code.
pub fn country_by_code(code: &str) -> Option<(CountryId, &'static Country)> {
    COUNTRIES
        .iter()
        .enumerate()
        .find(|(_, c)| c.code == code)
        .map(|(i, c)| (CountryId(i as u16), c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn table_is_nontrivial_and_indexed() {
        assert!(countries().len() >= 40);
        let (id, c) = country_by_code("NL").unwrap();
        assert_eq!(c.name, "Netherlands");
        assert_eq!(id.get().code, "NL");
        assert!(country_by_code("XX").is_none());
    }

    #[test]
    fn atlas_skew_is_european() {
        // The documented Atlas bias: Europe's share of Atlas weight must be
        // much higher than its share of user weight.
        let total_users: f64 = countries().iter().map(|c| c.user_weight).sum();
        let total_atlas: f64 = countries().iter().map(|c| c.atlas_weight).sum();
        let eu_users: f64 = countries()
            .iter()
            .filter(|c| c.continent == Continent::Europe)
            .map(|c| c.user_weight)
            .sum();
        let eu_atlas: f64 = countries()
            .iter()
            .filter(|c| c.continent == Continent::Europe)
            .map(|c| c.atlas_weight)
            .sum();
        let user_share = eu_users / total_users;
        let atlas_share = eu_atlas / total_atlas;
        assert!(
            atlas_share > 1.8 * user_share,
            "atlas EU share {atlas_share:.2} vs user share {user_share:.2}"
        );
        assert!(atlas_share > 0.55, "Atlas should be mostly European");
    }

    #[test]
    fn china_has_users_but_no_atlas() {
        let (_, cn) = country_by_code("CN").unwrap();
        let total_users: f64 = countries().iter().map(|c| c.user_weight).sum();
        let total_atlas: f64 = countries().iter().map(|c| c.atlas_weight).sum();
        assert!(cn.user_weight / total_users > 0.10);
        assert!(cn.atlas_weight / total_atlas < 0.01);
    }

    #[test]
    fn sampled_locations_are_valid_and_near_center() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for c in countries() {
            for _ in 0..50 {
                let (lat, lon) = c.sample_location(&mut rng);
                assert!((-90.0..=90.0).contains(&lat), "{}: lat {lat}", c.code);
                assert!((-180.0..=180.0).contains(&lon), "{}: lon {lon}", c.code);
                assert!((lat - c.lat).abs() <= c.lat_spread + 1e-9);
            }
        }
    }

    #[test]
    fn continent_tags_unique_per_variant() {
        let tags = [
            Continent::Europe.tag(),
            Continent::NorthAmerica.tag(),
            Continent::SouthAmerica.tag(),
            Continent::Asia.tag(),
            Continent::Africa.tag(),
            Continent::Oceania.tag(),
        ];
        let set: std::collections::HashSet<_> = tags.iter().collect();
        assert_eq!(set.len(), tags.len());
    }

    #[test]
    fn wrap_lon_wraps() {
        assert_eq!(super::wrap_lon(190.0), -170.0);
        assert_eq!(super::wrap_lon(-190.0), 170.0);
        assert_eq!(super::wrap_lon(45.0), 45.0);
    }
}
