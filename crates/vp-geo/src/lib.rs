//! Geolocation substrate for the Verfploeter reproduction.
//!
//! The paper geolocates every responding /24 with MaxMind ("accuracy of this
//! geolocation is considered reasonable at the country level", §4) and draws
//! its coverage and load maps in two-degree geographic bins (Figs. 2–4).
//! This crate supplies the synthetic equivalent:
//!
//! * [`world`] — a country table with internet-user weights (where blocks
//!   live), RIPE Atlas deployment weights (strongly Europe-skewed, the
//!   documented bias the paper leans on), and geographic extents to sample
//!   concrete coordinates from.
//! * [`db`] — [`GeoDb`], the MaxMind stand-in: a `/24 → (country, lat, lon)`
//!   database built by the topology generator. A configurable sliver of
//!   blocks is deliberately absent, reproducing Table 4's "no location" row.
//! * [`bins`] — [`GeoBin`] two-degree binning and [`BinnedMap`]
//!   accumulation, the data structure behind every map figure.

pub mod bins;
pub mod db;
pub mod dist;
pub mod world;

pub use bins::{BinnedMap, GeoBin};
pub use db::{GeoDb, GeoLoc};
pub use dist::distance_km;
pub use world::{countries, Continent, Country, CountryId};
