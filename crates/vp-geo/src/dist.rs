//! Great-circle distance, used for PoP placement and hot-potato IGP costs.

/// Approximate great-circle distance between two coordinates, in km
/// (haversine on a spherical Earth of radius 6371 km).
pub fn distance_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (la1, lo1, la2, lo2) = (
        lat1.to_radians(),
        lon1.to_radians(),
        lat2.to_radians(),
        lon2.to_radians(),
    );
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * 6371.0 * a.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance() {
        assert!(distance_km(52.0, 5.0, 52.0, 5.0) < 1e-9);
    }

    #[test]
    fn known_distance_ams_lax() {
        // Amsterdam (52.3, 4.9) to Los Angeles (34.05, -118.25) ≈ 8960 km.
        let d = distance_km(52.3, 4.9, 34.05, -118.25);
        assert!((8800.0..9200.0).contains(&d), "got {d}");
    }

    #[test]
    fn symmetric() {
        let a = distance_km(10.0, 20.0, -30.0, 140.0);
        let b = distance_km(-30.0, 140.0, 10.0, 20.0);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let d = distance_km(0.0, 0.0, 0.0, 180.0);
        assert!((d - 6371.0 * std::f64::consts::PI).abs() < 1.0);
    }
}
