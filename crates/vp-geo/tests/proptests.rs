//! Property-based tests of the geolocation substrate.

use proptest::prelude::*;
use vp_geo::{distance_km, BinnedMap, GeoBin, GeoDb, GeoLoc};

proptest! {
    /// Binning is a function: equal coordinates map to equal bins, and the
    /// bin center lands back in the same bin.
    #[test]
    fn bin_center_roundtrip(lat in -89.9f64..89.9, lon in -179.9f64..179.9) {
        let bin = GeoBin::containing(lat, lon);
        let (clat, clon) = bin.center();
        prop_assert_eq!(GeoBin::containing(clat, clon), bin);
        // 2-degree bins: the coordinate is within 2 degrees of the center.
        prop_assert!((clat - lat).abs() <= 2.0);
        prop_assert!((clon - lon).abs() <= 2.0);
    }

    /// Accumulated totals equal the sum of inserted weights, regardless of
    /// where the points fall.
    #[test]
    fn binned_map_conserves_weight(
        points in prop::collection::vec(
            (-89.9f64..89.9, -179.9f64..179.9, 0u8..4, 0.0f64..100.0),
            0..100,
        ),
    ) {
        let mut m: BinnedMap<u8> = BinnedMap::new();
        let mut expected = 0.0;
        for (lat, lon, key, w) in &points {
            m.add(*lat, *lon, *key, *w);
            expected += w;
        }
        prop_assert!((m.total() - expected).abs() < 1e-6);
        let by_key: f64 = m.totals_by_key().values().sum();
        prop_assert!((by_key - expected).abs() < 1e-6);
        prop_assert!(m.max_bin_total() <= expected + 1e-9);
        // Rows cover every bin exactly once.
        prop_assert_eq!(m.rows().len(), m.bin_count());
    }

    /// Distance is a semi-metric: non-negative, symmetric, zero on equal
    /// points, bounded by half the Earth's circumference.
    #[test]
    fn distance_semi_metric(
        lat1 in -89.0f64..89.0, lon1 in -179.0f64..179.0,
        lat2 in -89.0f64..89.0, lon2 in -179.0f64..179.0,
    ) {
        let d = distance_km(lat1, lon1, lat2, lon2);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= 6371.0 * std::f64::consts::PI + 1.0);
        let back = distance_km(lat2, lon2, lat1, lon1);
        prop_assert!((d - back).abs() < 1e-6);
        prop_assert!(distance_km(lat1, lon1, lat1, lon1) < 1e-9);
    }

    /// The GeoDb behaves as a map under arbitrary insert sequences.
    #[test]
    fn geodb_map_semantics(
        inserts in prop::collection::vec((0u32..500, 0u16..40, -80.0f64..80.0), 0..200),
    ) {
        let mut db = GeoDb::new();
        let mut model = std::collections::HashMap::new();
        for (block, country, lat) in &inserts {
            let loc = GeoLoc { country: vp_geo::CountryId(*country), lat: *lat, lon: 0.0 };
            db.insert(vp_net::Block24(*block), loc);
            model.insert(*block, *country);
        }
        prop_assert_eq!(db.len(), model.len());
        for (block, country) in &model {
            let got = db.locate(vp_net::Block24(*block)).unwrap();
            prop_assert_eq!(got.country.0, *country);
        }
        prop_assert_eq!(db.iter().count(), model.len());
    }
}
