//! The `vp-monitor` CLI: continuous catchment monitoring over vp-obs
//! artifacts.
//!
//! ```text
//! vp-monitor diff --rounds <dir> [--origins <file>] [--obs-report <file>]
//!                 [--source <name>] [--out <dir>]
//! vp-monitor watch --rounds <dir> [--origins <file>] [--obs-report <file>]
//!                  [--follow] [--until-rounds <n>] [--poll-ms <ms>]
//! vp-monitor check-bench --current <BENCH_scan.json> --baseline <file>
//!                        [--append <file>] [--host-factor <permille>]
//! vp-monitor validate <file|dir>...
//! vp-monitor profile <flight.json> [--top <n>] [--chrome <out.json>]
//! ```
//!
//! * `diff` runs the whole pipeline over a snapshot directory and writes
//!   the canonical `drift.json` + `alerts.json` under `--out` (printing
//!   the summary either way).
//! * `watch` replays the same sequence round by round through the
//!   streaming [`DriftTracker`], printing each alert transition as it
//!   happens. With `--follow` it keeps polling the directory and ingests
//!   new round files as they land — tailing a live `vp_daemon
//!   --snapshots`-style producer — until `--until-rounds` rounds have
//!   been seen (or forever without it).
//! * `check-bench` gates on the committed perf baseline trajectory; exit
//!   status 1 means a regression. `--host-factor 1300` scales the
//!   allowance for a host vouched 1.3× slower than the baseline machine,
//!   so portable baselines don't false-fail on slow CI boxes.
//! * `validate` checks any tagged document (obs report, drift, alert,
//!   bench baseline, daemon status, flight) against its embedded schema
//!   snapshot; directory arguments validate every `*.json` inside.
//! * `profile` renders the attribution report for a `vp-obs-flight/v1`
//!   document — per-phase self/total times, per-shard compute imbalance,
//!   critical-path estimate — and with `--chrome` also writes a
//!   chrome://tracing / Perfetto-loadable trace.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use vp_monitor::alert::AlertConfig;
use vp_monitor::bench::{build_baseline_doc, check_bench_scaled, parse_baseline, parse_bench_scan};
use vp_monitor::diff::Origins;
use vp_monitor::ingest::{
    list_round_files, load_obs_report, load_origins_sidecar, load_round_file, load_rounds_dir,
};
use vp_monitor::pipeline::run_diff_pipeline;
use vp_monitor::profile::{parse_flight_doc, render_report};
use vp_monitor::schema::validate_tagged;
use vp_monitor::stream::DriftTracker;

fn usage() -> ExitCode {
    eprintln!(
        "usage: vp-monitor <diff|watch|check-bench|validate|profile> [options]\n\
         \n\
         diff        --rounds <dir> [--origins <file>] [--obs-report <file>]\n\
         \x20           [--source <name>] [--out <dir>]\n\
         watch       --rounds <dir> [--origins <file>] [--obs-report <file>]\n\
         \x20           [--follow] [--until-rounds <n>] [--poll-ms <ms>]\n\
         check-bench --current <file> --baseline <file> [--append <file>]\n\
         \x20           [--host-factor <permille>]\n\
         validate    <file|dir>...\n\
         profile     <flight.json> [--top <n>] [--chrome <out.json>]"
    );
    ExitCode::from(2)
}

/// Options shared by `diff` and `watch` (the follow trio is watch-only;
/// `diff` rejects it).
struct DiffArgs {
    rounds: PathBuf,
    origins: Option<PathBuf>,
    obs_report: Option<PathBuf>,
    source: String,
    out: Option<PathBuf>,
    follow: bool,
    until_rounds: Option<u64>,
    poll_ms: u64,
}

fn parse_diff_args(args: &[String]) -> Result<DiffArgs, String> {
    let mut rounds = None;
    let mut origins = None;
    let mut obs_report = None;
    let mut source = None;
    let mut out = None;
    let mut follow = false;
    let mut until_rounds = None;
    let mut poll_ms = 500u64;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} wants a value", args[i]))
        };
        match args[i].as_str() {
            "--follow" => {
                follow = true;
                i += 1;
                continue;
            }
            "--rounds" => rounds = Some(PathBuf::from(value(i)?)),
            "--origins" => origins = Some(PathBuf::from(value(i)?)),
            "--obs-report" => obs_report = Some(PathBuf::from(value(i)?)),
            "--source" => source = Some(value(i)?.clone()),
            "--out" => out = Some(PathBuf::from(value(i)?)),
            "--until-rounds" => {
                until_rounds =
                    Some(value(i)?.parse().map_err(|e| format!("--until-rounds: {e}"))?);
            }
            "--poll-ms" => {
                poll_ms = value(i)?.parse().map_err(|e| format!("--poll-ms: {e}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 2;
    }
    let rounds = rounds.ok_or("--rounds is required")?;
    let source = source.unwrap_or_else(|| {
        rounds
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "rounds".to_owned())
    });
    Ok(DiffArgs {
        rounds,
        origins,
        obs_report,
        source,
        out,
        follow,
        until_rounds,
        poll_ms,
    })
}

/// Loads everything a diff/watch run needs.
fn load_inputs(
    args: &DiffArgs,
) -> Result<
    (
        Vec<verfploeter::catchment::CatchmentMap>,
        Option<Origins>,
        Option<BTreeMap<u32, u64>>,
    ),
    String,
> {
    let rounds = load_rounds_dir(&args.rounds)?;
    let origins = match &args.origins {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            Some(vp_monitor::ingest::parse_origins(
                &text,
                &path.display().to_string(),
            )?)
        }
        None => load_origins_sidecar(&args.rounds)?,
    };
    let durations = match &args.obs_report {
        Some(path) => Some(load_obs_report(path)?.round_durations()),
        None => None,
    };
    Ok((rounds, origins, durations))
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let args = parse_diff_args(args)?;
    if args.follow || args.until_rounds.is_some() {
        return Err("diff runs once over a complete directory; use watch --follow".to_owned());
    }
    let (rounds, origins, durations) = load_inputs(&args)?;
    let out = run_diff_pipeline(
        &args.source,
        &rounds,
        origins.as_ref(),
        durations.as_ref(),
        &AlertConfig::default(),
    );
    println!("{}", out.summary_text());
    for t in &out.transitions {
        println!("  {t}");
    }
    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        for (name, doc) in [("drift.json", &out.drift_doc), ("alerts.json", &out.alert_doc)] {
            let path = dir.join(name);
            let text = serde_json::to_string_pretty(doc)
                .map_err(|e| format!("serialize {name}: {e}"))?;
            std::fs::write(&path, text)
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            println!("wrote {}", path.display());
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Rolling-window width for the watch tracker, matching the daemon's
/// default status windows.
const WATCH_WINDOW: usize = 8;

fn cmd_watch(args: &[String]) -> Result<ExitCode, String> {
    let args = parse_diff_args(args)?;
    if args.out.is_some() {
        return Err("watch does not write documents; use diff --out".to_owned());
    }
    // Origins and durations load once up front; round files stream.
    let origins = match &args.origins {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            Some(vp_monitor::ingest::parse_origins(
                &text,
                &path.display().to_string(),
            )?)
        }
        None => load_origins_sidecar(&args.rounds)?,
    };
    let durations = match &args.obs_report {
        Some(path) => Some(load_obs_report(path)?.round_durations()),
        None => None,
    };

    // The same streaming tracker the daemon publishes from, proven
    // byte-equal to the batch pipeline — so plain `watch` prints exactly
    // what `diff` computes, and `--follow` extends it to a live tail.
    let mut tracker = DriftTracker::new(AlertConfig::default(), WATCH_WINDOW, origins);
    let mut seen = 0usize;
    'tail: loop {
        let files = list_round_files(&args.rounds)?;
        while seen < files.len() {
            if args
                .until_rounds
                .is_some_and(|n| tracker.rounds_ingested() >= n)
            {
                break 'tail;
            }
            let map = load_round_file(&files[seen])?;
            seen += 1;
            let dur = durations
                .as_ref()
                .and_then(|m| m.get(&tracker.next_round()).copied());
            let step = tracker.observe_round(map, dur);
            if let Some(d) = &step.diff {
                println!(
                    "round {r}: {stable} stable, {flipped} flipped ({rate} permille), \
                     {to_nr} to-NR, {from_nr} from-NR, {blocks} blocks",
                    r = d.round,
                    stable = d.stable,
                    flipped = d.flipped,
                    rate = d.flip_rate_permille,
                    to_nr = d.to_nr,
                    from_nr = d.from_nr,
                    blocks = d.cur_blocks,
                );
            }
            for t in &step.transitions {
                println!("  ** {t}");
            }
        }
        let reached = args
            .until_rounds
            .is_some_and(|n| tracker.rounds_ingested() >= n);
        if reached || !args.follow {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(args.poll_ms));
    }
    if tracker.rounds_ingested() == 0 {
        return Err(format!("no r*.json round files in {}", args.rounds.display()));
    }
    let alerts = tracker.alerts_snapshot();
    let active = alerts.iter().filter(|a| a.cleared_round.is_none()).count();
    println!("{} alerts total, {active} still active", alerts.len());
    Ok(ExitCode::SUCCESS)
}

fn cmd_check_bench(args: &[String]) -> Result<ExitCode, String> {
    let mut current = None;
    let mut baseline = None;
    let mut append = None;
    let mut host_factor: u64 = 1000;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} wants a value", args[i]))
        };
        match args[i].as_str() {
            "--current" => current = Some(PathBuf::from(value(i)?)),
            "--baseline" => baseline = Some(PathBuf::from(value(i)?)),
            "--append" => append = Some(PathBuf::from(value(i)?)),
            "--host-factor" => {
                host_factor = value(i)?
                    .parse()
                    .map_err(|e| format!("--host-factor: {e}"))?;
                if host_factor == 0 {
                    return Err("--host-factor must be a positive permille value".to_owned());
                }
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 2;
    }
    let current = current.ok_or("--current is required")?;
    let baseline_path = baseline.ok_or("--baseline is required")?;

    let current_doc = parse_bench_scan(
        &std::fs::read_to_string(&current)
            .map_err(|e| format!("cannot read {}: {e}", current.display()))?,
        &current.display().to_string(),
    )?;
    let baseline_doc = parse_baseline(
        &std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?,
        &baseline_path.display().to_string(),
    )?;

    let verdict = check_bench_scaled(&current_doc, &baseline_doc, host_factor);
    for line in verdict.report_lines() {
        println!("{line}");
    }
    if verdict.regressed() {
        eprintln!("check-bench: perf regression against committed baseline");
        return Ok(ExitCode::FAILURE);
    }
    if let Some(path) = append {
        let doc = build_baseline_doc(&baseline_doc, Some(&current_doc));
        let text =
            serde_json::to_string_pretty(&doc).map_err(|e| format!("serialize baseline: {e}"))?;
        std::fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("appended run {} to {}", current_doc.run, path.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_validate(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() {
        return Err("validate wants at least one file or directory".to_owned());
    }
    let mut failures = 0usize;
    for arg in args {
        let path = PathBuf::from(arg);
        // A directory argument means every *.json document inside it.
        let targets = if path.is_dir() {
            let entries = std::fs::read_dir(&path)
                .map_err(|e| format!("cannot read {arg}: {e}"))?;
            let mut files = Vec::new();
            for entry in entries {
                let entry = entry.map_err(|e| format!("cannot read {arg}: {e}"))?;
                let p = entry.path();
                if p.extension().is_some_and(|ext| ext == "json") {
                    files.push(p);
                }
            }
            files.sort_unstable();
            if files.is_empty() {
                return Err(format!("{arg}: no *.json documents inside"));
            }
            files
        } else {
            vec![path]
        };
        for file in targets {
            let name = file.display().to_string();
            let text =
                std::fs::read_to_string(&file).map_err(|e| format!("cannot read {name}: {e}"))?;
            let doc =
                serde_json::from_str(&text).map_err(|e| format!("{name}: invalid JSON: {e}"))?;
            let errors = validate_tagged(&doc);
            if errors.is_empty() {
                println!("{name}: ok");
            } else {
                failures += 1;
                for e in &errors {
                    eprintln!("{name}: {e}");
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("validate: {failures} document(s) failed");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_profile(args: &[String]) -> Result<ExitCode, String> {
    let mut file = None;
    let mut top_n = 8usize;
    let mut chrome = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} wants a value", args[i]))
        };
        match args[i].as_str() {
            "--top" => {
                top_n = value(i)?.parse().map_err(|e| format!("--top: {e}"))?;
                i += 2;
            }
            "--chrome" => {
                chrome = Some(PathBuf::from(value(i)?));
                i += 2;
            }
            other if file.is_none() && !other.starts_with("--") => {
                file = Some(PathBuf::from(other));
                i += 1;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let file = file.ok_or("profile wants a flight document path")?;
    let name = file.display().to_string();
    let text =
        std::fs::read_to_string(&file).map_err(|e| format!("cannot read {name}: {e}"))?;
    let value = serde_json::from_str(&text).map_err(|e| format!("{name}: invalid JSON: {e}"))?;
    // A document that fails its schema could still half-parse; refuse it
    // outright so the report never quietly elides fields.
    let errors = validate_tagged(&value);
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("{name}: {e}");
        }
        return Err(format!("{name}: not a valid vp-obs-flight/v1 document"));
    }
    let doc = parse_flight_doc(&value, &name)?;
    print!("{}", render_report(&doc, top_n));
    if let Some(path) = chrome {
        std::fs::write(&path, doc.to_chrome_trace())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("wrote chrome trace to {}", path.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    // vp-lint: allow(d2): the CLI reads its own argv; no measurement-path entropy.
    let args: Vec<String> = std::env::args().collect();
    let Some(command) = args.get(1) else {
        return usage();
    };
    let rest = &args[2..];
    let result = match command.as_str() {
        "diff" => cmd_diff(rest),
        "watch" => cmd_watch(rest),
        "check-bench" => cmd_check_bench(rest),
        "validate" => cmd_validate(rest),
        "profile" => cmd_profile(rest),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("vp-monitor {command}: {e}");
            ExitCode::from(2)
        }
    }
}
