//! Loading monitoring inputs: catchment-round directories, the optional
//! block→origin-AS sidecar, and `vp-obs-report/v1` documents.
//!
//! The canonical source is a snapshot directory written by
//! `fig9_stability --snapshots <dir>`:
//!
//! ```text
//! rounds/
//!   origins.json   (optional `vp-monitor-origins/v1` sidecar)
//!   r000.json      (CatchmentMap for round 0)
//!   r001.json
//!   ...
//! ```
//!
//! Round files are ordered by file *name*, never by directory order or
//! mtime — the ingest layer is as deterministic as everything downstream
//! of it. All fallible paths return `Err(String)` with the offending file
//! named; the library never panics on malformed input.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde_json::Value;
use verfploeter::catchment::CatchmentMap;
use vp_net::{Asn, Block24};

use crate::diff::Origins;

/// Lists the `r*.json` catchment snapshots in `dir`, sorted by file name
/// (lexicographic == numeric for the zero-padded `r000.json` scheme).
/// Non-round files (`origins.json`, anything not `r*.json`) are skipped.
/// An empty list is not an error — `watch --follow` polls a directory
/// that may not have its first round yet.
pub fn list_round_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('r') && name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort_unstable();
    Ok(names.into_iter().map(|n| dir.join(n)).collect())
}

/// Loads one catchment-snapshot round file.
pub fn load_round_file(path: &Path) -> Result<CatchmentMap, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    CatchmentMap::from_json(&text)
        .map_err(|e| format!("{}: invalid catchment map: {e}", path.display()))
}

/// Loads every round snapshot in `dir` at once (the batch path; an empty
/// directory is an error here).
pub fn load_rounds_dir(dir: &Path) -> Result<Vec<CatchmentMap>, String> {
    let files = list_round_files(dir)?;
    if files.is_empty() {
        return Err(format!("no r*.json round files in {}", dir.display()));
    }
    files.iter().map(|p| load_round_file(p)).collect()
}

/// Parses the `vp-monitor-origins/v1` sidecar mapping each /24 block to
/// its origin AS, used to attribute flips per AS.
pub fn parse_origins(text: &str, what: &str) -> Result<Origins, String> {
    let doc: Value =
        serde_json::from_str(text).map_err(|e| format!("{what}: invalid JSON: {e}"))?;
    match doc.get("schema").and_then(Value::as_str) {
        Some("vp-monitor-origins/v1") => {}
        other => return Err(format!("{what}: unexpected schema {other:?}")),
    }
    let Some(map) = doc.get("origins").and_then(Value::as_object) else {
        return Err(format!("{what}: missing origins object"));
    };
    let mut origins: Origins = BTreeMap::new();
    for (block, asn) in map {
        let b: u32 = block
            .parse()
            .map_err(|_| format!("{what}: bad block key {block:?}"))?;
        let a = asn
            .as_u64()
            .and_then(|a| u32::try_from(a).ok())
            .ok_or_else(|| format!("{what}: bad ASN for block {block}"))?;
        origins.insert(Block24(b), Asn(a));
    }
    Ok(origins)
}

/// Loads the `origins.json` sidecar next to the round files, if present.
pub fn load_origins_sidecar(dir: &Path) -> Result<Option<Origins>, String> {
    let path = dir.join("origins.json");
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_origins(&text, &path.display().to_string()).map(Some)
}

/// Renders an [`Origins`] map as the canonical `vp-monitor-origins/v1`
/// sidecar document.
pub fn build_origins_doc(origins: &Origins) -> Value {
    let mut map = BTreeMap::new();
    for (block, asn) in origins {
        map.insert(block.0.to_string(), Value::U64(u64::from(asn.0)));
    }
    let mut doc = BTreeMap::new();
    doc.insert(
        "schema".to_owned(),
        Value::Str("vp-monitor-origins/v1".to_owned()),
    );
    doc.insert("origins".to_owned(), Value::Object(map));
    Value::Object(doc)
}

/// One scan entry of a `vp-obs-report/v1` document, reduced to the fields
/// the monitor consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanSummary {
    /// Dataset name, e.g. `"STV-3-23/r17"`.
    pub name: String,
    pub probes_sent: u64,
    pub blocks_mapped: u64,
    /// Sim-time bounds: scan span = `sim_end_ns - started_ns`.
    pub started_ns: u64,
    pub sim_end_ns: u64,
}

impl ScanSummary {
    /// Sim-time duration of the scan.
    pub fn duration_ns(&self) -> u64 {
        self.sim_end_ns.saturating_sub(self.started_ns)
    }
}

/// A parsed `vp-obs-report/v1` document (the monitor's view of it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsReportDoc {
    pub experiment: String,
    pub mode: String,
    pub scans: Vec<ScanSummary>,
}

impl ObsReportDoc {
    /// Maps `"<dataset>/r<N>"` scan names to per-round durations: index
    /// `N` → sim-time span. Scans without the round suffix are ignored.
    /// This is how fig9's obs report feeds the `scan-duration` alert rule.
    pub fn round_durations(&self) -> BTreeMap<u32, u64> {
        let mut durations = BTreeMap::new();
        for scan in &self.scans {
            if let Some(idx) = scan.name.rsplit_once("/r").and_then(|(_, n)| n.parse().ok()) {
                durations.insert(idx, scan.duration_ns());
            }
        }
        durations
    }
}

/// Parses a `vp-obs-report/v1` document from its JSON text.
pub fn parse_obs_report(text: &str, what: &str) -> Result<ObsReportDoc, String> {
    let doc: Value =
        serde_json::from_str(text).map_err(|e| format!("{what}: invalid JSON: {e}"))?;
    match doc.get("schema").and_then(Value::as_str) {
        Some("vp-obs-report/v1") => {}
        other => return Err(format!("{what}: unexpected schema {other:?}")),
    }
    let experiment = doc
        .get("experiment")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{what}: missing experiment"))?
        .to_owned();
    let mode = doc
        .get("mode")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{what}: missing mode"))?
        .to_owned();
    let mut scans = Vec::new();
    for (i, scan) in doc
        .get("scans")
        .and_then(Value::as_array)
        .map(Vec::as_slice)
        .unwrap_or(&[])
        .iter()
        .enumerate()
    {
        let field = |key: &str| -> Result<u64, String> {
            scan.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{what}: scans[{i}] missing {key}"))
        };
        scans.push(ScanSummary {
            name: scan
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{what}: scans[{i}] missing name"))?
                .to_owned(),
            probes_sent: field("probes_sent")?,
            blocks_mapped: field("blocks_mapped")?,
            started_ns: field("started_ns")?,
            sim_end_ns: field("sim_end_ns")?,
        });
    }
    Ok(ObsReportDoc {
        experiment,
        mode,
        scans,
    })
}

/// Loads and parses a `vp-obs-report/v1` file.
pub fn load_obs_report(path: &Path) -> Result<ObsReportDoc, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_obs_report(&text, &path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_bgp::SiteId;

    #[test]
    fn rounds_dir_sorts_by_name_and_skips_sidecars() {
        let dir = std::env::temp_dir().join("vp-monitor-ingest-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Write out of order; expect name order back.
        for (file, block) in [("r002.json", 30u32), ("r000.json", 10), ("r001.json", 20)] {
            let m = CatchmentMap::from_pairs(file, [(Block24(block), SiteId(0))]);
            std::fs::write(dir.join(file), m.to_json()).unwrap();
        }
        std::fs::write(dir.join("origins.json"), "{not json").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignore me").unwrap();
        let rounds = load_rounds_dir(&dir).unwrap();
        assert_eq!(rounds.len(), 3);
        assert_eq!(rounds[0].site_of(Block24(10)), Some(SiteId(0)));
        assert_eq!(rounds[2].site_of(Block24(30)), Some(SiteId(0)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_rounds_dir_is_an_error() {
        let dir = std::env::temp_dir().join("vp-monitor-ingest-empty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_rounds_dir(&dir).is_err());
        // ... but merely *listing* an empty directory is fine: the follow
        // path polls a directory whose first round hasn't landed yet.
        assert_eq!(list_round_files(&dir).unwrap(), Vec::<std::path::PathBuf>::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn origins_doc_roundtrips() {
        let mut origins: Origins = BTreeMap::new();
        origins.insert(Block24(7), Asn(64512));
        origins.insert(Block24(9), Asn(64513));
        let doc = build_origins_doc(&origins);
        let text = serde_json::to_string_pretty(&doc).unwrap();
        let back = parse_origins(&text, "test").unwrap();
        assert_eq!(back, origins);
        assert!(parse_origins("{}", "test").is_err());
        assert!(parse_origins("nope", "test").is_err());
    }

    #[test]
    fn obs_report_parses_and_extracts_round_durations() {
        let text = r#"{
            "schema": "vp-obs-report/v1",
            "experiment": "fig9_stability",
            "mode": "summary",
            "scans": [
                {"name": "STV-3-23/r0", "probes_sent": 10, "blocks_mapped": 9,
                 "started_ns": 0, "sim_end_ns": 500},
                {"name": "STV-3-23/r1", "probes_sent": 10, "blocks_mapped": 9,
                 "started_ns": 1000, "sim_end_ns": 1700},
                {"name": "SBV-5-15", "probes_sent": 3, "blocks_mapped": 3,
                 "started_ns": 0, "sim_end_ns": 10}
            ]
        }"#;
        let doc = parse_obs_report(text, "test").unwrap();
        assert_eq!(doc.experiment, "fig9_stability");
        assert_eq!(doc.scans.len(), 3);
        let durations = doc.round_durations();
        assert_eq!(durations.len(), 2); // the unnumbered scan is skipped
        assert_eq!(durations[&0], 500);
        assert_eq!(durations[&1], 700);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        assert!(parse_obs_report(r#"{"schema":"other/v1"}"#, "t").is_err());
        assert!(parse_obs_report("[]", "t").is_err());
    }
}
