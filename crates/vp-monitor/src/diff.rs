//! The drift diff engine: what changed between consecutive catchment maps.
//!
//! Mirrors the paper's §6.3 round classification (stable / flipped /
//! to-NR / from-NR — the Fig. 9 taxonomy, same semantics as
//! `verfploeter::stability::classify_rounds`) and extends it with the
//! operator-facing signals the alert evaluator consumes: per-round flip
//! rate, site load-share deltas, coverage changes, and per-AS flip
//! attribution (Table 7's view, computed incrementally).
//!
//! Everything is integer arithmetic in permille, so diffs — and the
//! documents built from them — are byte-stable across platforms.

use std::collections::BTreeMap;

use vp_net::{Asn, Block24};
use verfploeter::catchment::CatchmentMap;

/// Block → origin AS, from the `origins.json` sidecar the fig9 snapshot
/// writer emits. Without it, per-AS flip attribution is empty.
pub type Origins = BTreeMap<Block24, Asn>;

/// Everything that changed between one round and the next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundDiff {
    /// 1-based: diff of `rounds[round]` against `rounds[round - 1]`.
    pub round: u32,
    pub prev_name: String,
    pub cur_name: String,
    /// Fig. 9 taxonomy over the previous round's responders.
    pub stable: u64,
    pub flipped: u64,
    pub to_nr: u64,
    pub from_nr: u64,
    /// Responding blocks per round.
    pub prev_blocks: u64,
    pub cur_blocks: u64,
    /// `(cur - prev) * 1000 / prev`; negative = coverage shrank.
    pub coverage_delta_permille: i64,
    /// `flipped * 1000 / (stable + flipped)` — flips per continuing
    /// responder.
    pub flip_rate_permille: u64,
    /// Load share of each site in the current round, in permille of all
    /// responding blocks (keyed by raw `SiteId`).
    pub site_shares_permille: BTreeMap<u8, u64>,
    /// Max over sites of `|cur_share - prev_share|` (permille).
    pub max_share_delta_permille: u64,
    /// Flips attributed to the flipping block's origin AS (empty without
    /// an origins sidecar).
    pub flips_by_as: BTreeMap<u32, u64>,
}

fn site_shares(map: &CatchmentMap) -> BTreeMap<u8, u64> {
    let total = map.len() as u64;
    map.site_counts()
        .into_iter()
        .map(|(site, n)| (site.0, (n as u64) * 1000 / total.max(1)))
        .collect()
}

/// Diffs one consecutive round pair. `round` is the 1-based index of
/// `cur` in the sequence.
pub fn diff_rounds(
    prev: &CatchmentMap,
    cur: &CatchmentMap,
    round: u32,
    origins: Option<&Origins>,
) -> RoundDiff {
    let mut stable = 0u64;
    let mut flipped = 0u64;
    let mut to_nr = 0u64;
    let mut flips_by_as: BTreeMap<u32, u64> = BTreeMap::new();
    for (block, site) in prev.iter() {
        match cur.site_of(block) {
            Some(s) if s == site => stable += 1,
            Some(_) => {
                flipped += 1;
                if let Some(asn) = origins.and_then(|o| o.get(&block)) {
                    *flips_by_as.entry(asn.0).or_insert(0) += 1;
                }
            }
            None => to_nr += 1,
        }
    }
    let from_nr = cur.iter().filter(|(b, _)| prev.site_of(*b).is_none()).count() as u64;

    let prev_blocks = prev.len() as u64;
    let cur_blocks = cur.len() as u64;
    let coverage_delta_permille =
        (cur_blocks as i64 - prev_blocks as i64) * 1000 / (prev_blocks.max(1) as i64);
    let flip_rate_permille = flipped * 1000 / (stable + flipped).max(1);

    let prev_shares = site_shares(prev);
    let cur_shares = site_shares(cur);
    let mut max_share_delta_permille = 0u64;
    for site in prev_shares.keys().chain(cur_shares.keys()) {
        let p = prev_shares.get(site).copied().unwrap_or(0);
        let c = cur_shares.get(site).copied().unwrap_or(0);
        max_share_delta_permille = max_share_delta_permille.max(p.abs_diff(c));
    }

    RoundDiff {
        round,
        prev_name: prev.name.clone(),
        cur_name: cur.name.clone(),
        stable,
        flipped,
        to_nr,
        from_nr,
        prev_blocks,
        cur_blocks,
        coverage_delta_permille,
        flip_rate_permille,
        site_shares_permille: cur_shares,
        max_share_delta_permille,
        flips_by_as,
    }
}

/// Diffs a whole time-ordered round sequence: one [`RoundDiff`] per
/// consecutive pair (empty for fewer than two rounds).
pub fn diff_sequence(rounds: &[CatchmentMap], origins: Option<&Origins>) -> Vec<RoundDiff> {
    rounds
        .windows(2)
        .enumerate()
        .map(|(i, w)| diff_rounds(&w[0], &w[1], i as u32 + 1, origins)) // vp-lint: allow(g1): windows(2) yields exactly two elements.
        .collect()
}

/// Mergeable drift statistics over a window of rounds.
///
/// Obeys the workspace merge-algebra contract (`SimStats`, `Registry`,
/// `CatchmentMap`): [`DriftSummary::merge`] is associative and commutative
/// with [`DriftSummary::default`] as the identity — counts and per-AS maps
/// sum, extrema fold by max — so per-window summaries fold in any grouping
/// to the same totals. Lint rule d3 requires the explicit
/// `merge-tested(DriftSummary::merge)` marker for this crate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriftSummary {
    /// Round transitions summarized.
    pub rounds: u64,
    pub stable: u64,
    pub flipped: u64,
    pub to_nr: u64,
    pub from_nr: u64,
    /// Worst single round, for each alert signal.
    pub max_flipped: u64,
    pub max_flip_rate_permille: u64,
    /// Largest single-round coverage *drop* (permille, ≥ 0).
    pub max_coverage_drop_permille: u64,
    pub max_share_delta_permille: u64,
    /// Total flips per origin AS across the window.
    pub flips_by_as: BTreeMap<u32, u64>,
}

impl DriftSummary {
    /// The summary of a single round transition.
    pub fn from_diff(d: &RoundDiff) -> DriftSummary {
        DriftSummary {
            rounds: 1,
            stable: d.stable,
            flipped: d.flipped,
            to_nr: d.to_nr,
            from_nr: d.from_nr,
            max_flipped: d.flipped,
            max_flip_rate_permille: d.flip_rate_permille,
            max_coverage_drop_permille: (-d.coverage_delta_permille).max(0) as u64,
            max_share_delta_permille: d.max_share_delta_permille,
            flips_by_as: d.flips_by_as.clone(),
        }
    }

    /// Folds the diffs of a whole sequence into one summary.
    pub fn accumulate(diffs: &[RoundDiff]) -> DriftSummary {
        let mut sum = DriftSummary::default();
        for d in diffs {
            sum.merge(&DriftSummary::from_diff(d));
        }
        sum
    }

    /// Folds `other` in: counts and per-AS flips sum, extrema take the
    /// max. Associative and commutative with the empty summary as
    /// identity.
    pub fn merge(&mut self, other: &DriftSummary) {
        self.rounds += other.rounds;
        self.stable += other.stable;
        self.flipped += other.flipped;
        self.to_nr += other.to_nr;
        self.from_nr += other.from_nr;
        self.max_flipped = self.max_flipped.max(other.max_flipped);
        self.max_flip_rate_permille = self
            .max_flip_rate_permille
            .max(other.max_flip_rate_permille);
        self.max_coverage_drop_permille = self
            .max_coverage_drop_permille
            .max(other.max_coverage_drop_permille);
        self.max_share_delta_permille = self
            .max_share_delta_permille
            .max(other.max_share_delta_permille);
        for (asn, flips) in &other.flips_by_as {
            *self.flips_by_as.entry(*asn).or_insert(0) += flips;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_bgp::SiteId;

    fn map(name: &str, pairs: &[(u32, u8)]) -> CatchmentMap {
        CatchmentMap::from_pairs(name, pairs.iter().map(|&(b, s)| (Block24(b), SiteId(s))))
    }

    #[test]
    fn diff_matches_fig9_taxonomy() {
        let r0 = map("r0", &[(1, 0), (2, 0), (3, 1), (4, 1)]);
        let r1 = map("r1", &[(1, 0), (2, 1), (4, 1), (5, 0)]);
        let d = diff_rounds(&r0, &r1, 1, None);
        assert_eq!((d.stable, d.flipped, d.to_nr, d.from_nr), (2, 1, 1, 1));
        // Same numbers as verfploeter::stability::classify_rounds.
        let deltas = verfploeter::stability::classify_rounds(&[r0, r1]);
        assert_eq!(deltas[0].stable, d.stable);
        assert_eq!(deltas[0].flipped, d.flipped);
        assert_eq!(deltas[0].to_nr, d.to_nr);
        assert_eq!(deltas[0].from_nr, d.from_nr);
        // 1 flip among 3 continuing responders.
        assert_eq!(d.flip_rate_permille, 333);
        assert_eq!(d.prev_blocks, 4);
        assert_eq!(d.cur_blocks, 4);
        assert_eq!(d.coverage_delta_permille, 0);
    }

    #[test]
    fn share_deltas_and_coverage() {
        // r0: site0 has 750‰, site1 250‰; r1: site0 500‰, site1 500‰, and
        // coverage halves.
        let r0 = map("r0", &[(1, 0), (2, 0), (3, 0), (4, 1)]);
        let r1 = map("r1", &[(1, 0), (4, 1)]);
        let d = diff_rounds(&r0, &r1, 1, None);
        assert_eq!(d.site_shares_permille[&0], 500);
        assert_eq!(d.site_shares_permille[&1], 500);
        assert_eq!(d.max_share_delta_permille, 250);
        assert_eq!(d.coverage_delta_permille, -500);
        let sum = DriftSummary::from_diff(&d);
        assert_eq!(sum.max_coverage_drop_permille, 500);
    }

    #[test]
    fn flips_attribute_to_origin_as() {
        let r0 = map("r0", &[(1, 0), (2, 0)]);
        let r1 = map("r1", &[(1, 1), (2, 1)]);
        let origins: Origins = [(Block24(1), Asn(64500)), (Block24(2), Asn(64501))]
            .into_iter()
            .collect();
        let d = diff_rounds(&r0, &r1, 1, Some(&origins));
        assert_eq!(d.flips_by_as[&64500], 1);
        assert_eq!(d.flips_by_as[&64501], 1);
        // Without origins the attribution is empty but counts are intact.
        let bare = diff_rounds(&r0, &r1, 1, None);
        assert!(bare.flips_by_as.is_empty());
        assert_eq!(bare.flipped, 2);
    }

    #[test]
    fn sequence_diff_is_pairwise() {
        let rounds = vec![
            map("r0", &[(1, 0)]),
            map("r1", &[(1, 0)]),
            map("r2", &[(1, 1)]),
        ];
        let diffs = diff_sequence(&rounds, None);
        assert_eq!(diffs.len(), 2);
        assert_eq!(diffs[0].round, 1);
        assert_eq!(diffs[0].flipped, 0);
        assert_eq!(diffs[1].round, 2);
        assert_eq!(diffs[1].flipped, 1);
        assert!(diff_sequence(&rounds[..1], None).is_empty());
        assert!(diff_sequence(&[], None).is_empty());
    }

    #[test]
    fn summary_accumulates_sums_and_extrema() {
        let rounds = vec![
            map("r0", &[(1, 0), (2, 0), (3, 0), (4, 0)]),
            map("r1", &[(1, 1), (2, 0), (3, 0), (4, 0)]),
            map("r2", &[(1, 0), (2, 1), (3, 1), (4, 0)]),
        ];
        let diffs = diff_sequence(&rounds, None);
        let sum = DriftSummary::accumulate(&diffs);
        assert_eq!(sum.rounds, 2);
        assert_eq!(sum.flipped, 1 + 3);
        assert_eq!(sum.max_flipped, 3);
        assert_eq!(sum.stable, 3 + 1);
        // Accumulate == pairwise merge in any grouping.
        let mut left = DriftSummary::from_diff(&diffs[0]);
        left.merge(&DriftSummary::from_diff(&diffs[1]));
        assert_eq!(left, sum);
        let mut right = DriftSummary::from_diff(&diffs[1]);
        right.merge(&DriftSummary::from_diff(&diffs[0]));
        assert_eq!(right, sum);
    }
}
