//! Deterministic threshold + hysteresis alerting over round diffs.
//!
//! Four rules, all integer permille comparisons:
//!
//! * `flip-rate` — per-round site-flip rate above threshold. The paper's
//!   stable baseline is ~1‰ of responders flipping per round, an order of
//!   magnitude below responsiveness churn; a sustained excursion means a
//!   routing change, not noise.
//! * `load-skew` — a site's load share moved more than the bound in one
//!   round (the load-aware mapping signal: §5's motivation for watching
//!   per-site shares, and what an operator playbook keys on).
//! * `coverage-drop` — responding blocks fell by more than the bound
//!   (probe loss, a dead site, or a hitlist problem).
//! * `scan-duration` — a round's sim-time scan span blew past the
//!   baseline established from the first rounds (a scan that stops
//!   finishing on schedule can't drive a 15-minute cadence).
//!
//! Hysteresis: a rule must breach for `trigger_rounds` consecutive rounds
//! to fire and stay calm for `clear_rounds` consecutive rounds to clear,
//! so a single noisy round neither fires nor clears an alert. No wall
//! clock is involved anywhere — rounds are the only time axis — so the
//! same diff sequence always produces byte-identical alert documents.

use std::collections::BTreeMap;

use serde_json::Value;

use crate::diff::RoundDiff;

/// Alert thresholds and hysteresis windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertConfig {
    /// `flip-rate` fires above this many flips per 1000 continuing
    /// responders.
    pub flip_rate_permille: u64,
    /// `load-skew` fires when a site's share moves more than this.
    pub share_delta_permille: u64,
    /// `coverage-drop` fires when responding blocks fall more than this.
    pub coverage_drop_permille: u64,
    /// `scan-duration` fires when a round's scan span exceeds
    /// `baseline * blowup / 1000`.
    pub duration_blowup_permille: u64,
    /// Rounds used to establish the duration baseline (median).
    pub duration_baseline_rounds: u32,
    /// Consecutive breaching rounds before an alert fires.
    pub trigger_rounds: u32,
    /// Consecutive calm rounds before an active alert clears.
    pub clear_rounds: u32,
}

impl Default for AlertConfig {
    fn default() -> AlertConfig {
        AlertConfig {
            // Paper baseline: flips ≈ 1‰ per round; 5‰ sustained is drift.
            flip_rate_permille: 5,
            share_delta_permille: 50,
            coverage_drop_permille: 100,
            duration_blowup_permille: 1500,
            duration_baseline_rounds: 4,
            trigger_rounds: 2,
            clear_rounds: 2,
        }
    }
}

/// One fired alert (cleared or still active at end of sequence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// `flip-rate`, `load-skew`, `coverage-drop` or `scan-duration`.
    pub rule: String,
    /// Round whose breach completed the trigger window.
    pub fired_round: u32,
    /// Round that completed the clear window; `None` = active at end.
    pub cleared_round: Option<u32>,
    /// Worst observed value while breaching/active.
    pub peak_value: u64,
    /// Round where the peak occurred.
    pub peak_round: u32,
    /// The configured threshold the value is compared against.
    pub threshold: u64,
}

/// Per-rule hysteresis state.
#[derive(Debug, Clone, Default)]
struct Hysteresis {
    breaching: u32,
    calm: u32,
    /// Peak over the current breach window (pre-fire) or active alert.
    peak: u64,
    peak_round: u32,
    active: bool,
    fired_round: u32,
}

impl Hysteresis {
    /// Advances one round; returns a fired/cleared transition message.
    fn step(
        &mut self,
        rule: &'static str,
        round: u32,
        value: u64,
        threshold: u64,
        config: &AlertConfig,
        done: &mut Vec<Alert>,
    ) -> Option<String> {
        let breach = value > threshold;
        if breach {
            self.breaching += 1;
            self.calm = 0;
            if value > self.peak || self.breaching == 1 {
                self.peak = self.peak.max(value);
                if value >= self.peak {
                    self.peak_round = round;
                }
            }
            if !self.active && self.breaching >= config.trigger_rounds {
                self.active = true;
                self.fired_round = round;
                return Some(format!(
                    "round {round}: {rule} FIRED ({value} > {threshold} permille, \
                     {n} consecutive rounds)",
                    n = self.breaching
                ));
            }
        } else {
            self.breaching = 0;
            if self.active {
                self.calm += 1;
                if self.calm >= config.clear_rounds {
                    done.push(Alert {
                        rule: rule.to_owned(),
                        fired_round: self.fired_round,
                        cleared_round: Some(round),
                        peak_value: self.peak,
                        peak_round: self.peak_round,
                        threshold,
                    });
                    let fired = self.fired_round;
                    *self = Hysteresis::default();
                    return Some(format!(
                        "round {round}: {rule} cleared (fired round {fired})"
                    ));
                }
            } else {
                self.peak = 0;
                self.peak_round = 0;
            }
        }
        None
    }

    /// Flushes a still-active alert at end of sequence.
    fn finish(&self, rule: &str, threshold: u64, done: &mut Vec<Alert>) {
        if self.active {
            done.push(Alert {
                rule: rule.to_owned(),
                fired_round: self.fired_round,
                cleared_round: None,
                peak_value: self.peak,
                peak_round: self.peak_round,
                threshold,
            });
        }
    }
}

/// The incremental alert evaluator. Feed it round diffs in order (plus
/// optional sim-time scan durations); collect the final alert set with
/// [`Evaluator::finish`]. `watch` mode feeds it incrementally and prints
/// the transition messages [`Evaluator::observe`] returns.
#[derive(Debug, Clone)]
pub struct Evaluator {
    config: AlertConfig,
    flip: Hysteresis,
    skew: Hysteresis,
    coverage: Hysteresis,
    duration: Hysteresis,
    /// First-rounds durations, until the baseline is established.
    duration_window: Vec<u64>,
    duration_baseline: Option<u64>,
    rounds_seen: u64,
    done: Vec<Alert>,
}

impl Evaluator {
    pub fn new(config: AlertConfig) -> Evaluator {
        Evaluator {
            config,
            flip: Hysteresis::default(),
            skew: Hysteresis::default(),
            coverage: Hysteresis::default(),
            duration: Hysteresis::default(),
            duration_window: Vec::new(),
            duration_baseline: None,
            rounds_seen: 0,
            done: Vec::new(),
        }
    }

    pub fn config(&self) -> &AlertConfig {
        &self.config
    }

    pub fn rounds_seen(&self) -> u64 {
        self.rounds_seen
    }

    /// Integer median of the collected baseline window.
    fn establish_baseline(window: &[u64]) -> u64 {
        let mut sorted = window.to_vec();
        sorted.sort_unstable();
        sorted[sorted.len() / 2] // vp-lint: allow(g1): observe() only establishes a baseline from a full window.
    }

    /// Advances the evaluator by one round. `duration_ns` is the round's
    /// sim-time scan span (from the obs report), if known. Returns
    /// human-readable fired/cleared transitions for live display.
    pub fn observe(&mut self, d: &RoundDiff, duration_ns: Option<u64>) -> Vec<String> {
        self.rounds_seen += 1;
        let mut transitions = Vec::new();
        let c = self.config.clone();

        if let Some(t) = self.flip.step(
            "flip-rate",
            d.round,
            d.flip_rate_permille,
            c.flip_rate_permille,
            &c,
            &mut self.done,
        ) {
            transitions.push(t);
        }
        if let Some(t) = self.skew.step(
            "load-skew",
            d.round,
            d.max_share_delta_permille,
            c.share_delta_permille,
            &c,
            &mut self.done,
        ) {
            transitions.push(t);
        }
        let drop = (-d.coverage_delta_permille).max(0) as u64;
        if let Some(t) = self.coverage.step(
            "coverage-drop",
            d.round,
            drop,
            c.coverage_drop_permille,
            &c,
            &mut self.done,
        ) {
            transitions.push(t);
        }

        if let Some(dur) = duration_ns {
            match self.duration_baseline {
                None => {
                    self.duration_window.push(dur);
                    if self.duration_window.len() >= c.duration_baseline_rounds.max(1) as usize {
                        self.duration_baseline =
                            Some(Self::establish_baseline(&self.duration_window));
                    }
                }
                Some(baseline) => {
                    // Compare in permille of baseline so the threshold is
                    // scale-free; value 1000 = exactly baseline.
                    let rel = dur.saturating_mul(1000) / baseline.max(1);
                    if let Some(t) = self.duration.step(
                        "scan-duration",
                        d.round,
                        rel,
                        c.duration_blowup_permille,
                        &c,
                        &mut self.done,
                    ) {
                        transitions.push(t);
                    }
                }
            }
        }
        transitions
    }

    /// Live view of the alert state *as of the last observed round*:
    /// cleared alerts plus every still-active one (with `cleared_round:
    /// None`), sorted by `(fired_round, rule)` exactly like
    /// [`Evaluator::finish`]. The daemon status surface publishes this
    /// after every round; calling it never perturbs the hysteresis state,
    /// so a snapshot taken after the final round is byte-identical to what
    /// `finish` would return.
    pub fn snapshot(&self) -> Vec<Alert> {
        let mut all = self.done.clone();
        let c = &self.config;
        self.flip.finish("flip-rate", c.flip_rate_permille, &mut all);
        self.skew.finish("load-skew", c.share_delta_permille, &mut all);
        self.coverage
            .finish("coverage-drop", c.coverage_drop_permille, &mut all);
        self.duration
            .finish("scan-duration", c.duration_blowup_permille, &mut all);
        all.sort_by(|a, b| (a.fired_round, &a.rule).cmp(&(b.fired_round, &b.rule)));
        all
    }

    /// Ends the sequence: still-active alerts are flushed with
    /// `cleared_round: null`, and the full set comes back sorted by
    /// `(fired_round, rule)`.
    pub fn finish(self) -> Vec<Alert> {
        self.snapshot()
    }
}

fn config_value(c: &AlertConfig) -> Value {
    let mut obj = BTreeMap::new();
    obj.insert("flip_rate_permille".to_owned(), Value::U64(c.flip_rate_permille));
    obj.insert(
        "share_delta_permille".to_owned(),
        Value::U64(c.share_delta_permille),
    );
    obj.insert(
        "coverage_drop_permille".to_owned(),
        Value::U64(c.coverage_drop_permille),
    );
    obj.insert(
        "duration_blowup_permille".to_owned(),
        Value::U64(c.duration_blowup_permille),
    );
    obj.insert(
        "duration_baseline_rounds".to_owned(),
        Value::U64(u64::from(c.duration_baseline_rounds)),
    );
    obj.insert("trigger_rounds".to_owned(), Value::U64(u64::from(c.trigger_rounds)));
    obj.insert("clear_rounds".to_owned(), Value::U64(u64::from(c.clear_rounds)));
    Value::Object(obj)
}

pub(crate) fn alert_value(a: &Alert) -> Value {
    let mut obj = BTreeMap::new();
    obj.insert("rule".to_owned(), Value::Str(a.rule.clone()));
    obj.insert("fired_round".to_owned(), Value::U64(u64::from(a.fired_round)));
    obj.insert(
        "cleared_round".to_owned(),
        match a.cleared_round {
            Some(r) => Value::U64(u64::from(r)),
            None => Value::Null,
        },
    );
    obj.insert("peak_value".to_owned(), Value::U64(a.peak_value));
    obj.insert("peak_round".to_owned(), Value::U64(u64::from(a.peak_round)));
    obj.insert("threshold".to_owned(), Value::U64(a.threshold));
    Value::Object(obj)
}

/// Renders an alert set as the canonical `vp-monitor-alert/v1` document.
/// Keys are `BTreeMap`-sorted and all values integers or strings, so equal
/// inputs serialize byte-identically.
pub fn build_alert_doc(
    source: &str,
    rounds: u64,
    config: &AlertConfig,
    alerts: &[Alert],
) -> Value {
    let mut doc = BTreeMap::new();
    doc.insert(
        "schema".to_owned(),
        Value::Str("vp-monitor-alert/v1".to_owned()),
    );
    doc.insert("source".to_owned(), Value::Str(source.to_owned()));
    doc.insert("rounds".to_owned(), Value::U64(rounds));
    doc.insert("config".to_owned(), config_value(config));
    doc.insert(
        "alerts".to_owned(),
        Value::Array(alerts.iter().map(alert_value).collect()),
    );
    Value::Object(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::RoundDiff;

    fn diff(round: u32, flip_rate: u64) -> RoundDiff {
        RoundDiff {
            round,
            prev_name: format!("r{}", round - 1),
            cur_name: format!("r{round}"),
            stable: 1000 - flip_rate,
            flipped: flip_rate,
            to_nr: 0,
            from_nr: 0,
            prev_blocks: 1000,
            cur_blocks: 1000,
            coverage_delta_permille: 0,
            flip_rate_permille: flip_rate,
            site_shares_permille: BTreeMap::new(),
            max_share_delta_permille: 0,
            flips_by_as: BTreeMap::new(),
        }
    }

    fn run(rates: &[u64], config: AlertConfig) -> Vec<Alert> {
        let mut ev = Evaluator::new(config);
        for (i, &r) in rates.iter().enumerate() {
            let _ = ev.observe(&diff(i as u32 + 1, r), None);
        }
        ev.finish()
    }

    #[test]
    fn single_breach_does_not_fire() {
        let alerts = run(&[1, 20, 1, 1, 1], AlertConfig::default());
        assert!(alerts.is_empty(), "{alerts:?}");
    }

    #[test]
    fn sustained_breach_fires_then_clears() {
        let alerts = run(&[1, 20, 30, 20, 1, 1, 1], AlertConfig::default());
        assert_eq!(alerts.len(), 1);
        let a = &alerts[0];
        assert_eq!(a.rule, "flip-rate");
        assert_eq!(a.fired_round, 3); // second consecutive breach
        assert_eq!(a.cleared_round, Some(6)); // second consecutive calm round
        assert_eq!(a.peak_value, 30);
        assert_eq!(a.peak_round, 3);
        assert_eq!(a.threshold, 5);
    }

    #[test]
    fn still_active_alert_has_null_clear() {
        let alerts = run(&[20, 20, 20], AlertConfig::default());
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].cleared_round, None);
        assert_eq!(alerts[0].fired_round, 2);
    }

    #[test]
    fn one_calm_round_does_not_clear() {
        // Breach, blip calm, breach again: still one continuous alert.
        let alerts = run(&[20, 20, 1, 20, 20], AlertConfig::default());
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].cleared_round, None);
    }

    #[test]
    fn trigger_rounds_one_fires_immediately() {
        let config = AlertConfig {
            trigger_rounds: 1,
            clear_rounds: 1,
            ..AlertConfig::default()
        };
        let alerts = run(&[20, 1, 20, 1], config);
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].fired_round, 1);
        assert_eq!(alerts[0].cleared_round, Some(2));
        assert_eq!(alerts[1].fired_round, 3);
        assert_eq!(alerts[1].cleared_round, Some(4));
    }

    #[test]
    fn clear_then_immediate_retrigger_is_two_alerts() {
        // Fires at round 2, clears at round 4, and the drift resuming
        // right after the clear is a *new* incident, not a continuation.
        let alerts = run(&[20, 20, 1, 1, 20, 20], AlertConfig::default());
        assert_eq!(alerts.len(), 2, "{alerts:?}");
        assert_eq!(alerts[0].fired_round, 2);
        assert_eq!(alerts[0].cleared_round, Some(4));
        assert_eq!(alerts[1].fired_round, 6);
        assert_eq!(alerts[1].cleared_round, None);
        // The second incident starts its peak tracking from scratch.
        assert_eq!(alerts[1].peak_value, 20);
    }

    #[test]
    fn retrigger_within_clear_window_is_one_alert() {
        // A breach inside the clear window resets the calm counter, so the
        // alert never clears at round 5: one continuous incident that only
        // clears after two calm rounds *in a row* (rounds 5-6).
        let alerts = run(&[20, 20, 1, 20, 1, 1, 1], AlertConfig::default());
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].fired_round, 2);
        assert_eq!(alerts[0].cleared_round, Some(6));
    }

    #[test]
    fn snapshot_is_nondestructive_and_matches_finish() {
        let mut ev = Evaluator::new(AlertConfig::default());
        for (i, &r) in [20u64, 20, 20].iter().enumerate() {
            let _ = ev.observe(&diff(i as u32 + 1, r), None);
        }
        let snap = ev.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].cleared_round, None);
        // Snapshotting twice changes nothing, and the final snapshot is
        // byte-for-byte what finish() reports.
        assert_eq!(ev.snapshot(), snap);
        assert_eq!(ev.finish(), snap);
    }

    #[test]
    fn duration_rule_uses_median_baseline() {
        let mut ev = Evaluator::new(AlertConfig {
            trigger_rounds: 1,
            ..AlertConfig::default()
        });
        // Baseline window (4 rounds, median 100).
        for (i, dur) in [100u64, 90, 110, 100].into_iter().enumerate() {
            let t = ev.observe(&diff(i as u32 + 1, 0), Some(dur));
            assert!(t.is_empty(), "{t:?}");
        }
        // 1.4x baseline: below the 1.5x default threshold.
        assert!(ev.observe(&diff(5, 0), Some(140)).is_empty());
        // 1.6x baseline: fires.
        let t = ev.observe(&diff(6, 0), Some(160));
        assert_eq!(t.len(), 1, "{t:?}");
        let alerts = ev.finish();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "scan-duration");
        assert_eq!(alerts[0].peak_value, 1600);
    }

    #[test]
    fn alert_doc_is_canonical_and_stable() {
        let alerts = run(&[20, 20, 1, 1], AlertConfig::default());
        let doc = build_alert_doc("test", 4, &AlertConfig::default(), &alerts);
        let a = serde_json::to_string_pretty(&doc).ok();
        let b = serde_json::to_string_pretty(&build_alert_doc(
            "test",
            4,
            &AlertConfig::default(),
            &alerts,
        ))
        .ok();
        assert_eq!(a, b);
        assert!(a.is_some_and(|s| s.contains("\"vp-monitor-alert/v1\"")));
    }
}
