//! The `vp-monitor profile` attribution engine: turns a `vp-obs-flight/v1`
//! document into a text report answering *where the time went*.
//!
//! Per channel: self/total time per phase (self = a span's duration minus
//! its direct children's, by interval containment), per-shard compute
//! imbalance in permille, a slowest-shard critical-path estimate, and the
//! top-N widest spans. The sim channel is deterministic (§7 contract); the
//! wall channel is host timing and varies run to run — the report labels
//! both accordingly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde_json::Value;
use vp_obs::{FlightDoc, FlightSpan, FlightTimeline};

/// Parses a `vp-obs-flight/v1` JSON document back into a [`FlightDoc`].
/// `ctx` names the source (a path, usually) for error messages.
pub fn parse_flight_doc(doc: &Value, ctx: &str) -> Result<FlightDoc, String> {
    let tag = doc.get("schema").and_then(Value::as_str);
    if tag != Some("vp-obs-flight/v1") {
        return Err(format!("{ctx}: not a vp-obs-flight/v1 document (tag {tag:?})"));
    }
    let source = doc
        .get("source")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{ctx}: missing source"))?
        .to_owned();
    let channels = doc
        .get("channels")
        .and_then(Value::as_object)
        .ok_or_else(|| format!("{ctx}: missing channels object"))?;
    let sim = parse_timeline(
        channels
            .get("sim")
            .ok_or_else(|| format!("{ctx}: missing sim channel"))?,
        &format!("{ctx}: channels.sim"),
    )?;
    let wall = parse_timeline(
        channels
            .get("wall")
            .ok_or_else(|| format!("{ctx}: missing wall channel"))?,
        &format!("{ctx}: channels.wall"),
    )?;
    Ok(FlightDoc { source, sim, wall })
}

fn parse_timeline(value: &Value, ctx: &str) -> Result<FlightTimeline, String> {
    let dropped = value
        .get("dropped")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{ctx}: missing dropped count"))?;
    let raw = value
        .get("spans")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing spans array"))?;
    let mut spans = Vec::with_capacity(raw.len());
    for (i, sp) in raw.iter().enumerate() {
        let field = |key: &str| {
            sp.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{ctx}: span {i} missing {key}"))
        };
        let num = |key: &str| {
            sp.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{ctx}: span {i} missing {key}"))
        };
        let shard = match sp.get("shard") {
            None | Some(Value::Null) => None,
            Some(v) => {
                let n = v
                    .as_u64()
                    .ok_or_else(|| format!("{ctx}: span {i} shard not an integer"))?;
                Some(
                    u32::try_from(n)
                        .map_err(|_| format!("{ctx}: span {i} shard {n} out of range"))?,
                )
            }
        };
        spans.push(FlightSpan {
            name: field("name")?,
            phase: field("phase")?,
            shard,
            start_ns: num("start_ns")?,
            end_ns: num("end_ns")?,
        });
    }
    Ok(FlightTimeline::from_spans(spans, dropped))
}

/// Aggregated self/total time for one phase of one channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    pub phase: String,
    pub count: u64,
    pub total_ns: u64,
    pub self_ns: u64,
}

/// The per-channel attribution: phase rows, shard compute totals, and the
/// derived imbalance / critical-path numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelProfile {
    pub spans: usize,
    pub dropped: u64,
    /// Duration of the channel's root span (the widest interval over all
    /// orchestrator spans; usually `scan.round`).
    pub root_ns: u64,
    pub phases: Vec<PhaseRow>,
    /// Compute nanoseconds attributed to each shard, in shard-id order.
    pub shards: Vec<(u32, u64)>,
    /// `(max - min) * 1000 / max` over shard compute times; `None` with no
    /// shard-attributed spans.
    pub imbalance_permille: Option<u64>,
    /// Estimated wall time had every shard run as slow as the slowest:
    /// root − Σ compute + shards · max(compute). Only meaningful for the
    /// wall channel, where compute overlaps in real time.
    pub critical_path_ns: Option<u64>,
    /// The widest spans, duration-descending.
    pub widest: Vec<FlightSpan>,
}

/// Spans sorted canonically nest by containment under a stack walk: a
/// span's *self* time is its duration minus its direct children's.
fn contains(outer: &FlightSpan, inner: &FlightSpan) -> bool {
    outer.start_ns <= inner.start_ns && inner.end_ns <= outer.end_ns
}

/// Computes the attribution for one timeline. `top_n` bounds the widest-
/// span list.
pub fn profile_channel(tl: &FlightTimeline, top_n: usize) -> ChannelProfile {
    // Group by shard key (None first, then ascending ids); within a group
    // the canonical order (start asc, wider first) makes nesting a stack
    // walk. Self time = duration − Σ direct children.
    let mut phases: BTreeMap<String, PhaseRow> = BTreeMap::new();
    let mut shards: BTreeMap<u32, u64> = BTreeMap::new();
    let mut root_ns = 0u64;
    let mut stack: Vec<(usize, u64)> = Vec::new(); // (span index, children total)
    let mut self_ns = vec![0u64; tl.spans.len()];

    let flush = |stack: &mut Vec<(usize, u64)>, self_ns: &mut Vec<u64>, upto: Option<&FlightSpan>, spans: &[FlightSpan]| {
        while let Some(&(top_idx, children)) = stack.last() {
            let Some(top) = spans.get(top_idx) else { break };
            if let Some(next) = upto {
                if next.shard == top.shard && contains(top, next) {
                    break;
                }
            }
            stack.pop();
            if let Some(slot) = self_ns.get_mut(top_idx) {
                *slot = top.duration_ns().saturating_sub(children);
            }
            if let Some((_, parent_children)) = stack.last_mut() {
                *parent_children += top.duration_ns();
            }
        }
    };

    for (i, span) in tl.spans.iter().enumerate() {
        // Close finished spans (and all spans when the shard changes).
        flush(&mut stack, &mut self_ns, Some(span), &tl.spans);
        stack.push((i, 0));
    }
    flush(&mut stack, &mut self_ns, None, &tl.spans);

    for (span, &span_self) in tl.spans.iter().zip(self_ns.iter()) {
        let dur = span.duration_ns();
        match span.shard {
            None => root_ns = root_ns.max(dur),
            Some(k) => {
                // Shard compute: prefer the executor's explicit compute
                // spans; otherwise any shard-attributed span counts.
                if span.name == "shard.compute" {
                    *shards.entry(k).or_insert(0) += dur;
                }
            }
        }
        let row = phases
            .entry(span.phase.clone())
            .or_insert_with(|| PhaseRow {
                phase: span.phase.clone(),
                count: 0,
                total_ns: 0,
                self_ns: 0,
            });
        row.count += 1;
        row.total_ns = row.total_ns.saturating_add(dur);
        row.self_ns = row.self_ns.saturating_add(span_self);
    }
    // No explicit executor spans: fall back to summing every shard's spans'
    // *self* time, which tiles each shard's busy time without double count.
    if shards.is_empty() {
        for (span, &span_self) in tl.spans.iter().zip(self_ns.iter()) {
            if let Some(k) = span.shard {
                *shards.entry(k).or_insert(0) += span_self;
            }
        }
    }

    let shards: Vec<(u32, u64)> = shards.into_iter().collect();
    let imbalance_permille = if shards.is_empty() {
        None
    } else {
        let max = shards.iter().map(|&(_, v)| v).max().unwrap_or(0);
        let min = shards.iter().map(|&(_, v)| v).min().unwrap_or(0);
        Some((max - min) * 1000 / max.max(1))
    };
    let critical_path_ns = if shards.is_empty() {
        None
    } else {
        let total: u64 = shards.iter().map(|&(_, v)| v).sum();
        let max = shards.iter().map(|&(_, v)| v).max().unwrap_or(0);
        let serialized = max.saturating_mul(shards.len() as u64);
        Some(root_ns.saturating_sub(total).saturating_add(serialized))
    };

    let mut widest: Vec<FlightSpan> = tl.spans.clone();
    widest.sort_by(|a, b| b.duration_ns().cmp(&a.duration_ns()));
    widest.truncate(top_n);

    ChannelProfile {
        spans: tl.spans.len(),
        dropped: tl.dropped,
        root_ns,
        phases: phases.into_values().collect(),
        shards,
        imbalance_permille,
        critical_path_ns,
        widest,
    }
}

fn ms(ns: u64) -> String {
    format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

fn render_channel(out: &mut String, label: &str, contract: &str, tl: &FlightTimeline, top_n: usize) {
    let p = profile_channel(tl, top_n);
    let _ = writeln!(out, "== {label} channel ({contract}) ==");
    if tl.spans.is_empty() {
        let _ = writeln!(out, "  (empty)");
        return;
    }
    let _ = writeln!(
        out,
        "  spans {}  dropped {}  root {}",
        p.spans,
        p.dropped,
        ms(p.root_ns)
    );
    let _ = writeln!(out, "  phase           count     total        self");
    for row in &p.phases {
        let _ = writeln!(
            out,
            "  {:<14} {:>6} {:>11} {:>11}",
            row.phase,
            row.count,
            ms(row.total_ns),
            ms(row.self_ns)
        );
    }
    if !p.shards.is_empty() {
        let _ = writeln!(out, "  shard compute:");
        for (k, v) in &p.shards {
            let _ = writeln!(out, "    shard {k:>3}  {:>11}", ms(*v));
        }
        if let Some(imb) = p.imbalance_permille {
            let _ = writeln!(out, "  imbalance {imb} permille (max-min over max)");
        }
        if let Some(cp) = p.critical_path_ns {
            let _ = writeln!(out, "  critical path (slowest-shard estimate) {}", ms(cp));
        }
    }
    let _ = writeln!(out, "  widest spans:");
    for sp in &p.widest {
        let shard = match sp.shard {
            None => "-".to_owned(),
            Some(k) => k.to_string(),
        };
        let _ = writeln!(
            out,
            "    {:<22} phase {:<7} shard {:>3}  {:>11}",
            sp.name,
            sp.phase,
            shard,
            ms(sp.duration_ns())
        );
    }
}

/// Renders the full attribution report for a flight document.
pub fn render_report(doc: &FlightDoc, top_n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "flight profile: {}", doc.source);
    render_channel(
        &mut out,
        "sim",
        "deterministic, inside the \u{a7}7 contract",
        &doc.sim,
        top_n,
    );
    render_channel(
        &mut out,
        "wall",
        "host timing, outside the determinism contract",
        &doc.wall,
        top_n,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, phase: &str, shard: Option<u32>, start: u64, end: u64) -> FlightSpan {
        FlightSpan {
            name: name.to_owned(),
            phase: phase.to_owned(),
            shard,
            start_ns: start,
            end_ns: end,
        }
    }

    /// The sim channel's standard shape: round [0,100], walk+build [0,60]
    /// (equal intervals), dispatch [60,100], zero-width tail marks.
    fn sim_timeline() -> FlightTimeline {
        FlightTimeline::from_spans(
            vec![
                span("scan.round", "round", None, 0, 100),
                span("scan.schedule_walk", "probe", None, 0, 60),
                span("scan.probe_build", "probe", None, 0, 60),
                span("scan.sim_dispatch", "sim", None, 60, 100),
                span("scan.cleaning", "clean", None, 100, 100),
                span("scan.catchment_build", "map", None, 100, 100),
            ],
            0,
        )
    }

    #[test]
    fn phase_self_times_sum_to_root_total() {
        let p = profile_channel(&sim_timeline(), 3);
        assert_eq!(p.root_ns, 100);
        let self_sum: u64 = p.phases.iter().map(|r| r.self_ns).sum();
        assert_eq!(self_sum, p.root_ns, "self times must tile the round");
        // Equal sibling intervals nest one inside the other (canonical
        // order breaks the tie): probe self = inner 60 + outer 0.
        let probe = p.phases.iter().find(|r| r.phase == "probe").unwrap_or_else(|| panic!("no probe row"));
        assert_eq!(probe.total_ns, 120);
        assert_eq!(probe.self_ns, 60);
        let round = p.phases.iter().find(|r| r.phase == "round").unwrap_or_else(|| panic!("no round row"));
        assert_eq!(round.self_ns, 0, "round is fully covered by its children");
        assert_eq!(p.shards, Vec::new());
        assert_eq!(p.imbalance_permille, None);
    }

    #[test]
    fn shard_compute_drives_imbalance_and_critical_path() {
        let tl = FlightTimeline::from_spans(
            vec![
                span("scan.round", "round", None, 0, 100),
                span("shard.compute", "exec", Some(0), 10, 50),
                span("shard.compute", "exec", Some(1), 10, 30),
                span("shard.barrier_wait", "exec", Some(1), 30, 50),
            ],
            0,
        );
        let p = profile_channel(&tl, 5);
        assert_eq!(p.shards, vec![(0, 40), (1, 20)]);
        assert_eq!(p.imbalance_permille, Some(500));
        // root 100 − Σcompute 60 + 2·max 80 = 120.
        assert_eq!(p.critical_path_ns, Some(120));
        assert_eq!(p.widest[0].name, "scan.round");
        assert_eq!(p.widest.len(), 4);
    }

    #[test]
    fn shard_attribution_falls_back_to_self_times() {
        let tl = FlightTimeline::from_spans(
            vec![
                span("scan.probe_build", "probe", Some(0), 0, 30),
                span("scan.sim_dispatch", "sim", Some(0), 30, 90),
                span("scan.probe_build", "probe", Some(1), 0, 40),
            ],
            0,
        );
        let p = profile_channel(&tl, 2);
        assert_eq!(p.shards, vec![(0, 90), (1, 40)]);
        assert_eq!(p.widest.len(), 2, "top-N truncates");
    }

    #[test]
    fn parse_round_trips_canonical_json() {
        let doc = FlightDoc {
            source: "unit".to_owned(),
            sim: sim_timeline(),
            wall: FlightTimeline::from_spans(vec![span("w", "exec", Some(3), 5, 9)], 2),
        };
        let value: Value = serde_json::from_str(&doc.to_canonical_json())
            .unwrap_or_else(|e| panic!("canonical json must parse: {e}"));
        let back = parse_flight_doc(&value, "t").unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(back, doc);
        // And the parsed document re-serializes to the same bytes.
        assert_eq!(back.to_canonical_json(), doc.to_canonical_json());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        let bad: Value = serde_json::from_str(r#"{"schema":"nope/v1"}"#).unwrap_or_else(|e| panic!("{e}"));
        assert!(parse_flight_doc(&bad, "t").is_err());
        let missing: Value = serde_json::from_str(
            r#"{"schema":"vp-obs-flight/v1","source":"x","channels":{"sim":{"spans":[],"dropped":0}}}"#,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert!(parse_flight_doc(&missing, "t")
            .unwrap_err()
            .contains("wall"));
        let bad_span: Value = serde_json::from_str(
            r#"{"schema":"vp-obs-flight/v1","source":"x","channels":{"sim":{"spans":[{"name":"a"}],"dropped":0},"wall":{"spans":[],"dropped":0}}}"#,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert!(parse_flight_doc(&bad_span, "t").is_err());
    }

    #[test]
    fn report_mentions_both_channels_and_the_round() {
        let doc = FlightDoc {
            source: "unit".to_owned(),
            sim: sim_timeline(),
            wall: FlightTimeline::default(),
        };
        let text = render_report(&doc, 4);
        assert!(text.contains("flight profile: unit"), "{text}");
        assert!(text.contains("== sim channel"), "{text}");
        assert!(text.contains("== wall channel"), "{text}");
        assert!(text.contains("scan.round"), "{text}");
        assert!(text.contains("(empty)"), "{text}");
    }
}
